"""repro — seed-based protein/genome comparison on a simulated SGI RASC-100.

A full reproduction of Nguyen, Cornu & Lavenier, "Implementing Protein
Seed-Based Comparison Algorithm on the SGI RASC-100 Platform"
(RAW/IPDPS 2009): the reorganised three-step comparison algorithm, a
tblastn-like baseline, cycle-level and behavioural models of the PSC
FPGA operator, the RASC-100 platform (NUMAlink, ADR registers, dual
FPGAs) and the paper's complete evaluation harness.

Quick start::

    import numpy as np
    from repro.seqs import random_protein_bank, random_genome
    from repro.core import SeedComparisonPipeline

    rng = np.random.default_rng(0)
    proteins = random_protein_bank(rng, 50)
    genome = random_genome(rng, 100_000)
    report = SeedComparisonPipeline().compare_with_genome(proteins, genome)
"""

from . import baseline, core, eval, extend, hwsim, index, psc, rasc, seqs, util

__version__ = "1.0.0"

__all__ = [
    "seqs",
    "index",
    "extend",
    "core",
    "baseline",
    "hwsim",
    "psc",
    "rasc",
    "eval",
    "util",
    "__version__",
]
