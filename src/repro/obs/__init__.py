"""Unified observability: tracing, metrics, and exportable run reports.

The paper's entire performance story is per-stage accounting (Table 1
attributes ~97 % of sequential runtime to step 2; Tables 2–4 only make
sense because every stage, FPGA and PE slot was independently measurable).
This package is that discipline as a subsystem, shared by every layer:

* :mod:`repro.obs.trace` — spans (monotonic start/duration, parent ids,
  attributes, events) with context-manager/decorator APIs, thread- and
  fork-safe, with per-process buffers that shard workers serialize back
  through the executor's result channel;
* :mod:`repro.obs.metrics` — a process-local registry of counters, gauges
  and fixed-bucket histograms, mergeable across shards with
  order-independent results;
* :mod:`repro.obs.export` — the schema-versioned JSON run report (spans +
  metrics + :class:`~repro.core.profile.PipelineProfile` +
  :class:`~repro.core.profile.RunHealth` + detsan manifest), a Prometheus
  text exposition, and a terminal span-tree summary.

Everything is off by default: with no active tracer/registry each
instrumentation point costs one module-attribute check.  The CLI's
``--trace-out``/``--metrics-out``/``--obs-summary`` flags activate it.
"""

from __future__ import annotations

from . import context, export, flight, metrics, profile, slo, trace
from .context import RequestContext, accept_request_id, mint_request_id
from .export import build_run_report, prometheus_text, render_span_tree, validate_report
from .flight import FlightRecord, FlightRecorder, RequestTraceStore
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import SamplingProfiler
from .slo import SloConfig, SloTracker
from .trace import Span, Timer, Tracer, clock, span, traced

__all__ = [
    "Counter",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestContext",
    "RequestTraceStore",
    "SamplingProfiler",
    "SloConfig",
    "SloTracker",
    "Span",
    "Timer",
    "Tracer",
    "accept_request_id",
    "build_run_report",
    "clock",
    "context",
    "export",
    "flight",
    "metrics",
    "mint_request_id",
    "profile",
    "prometheus_text",
    "render_span_tree",
    "slo",
    "span",
    "trace",
    "traced",
    "validate_report",
]
