"""Run reports: schema-versioned JSON, Prometheus text, span-tree summary.

The run report is the single document that merges everything one run
produced: the span timeline, the merged metrics, the
:class:`~repro.core.profile.PipelineProfile` and
:class:`~repro.core.profile.RunHealth` aggregates, and (when the
determinism sanitizer ran) the detsan manifest.  ``version`` is bumped on
any breaking shape change; consumers (the benchmark trajectory, CI's
schema gate) pin against it.

:data:`REPORT_SCHEMA` is the authoritative schema, embedded here so the
validator has no file dependency; ``schemas/run_report.schema.json`` is
the checked-in copy CI validates against, and a golden test keeps the two
identical.  :func:`validate_report` implements the small JSON-Schema
subset the schema uses (``type``/``required``/``properties``/``items``/
``enum``/``minimum``) — the container deliberately has no ``jsonschema``
dependency.

Run ``python -m repro.obs.export report.json --schema schemas/...`` to
validate a report from the command line (the CI ``obs`` job does).
"""

from __future__ import annotations

import json
import sys
from typing import Any

from .metrics import MetricsRegistry, prometheus_text
from .trace import SpanDict, Tracer

__all__ = [
    "FLIGHT_RECORDS_SCHEMA",
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "REQUEST_TRACE_SCHEMA",
    "SERVE_METRICS_SCHEMA",
    "build_run_report",
    "main",
    "prometheus_text",
    "render_span_tree",
    "validate_flight_records",
    "validate_report",
    "validate_request_trace",
    "validate_serve_metrics",
]

#: Bumped on any breaking change to the report shape.
REPORT_VERSION = 1


def _as_dict(obj: Any) -> Any:
    """Duck-typed serialization so this module never imports core/."""
    if obj is None or isinstance(obj, dict):
        return obj
    as_dict = getattr(obj, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    raise TypeError(f"cannot serialize {type(obj).__name__} into a run report")


def build_run_report(
    *,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    profile: Any = None,
    health: Any = None,
    detsan: Any = None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the schema-versioned run report.

    *profile*, *health* and *detsan* may be the live objects (anything
    with ``as_dict()`` / ``manifest()``), pre-serialized dicts, or None.
    """
    merged_meta: dict[str, Any] = {}
    if tracer is not None:
        merged_meta.update(tracer.meta)
    if meta:
        merged_meta.update(meta)
    if detsan is not None and not isinstance(detsan, dict):
        manifest = getattr(detsan, "manifest", None)
        detsan = manifest() if callable(manifest) else _as_dict(detsan)
    return {
        "version": REPORT_VERSION,
        "meta": merged_meta,
        "spans": tracer.export() if tracer is not None else [],
        "metrics": registry.to_dict() if registry is not None else {"metrics": []},
        "profile": _as_dict(profile),
        "run_health": _as_dict(health),
        "detsan": detsan,
    }


def render_span_tree(spans: list[SpanDict] | Tracer) -> str:
    """Indented terminal summary of the span forest, durations aligned.

    Children render under their parent in recorded order; orphans (parent
    id missing from the export) render as roots rather than vanishing.
    """
    rows = spans.export() if isinstance(spans, Tracer) else list(spans)
    ids = {row["span_id"] for row in rows}
    children: dict[int | None, list[SpanDict]] = {}
    for row in rows:
        parent = row.get("parent_id")
        children.setdefault(parent if parent in ids else None, []).append(row)

    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        for row in children.get(parent, ()):  # recorded order
            duration = row.get("duration")
            took = "open" if duration is None else f"{duration * 1e3:10.3f} ms"
            attrs = row.get("attributes") or {}
            decor = (
                " [" + " ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) + "]"
                if attrs
                else ""
            )
            events = row.get("events") or ()
            suffix = f" ({len(events)} events)" if events else ""
            lines.append(f"{'  ' * depth}{row['name']:<{32 - 2 * depth}} {took}{decor}{suffix}")
            walk(row["span_id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines)


_SPAN_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["name", "span_id", "parent_id", "start", "duration"],
    "properties": {
        "name": {"type": "string"},
        "span_id": {"type": "integer", "minimum": 1},
        "parent_id": {"type": ["integer", "null"]},
        "start": {"type": "number"},
        "duration": {"type": ["number", "null"], "minimum": 0},
        "attributes": {"type": "object"},
        "events": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "offset"],
                "properties": {
                    "name": {"type": "string"},
                    "offset": {"type": "number"},
                },
            },
        },
    },
}

_METRIC_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["name", "kind", "labels"],
    "properties": {
        "name": {"type": "string"},
        "kind": {"enum": ["counter", "gauge", "histogram"]},
        "labels": {"type": "object"},
        "value": {"type": "number"},
        "boundaries": {"type": "array", "items": {"type": "number"}},
        "counts": {"type": "array", "items": {"type": "integer", "minimum": 0}},
        "total": {"type": "number"},
        "samples": {"type": "integer", "minimum": 0},
    },
}

#: The authoritative run-report schema.  ``schemas/run_report.schema.json``
#: is the checked-in copy; a golden test asserts the two stay identical.
REPORT_SCHEMA: dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro run report",
    "type": "object",
    "required": ["version", "meta", "spans", "metrics"],
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "meta": {"type": "object"},
        "spans": {"type": "array", "items": _SPAN_SCHEMA},
        "metrics": {
            "type": "object",
            "required": ["metrics"],
            "properties": {
                "metrics": {"type": "array", "items": _METRIC_SCHEMA},
            },
        },
        "profile": {"type": ["object", "null"]},
        "run_health": {"type": ["object", "null"]},
        "detsan": {"type": ["object", "null"]},
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _validate(value: Any, schema: dict[str, Any], path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected {'/'.join(types)}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value!r} < minimum {schema['minimum']!r}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required key {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                _validate(value[name], sub, f"{path}.{name}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{i}]", errors)


def validate_report(
    report: dict[str, Any], schema: dict[str, Any] | None = None
) -> list[str]:
    """Validate a run report; returns error strings (empty = valid)."""
    errors: list[str] = []
    _validate(report, REPORT_SCHEMA if schema is None else schema, "$", errors)
    return errors


#: Terminal request statuses shared by the per-request trace document and
#: the flight-recorder record.
_REQUEST_STATUSES = ["ok", "shed", "deadline", "error", "draining"]

#: The authoritative per-request trace document schema (what
#: ``GET /debug/trace/<id>`` and ``--trace-dir`` spool files contain).
#: ``schemas/request_trace.schema.json`` is the checked-in copy; a golden
#: test keeps the two identical and the CI ``obs-serve`` job validates
#: live documents against it.
REQUEST_TRACE_SCHEMA: dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro per-request trace",
    "type": "object",
    "required": [
        "version",
        "request_id",
        "trace_id",
        "request_index",
        "status",
        "code",
        "duration_seconds",
        "spans",
    ],
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "request_id": {"type": "string"},
        "trace_id": {"type": "string"},
        "request_index": {"type": ["integer", "null"], "minimum": 0},
        "status": {"enum": _REQUEST_STATUSES},
        "code": {"type": "integer", "minimum": 100},
        "duration_seconds": {"type": "number", "minimum": 0},
        "spans": {"type": "array", "items": _SPAN_SCHEMA},
    },
}

_FLIGHT_RECORD_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "request_id",
        "trace_id",
        "request_index",
        "status",
        "code",
        "breakdown",
        "retry_events",
        "fallback_events",
        "breaker_events",
        "shed_reason",
        "degraded",
    ],
    "properties": {
        "request_id": {"type": "string"},
        "trace_id": {"type": "string"},
        "request_index": {"type": ["integer", "null"], "minimum": 0},
        "status": {"enum": _REQUEST_STATUSES},
        "code": {"type": "integer", "minimum": 100},
        "breakdown": {
            "type": "object",
            "properties": {
                "queue": {"type": "number", "minimum": 0},
                "step1": {"type": "number", "minimum": 0},
                "step2": {"type": "number", "minimum": 0},
                "merge": {"type": "number", "minimum": 0},
                "dispatch": {"type": "number", "minimum": 0},
                "total": {"type": "number", "minimum": 0},
            },
        },
        "retry_events": {"type": "integer", "minimum": 0},
        "fallback_events": {"type": "integer", "minimum": 0},
        "breaker_events": {"type": "array", "items": {"type": "string"}},
        "shed_reason": {"type": ["string", "null"]},
        "retry_after": {"type": ["number", "null"], "minimum": 0},
        "degraded": {"type": ["boolean", "null"]},
        "alignments": {"type": ["integer", "null"], "minimum": 0},
        "error": {"type": ["string", "null"]},
    },
}

#: The authoritative flight-recorder document schema (what
#: ``GET /debug/requests`` and the SIGTERM-drain dump contain).
#: ``schemas/flight_record.schema.json`` is the checked-in copy.
FLIGHT_RECORDS_SCHEMA: dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro service flight records",
    "type": "object",
    "required": ["version", "capacity", "recorded", "dropped", "records"],
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "capacity": {"type": "integer", "minimum": 1},
        "recorded": {"type": "integer", "minimum": 0},
        "dropped": {"type": "integer", "minimum": 0},
        "records": {"type": "array", "items": _FLIGHT_RECORD_SCHEMA},
        "slo": {"type": "object"},
    },
}


def validate_request_trace(
    doc: dict[str, Any], schema: dict[str, Any] | None = None
) -> list[str]:
    """Validate a per-request trace document; returns error strings."""
    errors: list[str] = []
    _validate(doc, REQUEST_TRACE_SCHEMA if schema is None else schema, "$", errors)
    return errors


def validate_flight_records(
    doc: dict[str, Any], schema: dict[str, Any] | None = None
) -> list[str]:
    """Validate a flight-recorder document; returns error strings."""
    errors: list[str] = []
    _validate(doc, FLIGHT_RECORDS_SCHEMA if schema is None else schema, "$", errors)
    return errors


#: The authoritative serving-metrics contract.  Keys under ``families``
#: name every metric family the service may expose with its exposition
#: kind; ``required`` lists the subset that must exist on any serving
#: process that completed at least one request (the rest appear once
#: their event fires).  ``schemas/serve_metrics.schema.json`` is the
#: checked-in copy; a golden test keeps the two identical, and the CI
#: ``serve-chaos`` job validates a live ``/metrics`` scrape against it.
SERVE_METRICS_SCHEMA: dict[str, Any] = {
    "version": 2,
    "prefix": "serve_",
    "families": {
        "serve_requests_total": "counter",
        "serve_shed_total": "counter",
        "serve_queue_depth": "gauge",
        "serve_queue_depth_current": "gauge",
        "serve_queue_wait_seconds": "histogram",
        "serve_request_seconds": "histogram",
        "serve_breaker_state": "gauge",
        "serve_breaker_trips_total": "counter",
        "serve_breaker_probes_total": "counter",
        "serve_degraded_requests_total": "counter",
        "serve_bank_heals_total": "counter",
        "serve_pool_workers": "gauge",
        "serve_resident_bank_bytes": "gauge",
        "serve_slo_burn_rate": "gauge",
    },
    "required": [
        "serve_requests_total",
        "serve_shed_total",
        "serve_queue_depth",
        "serve_queue_depth_current",
        "serve_queue_wait_seconds",
        "serve_request_seconds",
        "serve_breaker_state",
        "serve_breaker_trips_total",
        "serve_degraded_requests_total",
        "serve_bank_heals_total",
        "serve_pool_workers",
        "serve_resident_bank_bytes",
        "serve_slo_burn_rate",
    ],
}


def validate_serve_metrics(
    text: str, schema: dict[str, Any] | None = None
) -> list[str]:
    """Validate a ``/metrics`` Prometheus scrape against the serve contract.

    Checks, over every family whose name carries the schema's prefix:
    the required families are all present, each declared kind matches the
    schema, and no undeclared family exists (new serving metrics must land
    in the schema in the same change).  Returns error strings (empty =
    valid); non-serve families in the scrape are ignored.
    """
    if schema is None:
        schema = SERVE_METRICS_SCHEMA
    prefix = schema["prefix"]
    families: dict[str, str] = schema["families"]
    declared: dict[str, str] = {}
    errors: list[str] = []
    for line in text.splitlines():
        if not line.startswith("# TYPE "):
            continue
        try:
            _, _, name, kind = line.split(None, 3)
        except ValueError:
            errors.append(f"malformed TYPE line: {line!r}")
            continue
        if not name.startswith(prefix):
            continue
        if name in declared:
            errors.append(f"{name}: declared twice")
        declared[name] = kind
    for name in schema["required"]:
        if name not in declared:
            errors.append(f"{name}: required family missing from exposition")
    for name, kind in declared.items():
        expected = families.get(name)
        if expected is None:
            errors.append(
                f"{name}: not in the serve metrics schema — new serving "
                "metrics must be added to SERVE_METRICS_SCHEMA and "
                "schemas/serve_metrics.schema.json"
            )
        elif kind != expected:
            errors.append(f"{name}: kind {kind!r}, schema says {expected!r}")
    return errors


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.export report.json [--schema FILE]``.

    With ``--kind serve-metrics`` the positional file is a Prometheus
    text scrape of a serving process instead of a run report, validated
    via :func:`validate_serve_metrics`.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Validate a run report (or a serve /metrics scrape) "
        "against its schema.",
    )
    parser.add_argument("report", help="run-report JSON (or scrape text) file")
    parser.add_argument(
        "--schema",
        help="validate against this schema file instead of the embedded one",
    )
    parser.add_argument(
        "--kind",
        choices=["report", "serve-metrics", "request-trace", "flight-records"],
        default="report",
        help="what the positional file is (default: run report)",
    )
    args = parser.parse_args(argv)

    schema = None
    if args.schema:
        with open(args.schema, encoding="utf-8") as fh:
            schema = json.load(fh)
    if args.kind == "serve-metrics":
        with open(args.report, encoding="utf-8") as fh:
            text = fh.read()
        errors = validate_serve_metrics(text, schema)
        for err in errors:
            print(f"invalid: {err}", file=sys.stderr)
        if not errors:
            n = sum(
                1
                for line in text.splitlines()
                if line.startswith("# TYPE ")
            )
            print(f"ok: serve metrics scrape, {n} families")
        return 1 if errors else 0
    if args.kind in ("request-trace", "flight-records"):
        with open(args.report, encoding="utf-8") as fh:
            doc = json.load(fh)
        if args.kind == "request-trace":
            errors = validate_request_trace(doc, schema)
            summary = (
                f"ok: request trace {doc.get('request_id')!r}, "
                f"{len(doc.get('spans', []))} spans"
            )
        else:
            errors = validate_flight_records(doc, schema)
            summary = (
                f"ok: flight records, {len(doc.get('records', []))} of "
                f"{doc.get('recorded')} recorded"
            )
        for err in errors:
            print(f"invalid: {err}", file=sys.stderr)
        if not errors:
            print(summary)
        return 1 if errors else 0
    with open(args.report, encoding="utf-8") as fh:
        report = json.load(fh)
    errors = validate_report(report, schema)
    for err in errors:
        print(f"invalid: {err}", file=sys.stderr)
    if not errors:
        spans = report.get("spans", [])
        metrics = report.get("metrics", {}).get("metrics", [])
        print(
            f"ok: version {report.get('version')} report, "
            f"{len(spans)} spans, {len(metrics)} metric series"
        )
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    raise SystemExit(main())
