"""Run reports: schema-versioned JSON, Prometheus text, span-tree summary.

The run report is the single document that merges everything one run
produced: the span timeline, the merged metrics, the
:class:`~repro.core.profile.PipelineProfile` and
:class:`~repro.core.profile.RunHealth` aggregates, and (when the
determinism sanitizer ran) the detsan manifest.  ``version`` is bumped on
any breaking shape change; consumers (the benchmark trajectory, CI's
schema gate) pin against it.

:data:`REPORT_SCHEMA` is the authoritative schema, embedded here so the
validator has no file dependency; ``schemas/run_report.schema.json`` is
the checked-in copy CI validates against, and a golden test keeps the two
identical.  :func:`validate_report` implements the small JSON-Schema
subset the schema uses (``type``/``required``/``properties``/``items``/
``enum``/``minimum``) — the container deliberately has no ``jsonschema``
dependency.

Run ``python -m repro.obs.export report.json --schema schemas/...`` to
validate a report from the command line (the CI ``obs`` job does).
"""

from __future__ import annotations

import json
import sys
from typing import Any

from .metrics import MetricsRegistry, prometheus_text
from .trace import SpanDict, Tracer

__all__ = [
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "build_run_report",
    "main",
    "prometheus_text",
    "render_span_tree",
    "validate_report",
]

#: Bumped on any breaking change to the report shape.
REPORT_VERSION = 1


def _as_dict(obj: Any) -> Any:
    """Duck-typed serialization so this module never imports core/."""
    if obj is None or isinstance(obj, dict):
        return obj
    as_dict = getattr(obj, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    raise TypeError(f"cannot serialize {type(obj).__name__} into a run report")


def build_run_report(
    *,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    profile: Any = None,
    health: Any = None,
    detsan: Any = None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the schema-versioned run report.

    *profile*, *health* and *detsan* may be the live objects (anything
    with ``as_dict()`` / ``manifest()``), pre-serialized dicts, or None.
    """
    merged_meta: dict[str, Any] = {}
    if tracer is not None:
        merged_meta.update(tracer.meta)
    if meta:
        merged_meta.update(meta)
    if detsan is not None and not isinstance(detsan, dict):
        manifest = getattr(detsan, "manifest", None)
        detsan = manifest() if callable(manifest) else _as_dict(detsan)
    return {
        "version": REPORT_VERSION,
        "meta": merged_meta,
        "spans": tracer.export() if tracer is not None else [],
        "metrics": registry.to_dict() if registry is not None else {"metrics": []},
        "profile": _as_dict(profile),
        "run_health": _as_dict(health),
        "detsan": detsan,
    }


def render_span_tree(spans: list[SpanDict] | Tracer) -> str:
    """Indented terminal summary of the span forest, durations aligned.

    Children render under their parent in recorded order; orphans (parent
    id missing from the export) render as roots rather than vanishing.
    """
    rows = spans.export() if isinstance(spans, Tracer) else list(spans)
    ids = {row["span_id"] for row in rows}
    children: dict[int | None, list[SpanDict]] = {}
    for row in rows:
        parent = row.get("parent_id")
        children.setdefault(parent if parent in ids else None, []).append(row)

    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        for row in children.get(parent, ()):  # recorded order
            duration = row.get("duration")
            took = "open" if duration is None else f"{duration * 1e3:10.3f} ms"
            attrs = row.get("attributes") or {}
            decor = (
                " [" + " ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) + "]"
                if attrs
                else ""
            )
            events = row.get("events") or ()
            suffix = f" ({len(events)} events)" if events else ""
            lines.append(f"{'  ' * depth}{row['name']:<{32 - 2 * depth}} {took}{decor}{suffix}")
            walk(row["span_id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines)


_SPAN_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["name", "span_id", "parent_id", "start", "duration"],
    "properties": {
        "name": {"type": "string"},
        "span_id": {"type": "integer", "minimum": 1},
        "parent_id": {"type": ["integer", "null"]},
        "start": {"type": "number"},
        "duration": {"type": ["number", "null"], "minimum": 0},
        "attributes": {"type": "object"},
        "events": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "offset"],
                "properties": {
                    "name": {"type": "string"},
                    "offset": {"type": "number"},
                },
            },
        },
    },
}

_METRIC_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["name", "kind", "labels"],
    "properties": {
        "name": {"type": "string"},
        "kind": {"enum": ["counter", "gauge", "histogram"]},
        "labels": {"type": "object"},
        "value": {"type": "number"},
        "boundaries": {"type": "array", "items": {"type": "number"}},
        "counts": {"type": "array", "items": {"type": "integer", "minimum": 0}},
        "total": {"type": "number"},
        "samples": {"type": "integer", "minimum": 0},
    },
}

#: The authoritative run-report schema.  ``schemas/run_report.schema.json``
#: is the checked-in copy; a golden test asserts the two stay identical.
REPORT_SCHEMA: dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro run report",
    "type": "object",
    "required": ["version", "meta", "spans", "metrics"],
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "meta": {"type": "object"},
        "spans": {"type": "array", "items": _SPAN_SCHEMA},
        "metrics": {
            "type": "object",
            "required": ["metrics"],
            "properties": {
                "metrics": {"type": "array", "items": _METRIC_SCHEMA},
            },
        },
        "profile": {"type": ["object", "null"]},
        "run_health": {"type": ["object", "null"]},
        "detsan": {"type": ["object", "null"]},
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _validate(value: Any, schema: dict[str, Any], path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected {'/'.join(types)}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value!r} < minimum {schema['minimum']!r}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required key {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                _validate(value[name], sub, f"{path}.{name}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{i}]", errors)


def validate_report(
    report: dict[str, Any], schema: dict[str, Any] | None = None
) -> list[str]:
    """Validate a run report; returns error strings (empty = valid)."""
    errors: list[str] = []
    _validate(report, REPORT_SCHEMA if schema is None else schema, "$", errors)
    return errors


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.export report.json [--schema FILE]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Validate a run report against the report schema.",
    )
    parser.add_argument("report", help="path to a run-report JSON file")
    parser.add_argument(
        "--schema",
        help="validate against this JSON Schema file instead of the embedded one",
    )
    args = parser.parse_args(argv)

    with open(args.report, encoding="utf-8") as fh:
        report = json.load(fh)
    schema = None
    if args.schema:
        with open(args.schema, encoding="utf-8") as fh:
            schema = json.load(fh)
    errors = validate_report(report, schema)
    for err in errors:
        print(f"invalid: {err}", file=sys.stderr)
    if not errors:
        spans = report.get("spans", [])
        metrics = report.get("metrics", {}).get("metrics", [])
        print(
            f"ok: version {report.get('version')} report, "
            f"{len(spans)} spans, {len(metrics)} metric series"
        )
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    raise SystemExit(main())
