"""Service-level objectives: declared targets, burn rates, exemplars.

The service declares two objectives (:class:`SloConfig`):

* **availability** — fraction of terminal requests that are not errors
  (shed requests are deliberate load management and count as *good*;
  5xx/deadline outcomes count as *bad*);
* **latency** — fraction of *served* requests completing under the
  declared objective latency.

:class:`SloTracker` keeps per-second counts in a ring sized to the
longest configured window and derives the standard multi-window **burn
rate** for each: with an error fraction ``e`` observed over the window
and a target fraction ``t``,

    ``burn = e / (1 - t)``

so burn 1.0 means "exactly spending the error budget", burn 14.4 over a
5-minute window is the classic page-now threshold, and 0 means no budget
spent.  Rates are exposed as ``serve_slo_burn_rate{slo=...,window=...}``
gauges, refreshed on scrape (not per request — the hot path only bumps
two integers per record).

Latency **exemplars** link the histogram back to concrete requests: for
each ``serve_request_seconds`` bucket, the tracker remembers the most
recent request id whose latency landed there, so a tail-latency bump in
a dashboard resolves to a request id whose full span tree is one
``GET /debug/trace/<id>`` away.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any

from .metrics import SECONDS_BUCKETS, MetricsRegistry
from .trace import clock

__all__ = ["SloConfig", "SloTracker"]


@dataclass(frozen=True)
class SloConfig:
    """Declared objectives and the burn-rate windows that watch them.

    Attributes
    ----------
    latency_objective_seconds:
        A served request should complete within this wall time.
    latency_target:
        Fraction of served requests that must meet the latency objective.
    availability_target:
        Fraction of terminal requests that must not be errors.
    windows:
        ``(label, seconds)`` burn-rate windows; the longest bounds the
        tracker's ring size.
    """

    latency_objective_seconds: float = 1.0
    latency_target: float = 0.95
    availability_target: float = 0.99
    windows: tuple[tuple[str, float], ...] = (("5m", 300.0), ("1h", 3600.0))

    def __post_init__(self) -> None:
        if self.latency_objective_seconds <= 0:
            raise ValueError("latency_objective_seconds must be positive")
        for name, target in (
            ("latency_target", self.latency_target),
            ("availability_target", self.availability_target),
        ):
            if not 0.0 < target < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {target}")
        if not self.windows:
            raise ValueError("at least one burn-rate window is required")
        for label, seconds in self.windows:
            if seconds <= 0:
                raise ValueError(f"window {label!r} must span > 0 seconds")

    @property
    def max_window_seconds(self) -> float:
        """Span of the longest window (the ring bound)."""
        return max(seconds for _, seconds in self.windows)


class SloTracker:
    """Per-second outcome ring + burn-rate gauges + latency exemplars.

    ``record()`` is O(1) amortised (two integer bumps plus incremental
    pruning); ``publish()`` walks at most ``max_window_seconds`` buckets
    and is meant to run on scrape, not per request.  Internally locked
    with a plain lock — same rationale as the flight recorder: ``obs/``
    sits below the serving layer's lock model and every critical section
    here is short and non-blocking.
    """

    def __init__(self, config: SloConfig, registry: MetricsRegistry) -> None:
        self.config = config
        self._registry = registry
        #: second-bucket → [total, bad, slow] counts.
        self._buckets: dict[int, list[int]] = {}
        self._oldest: int | None = None
        #: histogram upper edge (le) → most recent request id in bucket.
        self._exemplars: dict[float, str] = {}
        self._lock = threading.Lock()

    def register_gauges(self) -> None:
        """Pre-register every burn-rate gauge at zero (full boot surface)."""
        for label, _ in self.config.windows:
            for slo in ("availability", "latency"):
                self._registry.gauge(
                    "serve_slo_burn_rate", slo=slo, window=label
                ).set(0.0)

    def record(
        self,
        ok: bool,
        latency_seconds: float,
        request_id: str,
        now: float | None = None,
    ) -> None:
        """Account one terminal request outcome.

        ``ok=False`` consumes availability budget; an ``ok`` request
        slower than the latency objective consumes latency budget.  Shed
        requests should be recorded with ``ok=True`` (shedding is the
        policy working, not the service failing) — the caller decides.
        """
        at = int(clock() if now is None else now)
        slow = ok and latency_seconds > self.config.latency_objective_seconds
        edge_index = bisect_left(SECONDS_BUCKETS, latency_seconds)
        edge = (
            SECONDS_BUCKETS[edge_index]
            if edge_index < len(SECONDS_BUCKETS)
            else float("inf")
        )
        cutoff = at - int(self.config.max_window_seconds) - 1
        with self._lock:
            bucket = self._buckets.setdefault(at, [0, 0, 0])
            bucket[0] += 1
            if not ok:
                bucket[1] += 1
            if slow:
                bucket[2] += 1
            self._exemplars[edge] = request_id
            if self._oldest is None or at < self._oldest:
                self._oldest = at
            while self._oldest is not None and self._oldest < cutoff:
                self._buckets.pop(self._oldest, None)
                self._oldest = min(self._buckets) if self._buckets else None

    def _window_counts(self, seconds: float, now: float) -> tuple[int, int, int]:
        """(total, bad, slow) summed over the trailing *seconds*."""
        lo = int(now - seconds)
        total = bad = slow = 0
        for at, (t, b, s) in self._buckets.items():
            if at >= lo:
                total += t
                bad += b
                slow += s
        return total, bad, slow

    def burn_rates(self, now: float | None = None) -> dict[str, dict[str, float]]:
        """``{window label: {"availability": burn, "latency": burn}}``."""
        at = clock() if now is None else now
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            for label, seconds in self.config.windows:
                total, bad, slow = self._window_counts(seconds, at)
                if total == 0:
                    out[label] = {"availability": 0.0, "latency": 0.0}
                    continue
                out[label] = {
                    "availability": (bad / total)
                    / (1.0 - self.config.availability_target),
                    "latency": (slow / total) / (1.0 - self.config.latency_target),
                }
        return out

    def publish(self, now: float | None = None) -> None:
        """Refresh the ``serve_slo_burn_rate`` gauges (called on scrape)."""
        for label, burns in self.burn_rates(now).items():
            for slo, burn in burns.items():
                self._registry.gauge(
                    "serve_slo_burn_rate", slo=slo, window=label
                ).set(burn)

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        """JSON-ready objectives + burns + exemplars (``/debug/requests``)."""
        with self._lock:
            exemplars = {
                ("+Inf" if edge == float("inf") else f"{edge:g}"): request_id
                for edge, request_id in sorted(self._exemplars.items())
            }
        return {
            "objectives": {
                "latency_objective_seconds": self.config.latency_objective_seconds,
                "latency_target": self.config.latency_target,
                "availability_target": self.config.availability_target,
            },
            "burn_rates": self.burn_rates(now),
            "latency_exemplars": exemplars,
        }
