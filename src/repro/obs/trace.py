"""Spans and tracers (the timing half of :mod:`repro.obs`).

A :class:`Span` is one timed region — monotonic start, duration, parent
id, free-form attributes, and point-in-time events (the supervisor records
retries and fallbacks as events on the enclosing step-2 span).  A
:class:`Tracer` allocates span ids and buffers finished spans for export.

Concurrency model
-----------------
* **Threads** — the *current span* lives in a :mod:`contextvars` context
  variable, so concurrently running threads (and tasks) each see their own
  ancestry; the span buffer itself is appended under a lock.
* **Processes** — ``fork`` gives every pool worker a copy-on-write snapshot
  of the parent's tracer which the parent can never see again, so workers
  never record into it: the executor passes an *enable* flag through the
  pool initializer, each worker task builds a fresh per-process
  :class:`Tracer`, and its exported spans ride home in the task's result
  tuple, where :meth:`Tracer.adopt` reparents them under the parent's
  shard span (worker ids are remapped into the parent's id space and the
  worker timeline is rebased — ``perf_counter`` origins differ between
  processes).

Everything is a no-op while no tracer is active: :func:`span` costs one
module-attribute check, which keeps the instrumented hot paths within the
"near-zero overhead when disabled" budget.

:data:`clock` is the blessed monotonic clock; instrumented modules (see
repro-check rule RC105) must route timing through it — or through
:class:`Timer`/:func:`span` — instead of calling ``time.perf_counter``
directly, so there is exactly one place the project's notion of time is
defined.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from typing import Any, TypeVar

__all__ = [
    "Span",
    "Timer",
    "Tracer",
    "activate",
    "active",
    "add_event",
    "clock",
    "current_span_id",
    "span",
    "traced",
]

#: The project's monotonic clock.  One assignment, many call sites: RC105
#: forbids instrumented modules from calling ``time.perf_counter`` behind
#: the observability layer's back.
clock = time.perf_counter

#: A serialized span as it crosses process boundaries (JSON-able).
SpanDict = dict[str, Any]

_F = TypeVar("_F", bound=Callable[..., Any])


@dataclass
class Span:
    """One timed region of a run.

    ``start`` is a :data:`clock` reading (process-local monotonic seconds);
    ``duration`` is ``None`` while the span is open.  ``events`` are
    point-in-time annotations holding their offset from the span start, so
    they survive cross-process rebasing unchanged.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    duration: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)

    def set_attrs(self, **attrs: Any) -> None:
        """Attach or overwrite attributes."""
        self.attributes.update(attrs)

    def add_event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event at the current clock reading."""
        event: dict[str, Any] = {"name": name, "offset": clock() - self.start}
        event.update(attrs)
        self.events.append(event)

    def end(self, at: float | None = None) -> None:
        """Close the span (idempotent; the first close wins)."""
        if self.duration is None:
            self.duration = (clock() if at is None else at) - self.start

    def to_dict(self) -> SpanDict:
        """JSON-able representation (the run report's ``spans`` rows)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "events": [dict(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: SpanDict) -> Span:
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            span_id=int(data["span_id"]),
            parent_id=None if data.get("parent_id") is None else int(data["parent_id"]),
            start=float(data["start"]),
            duration=None if data.get("duration") is None else float(data["duration"]),
            attributes=dict(data.get("attributes", {})),
            events=[dict(e) for e in data.get("events", ())],
        )


class Tracer:
    """Allocates span ids and buffers spans for export."""

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        self.meta: dict[str, Any] = dict(meta or {})
        self._spans: list[Span] = []
        self._next_id = 1
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def _alloc_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def start_span(
        self, name: str, parent_id: int | None = None, **attrs: Any
    ) -> Span:
        """Open a span; parent defaults to the context's current span."""
        if parent_id is None:
            parent_id = current_span_id()
        with self._lock:
            created = Span(
                name=name,
                span_id=self._alloc_id(),
                parent_id=parent_id,
                start=clock(),
                attributes=dict(attrs),
            )
            self._spans.append(created)
        return created

    def record(
        self,
        name: str,
        duration: float,
        parent_id: int | None = None,
        start: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Record a region that already finished (e.g. a shard's remote wall).

        When *start* is omitted the span is backdated so it *ends* now —
        the executor's merge loop records each shard's span this way.
        """
        if parent_id is None:
            parent_id = current_span_id()
        begin = clock() - duration if start is None else start
        with self._lock:
            created = Span(
                name=name,
                span_id=self._alloc_id(),
                parent_id=parent_id,
                start=begin,
                duration=duration,
                attributes=dict(attrs),
            )
            self._spans.append(created)
        return created

    def adopt(
        self,
        spans: Sequence[SpanDict],
        parent_id: int | None,
        rebase: tuple[float, float] | None = None,
    ) -> list[Span]:
        """Graft spans exported by another process under *parent_id*.

        Ids are remapped into this tracer's id space; internal parent links
        are preserved and foreign roots reparent to *parent_id*.  *rebase*
        shifts the foreign timeline: a foreign ``start`` of ``rebase[0]``
        lands at local time ``rebase[1]`` (monotonic clocks have
        per-process origins, so raw foreign starts are meaningless here).
        Spans must arrive parent-before-child, which :meth:`export`
        guarantees (spans are buffered in creation order).
        """
        idmap: dict[int, int] = {}
        adopted: list[Span] = []
        with self._lock:
            for data in spans:
                copied = Span.from_dict(data)
                # Resolve the parent link before registering this span's own
                # id: a stale foreign parent equal to the span's own id (a
                # fork-inherited context var, say) must reparent to
                # *parent_id*, not to the span itself.
                copied.parent_id = (
                    idmap.get(copied.parent_id, parent_id)
                    if copied.parent_id is not None
                    else parent_id
                )
                idmap[copied.span_id] = copied.span_id = self._alloc_id()
                if rebase is not None:
                    copied.start = copied.start - rebase[0] + rebase[1]
                self._spans.append(copied)
                adopted.append(copied)
        return adopted

    @property
    def spans(self) -> list[Span]:
        """The buffered spans, in creation (= parent-before-child) order."""
        with self._lock:
            return list(self._spans)

    def export(self) -> list[SpanDict]:
        """Serialize every buffered span (open spans export as open)."""
        with self._lock:
            return [s.to_dict() for s in self._spans]


#: The tracer of the run in flight, or None.  Module state on purpose —
#: instrumentation spans pipeline, executor, supervisor and the hardware
#: models without threading a tracer through every signature (the same
#: pattern as :mod:`repro.analysis.determinism`).  Parent-process only:
#: workers get a fresh tracer per task, never this one.
_ACTIVE: Tracer | None = None

#: Current span id of the executing context (thread/task local).
_CURRENT: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def active() -> Tracer | None:
    """The currently active tracer, if any."""
    return _ACTIVE


@contextmanager
def activate(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Make *tracer* current for the dynamic extent.

    Unlike the detsan recorder, ``activate(None)`` *deactivates* tracing
    for the extent — pool workers use this to shed the fork-inherited
    parent tracer before deciding locally whether to trace.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def reset() -> None:
    """Drop the ambient tracer and current-span context unconditionally.

    Pool initializers call this: under ``fork`` a worker inherits a
    copy-on-write snapshot of the parent's active tracer, and anything
    recorded into that copy is silently unreachable from the parent.  The
    current-span context var is cleared too — the inherited id belongs to
    the parent's id space and would otherwise leak into the worker's first
    span as a meaningless (or worse, colliding) parent link.
    """
    global _ACTIVE
    _ACTIVE = None
    _CURRENT.set(None)


def current_span_id() -> int | None:
    """Span id of the innermost open :func:`span`, or None."""
    return _CURRENT.get()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Open a child span of the current context; no-op when not tracing.

    Yields the :class:`Span` (or ``None`` when tracing is off, so callers
    can guard optional attribute updates with ``if sp is not None``).
    """
    tracer = _ACTIVE
    if tracer is None:
        yield None
        return
    opened = tracer.start_span(name, **attrs)
    token = _CURRENT.set(opened.span_id)
    try:
        yield opened
    finally:
        _CURRENT.reset(token)
        opened.end()


def add_event(name: str, **attrs: Any) -> None:
    """Attach an event to the innermost open span; no-op when not tracing."""
    tracer = _ACTIVE
    if tracer is None:
        return
    current = _CURRENT.get()
    if current is None:
        return
    # Spans are few (one per stage/shard); a reverse scan is simpler and
    # cheaper than an id->span map.  The event lands on the span after
    # the lock is released: only this context's thread mutates its own
    # open span, the lock just keeps the scan safe against appends.
    with tracer._lock:
        candidates = list(tracer._spans)
    for candidate in reversed(candidates):
        if candidate.span_id == current:
            candidate.add_event(name, **attrs)
            return


def traced(name: str | None = None, **attrs: Any) -> Callable[[_F], _F]:
    """Decorator form of :func:`span` (span named after the function)."""

    def decorate(fn: _F) -> _F:
        label = name or fn.__qualname__

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if _ACTIVE is None:
                return fn(*args, **kwargs)
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


@dataclass
class Timer:
    """Accumulating stopwatch over :data:`clock`, usable as a context manager.

    The primitive behind :class:`repro.util.timing.Stopwatch` (kept as a
    thin shim for external users) and
    :meth:`repro.core.profile.PipelineProfile.timing`.
    """

    seconds: float = 0.0
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self) -> Timer:
        self._t0 = clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self.seconds += clock() - self._t0

    def reset(self) -> None:
        """Zero the accumulator."""
        self.seconds = 0.0
