"""Request identity: the ``RequestContext`` every serve-path span joins on.

A request acquires its identity at the HTTP edge (``server.py`` honours an
inbound ``X-Request-Id`` header, or mints one) and the same
:class:`RequestContext` then travels the whole path — admission ticket,
dispatcher, supervisor config, warm-worker task payload — so a span
recorded three processes away can still be re-parented under the
originating request's span and a flight-recorder row, a client bench
record and a detsan manifest detail all join on one key.

This module is deliberately tiny and stdlib-only: it sits below both
``serve/`` and ``core/`` and must import neither.
"""

from __future__ import annotations

import re
import uuid
from dataclasses import dataclass

__all__ = ["RequestContext", "mint_request_id", "accept_request_id"]

#: Inbound request ids must match this (also what makes a request id safe
#: to embed in a spool filename): short, printable, no path separators.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-]{0,63}$")


def mint_request_id() -> str:
    """A fresh, collision-resistant request id (32 hex chars)."""
    return uuid.uuid4().hex


def accept_request_id(header: str | None) -> str:
    """Honour a client-supplied id when it is well-formed, else mint one.

    A malformed header is *replaced*, not rejected — request identity is
    an observability concern and must never fail a search request.  The
    accepted charset doubles as the filename-safety guarantee for
    ``--trace-dir`` spooling.
    """
    if header is not None and _REQUEST_ID_RE.match(header):
        return header
    return mint_request_id()


@dataclass(frozen=True)
class RequestContext:
    """Identity + deadline of one request, immutable once minted.

    Attributes
    ----------
    request_id:
        Client-visible id, echoed on every HTTP response as
        ``X-Request-Id``; honoured from the inbound header when valid.
    trace_id:
        Server-minted id of this request's span tree.  Distinct from
        ``request_id`` so a client retrying with the same id still yields
        distinguishable traces.
    request_index:
        The service's monotonically increasing admission index (``None``
        before admission — e.g. a request rejected while draining).
    deadline_at:
        Absolute deadline on the :func:`repro.obs.trace.clock` timeline,
        or ``None`` for an unbounded request.
    """

    request_id: str
    trace_id: str
    request_index: int | None = None
    deadline_at: float | None = None

    @classmethod
    def new(
        cls,
        request_id: str | None = None,
        request_index: int | None = None,
        deadline_at: float | None = None,
    ) -> RequestContext:
        """Mint a context, generating any id not supplied."""
        return cls(
            request_id=request_id if request_id is not None else mint_request_id(),
            trace_id=mint_request_id(),
            request_index=request_index,
            deadline_at=deadline_at,
        )
