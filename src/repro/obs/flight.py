"""The service flight recorder: last-N request records + trace documents.

Two bounded ring buffers, both keyed by request id:

* :class:`FlightRecorder` — one compact :class:`FlightRecord` per
  *terminal* request outcome (served, shed, deadline, error), carrying
  the status, the latency breakdown (queue/dispatch/step2/merge), the
  retry/fallback/breaker events observed on the request's span tree and
  the shed reason.  Served at ``GET /debug/requests`` and dumped to disk
  on SIGTERM drain, it answers "what did the last N requests experience"
  without any external collector.
* :class:`RequestTraceStore` — the full span tree of the last N traced
  requests, served at ``GET /debug/trace/<request id>``.

Both are internally locked with a plain ``threading.Lock`` rather than a
locksan-instrumented one: ``obs/`` sits *below* the serving layer (the
static lock model and RC30x scope cover ``serve/``), must stay importable
with zero ``serve``/``core`` dependencies, and every method here is a
short O(1)/O(N) critical section with no blocking calls inside.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["FLIGHT_VERSION", "FlightRecord", "FlightRecorder", "RequestTraceStore"]

#: Bumped on any breaking change to the flight-record shape
#: (mirrored by ``schemas/flight_record.schema.json``).
FLIGHT_VERSION = 1


@dataclass(frozen=True)
class FlightRecord:
    """One request's terminal outcome, compact enough to keep N thousand.

    ``breakdown`` keys are seconds: ``queue`` (admission wait),
    ``step1``/``step2``/``merge`` (pipeline phase walls — ``merge`` is
    the gapped/post-processing stage), ``dispatch`` (handler wall not
    attributed to a pipeline phase: fault injection, healing, breaker
    accounting, response formatting) and ``total`` (handler wall).  Event
    counts come from the request's span tree, so they are zero when
    tracing is disabled.
    """

    request_id: str
    trace_id: str
    request_index: int | None
    status: str  # ok | shed | deadline | error | draining
    code: int
    breakdown: dict[str, float] = field(default_factory=dict)
    retry_events: int = 0
    fallback_events: int = 0
    breaker_events: tuple[str, ...] = ()
    shed_reason: str | None = None
    retry_after: float | None = None
    degraded: bool | None = None
    alignments: int | None = None
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready row (breaker events as a list)."""
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "request_index": self.request_index,
            "status": self.status,
            "code": self.code,
            "breakdown": dict(self.breakdown),
            "retry_events": self.retry_events,
            "fallback_events": self.fallback_events,
            "breaker_events": list(self.breaker_events),
            "shed_reason": self.shed_reason,
            "retry_after": self.retry_after,
            "degraded": self.degraded,
            "alignments": self.alignments,
            "error": self.error,
        }


class FlightRecorder:
    """Bounded ring of the last *capacity* :class:`FlightRecord` rows.

    Appends never block and never fail: once full, the oldest record is
    evicted and counted in :attr:`dropped` — a flight recorder that could
    stall or OOM the service it observes would be worse than none.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[FlightRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    def record(self, record: FlightRecord) -> None:
        """Append one terminal-outcome record (evicting the oldest if full)."""
        with self._lock:
            self._records.append(record)
            self._recorded += 1

    @property
    def recorded(self) -> int:
        """Total records ever appended (eviction does not decrement)."""
        with self._lock:
            return self._recorded

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound."""
        with self._lock:
            return self._recorded - len(self._records)

    def snapshot(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Newest-first JSON rows (at most *limit* when given)."""
        with self._lock:
            rows = list(self._records)
        rows.reverse()
        if limit is not None:
            rows = rows[: max(0, limit)]
        return [r.to_dict() for r in rows]

    def find(self, request_id: str) -> dict[str, Any] | None:
        """The newest record for *request_id*, or ``None``."""
        with self._lock:
            rows = list(self._records)
        for record in reversed(rows):
            if record.request_id == request_id:
                return record.to_dict()
        return None

    def to_dict(self, limit: int | None = None) -> dict[str, Any]:
        """The schema-versioned ``/debug/requests`` document."""
        return {
            "version": FLIGHT_VERSION,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "records": self.snapshot(limit),
        }

    def dump(self, path: str) -> None:
        """Write the full document to *path* (the SIGTERM-drain dump)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


class RequestTraceStore:
    """Bounded id-keyed ring of per-request trace documents.

    Holds the last *capacity* schema-versioned trace documents (see
    ``REQUEST_TRACE_SCHEMA`` in :mod:`repro.obs.export`) for
    ``GET /debug/trace/<id>``.  A repeated request id replaces the older
    document — the newest trace wins, matching client retry semantics.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("trace store capacity must be >= 1")
        self.capacity = capacity
        self._docs: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()

    def retain(self, doc: dict[str, Any]) -> None:
        """Store *doc* under its ``request_id``, evicting the oldest."""
        request_id = str(doc["request_id"])
        with self._lock:
            self._docs.pop(request_id, None)
            self._docs[request_id] = doc
            while len(self._docs) > self.capacity:
                self._docs.popitem(last=False)

    def get(self, request_id: str) -> dict[str, Any] | None:
        """The stored trace document for *request_id*, or ``None``."""
        with self._lock:
            return self._docs.get(request_id)

    def ids(self) -> list[str]:
        """Stored request ids, oldest first."""
        with self._lock:
            return list(self._docs)
