"""Opt-in sampling wall-clock profiler (stdlib ``signal.setitimer``).

A :class:`SamplingProfiler` arms ``ITIMER_REAL`` so ``SIGALRM`` fires
every *interval*; the handler walks ``sys._current_frames()`` and bumps a
counter per ``(thread, stack)`` — collapsed-stack output (flamegraph
input) plus a per-pipeline-phase attribution derived from recognisable
frame names (``index_banks`` → step1, ``run_step2``/``run_stream`` →
step2, ``gapped_stage`` → merge, ``_dispatch_loop`` → dispatch).

Signal-safety rules this module lives by (documented in DESIGN §10):

* ``signal.signal`` is **main-thread only** — :meth:`install` must run at
  boot from the main thread (the serve CLI does).  ``signal.setitimer``
  is callable from any thread, so the ``/debug/profile`` handler thread
  only arms/disarms an already-installed handler.
* The handler **takes no locks** and calls nothing that does: it touches
  one plain dict owned by this profiler (handlers always run in the main
  thread, so handler-vs-handler races cannot happen) and reads are only
  allowed while the timer is disarmed (:meth:`report` enforces this).
* **Fork-awareness**: interval timers are *not* inherited across
  ``fork()`` but signal dispositions *are* — a pool worker forked while
  profiling would die to an unhandled-in-context SIGALRM state.
  :meth:`install` registers an ``os.register_at_fork`` hook that disarms
  the timer and resets ``SIGALRM`` in every child.
* Samples are wall-clock (``ITIMER_REAL``), so blocked/parked threads
  are visible — the right choice for a service whose latency is mostly
  waiting, not CPU.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from types import FrameType
from typing import Any

__all__ = ["PROFILE_VERSION", "PHASE_MARKERS", "SamplingProfiler"]

#: Bumped on any breaking change to the profile document shape.
PROFILE_VERSION = 1

#: Frame (function) names that anchor a sample to a pipeline phase.
#: Scanned leaf-first, first match wins; unmatched samples are "other".
PHASE_MARKERS: dict[str, str] = {
    "index_banks": "step1",
    "run_step2": "step2",
    "run_stream": "step2",
    "gapped_stage": "merge",
    "_handle": "dispatch",
    "_dispatch_loop": "dispatch",
    "serve_forever": "idle",
}

#: Deepest stack recorded per thread per sample (beyond it, frames are
#: summarised as a single truncation marker).
_MAX_DEPTH = 64

#: Never-set module event whose ``wait(timeout=...)`` is the sanctioned
#: bounded sleep (same idiom as ``serve/client.py``; RC303).
_SLEEP = threading.Event()


def _disarm_in_child() -> None:
    """``os.register_at_fork`` child hook: no profiling in pool workers.

    The itimer itself does not survive fork, but the handler disposition
    does; reset both so a worker's signal state matches a cold start.
    """
    try:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


class SamplingProfiler:
    """Wall-clock sampling profiler for the serving process.

    One instance per process; :meth:`install` wires the SIGALRM handler
    (main thread only), then either :meth:`start`/:meth:`stop` bracket a
    whole session (the ``--profile-out`` mode) or :meth:`run_for`
    profiles a bounded window on demand (the ``/debug/profile`` mode —
    single-flight, refused while a session profile is running).
    """

    def __init__(self, interval_seconds: float = 0.01) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = interval_seconds
        #: (thread ident, stack tuple) → sample count.  Only ever mutated
        #: from the SIGALRM handler (main thread); read while disarmed.
        self._samples: dict[tuple[int, tuple[str, ...]], int] = {}
        self._ticks = 0
        self._armed = False
        self._continuous = False
        self._installed = False
        #: Single-flight guard for :meth:`run_for`.
        self._flight = threading.Lock()

    # -- lifecycle ------------------------------------------------------
    def install(self) -> None:
        """Install the SIGALRM handler (call once, from the main thread)."""
        if self._installed:
            return
        if threading.current_thread() is not threading.main_thread():
            raise RuntimeError(
                "SamplingProfiler.install() must run on the main thread "
                "(signal.signal is main-thread only)"
            )
        signal.signal(signal.SIGALRM, self._sample)
        os.register_at_fork(after_in_child=_disarm_in_child)
        self._installed = True

    @property
    def installed(self) -> bool:
        """True once the SIGALRM handler is wired."""
        return self._installed

    @property
    def running(self) -> bool:
        """True while the session (continuous) profile is armed."""
        return self._continuous

    def _arm(self) -> None:
        signal.setitimer(
            signal.ITIMER_REAL, self.interval_seconds, self.interval_seconds
        )
        self._armed = True

    def _disarm(self) -> None:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        self._armed = False

    def start(self) -> None:
        """Begin a session-long profile (``--profile-out``)."""
        if not self._installed:
            raise RuntimeError("install() the profiler before start()")
        if self._continuous:
            return
        self._continuous = True
        self._arm()

    def stop(self) -> None:
        """End the session profile; :meth:`report` becomes readable."""
        if not self._continuous:
            return
        self._disarm()
        self._continuous = False

    def run_for(self, seconds: float) -> dict[str, Any] | None:
        """Profile a bounded window and return its report.

        Callable from any thread (only ``setitimer`` is touched, never
        ``signal.signal``).  Returns ``None`` when another window is
        already in flight or a session profile is running — the caller
        maps that to HTTP 409.
        """
        if not self._installed or self._continuous:
            return None
        if not self._flight.acquire(blocking=False):
            return None
        try:
            self._samples = {}
            self._ticks = 0
            self._arm()
            _SLEEP.wait(timeout=max(0.0, seconds))
            self._disarm()
            return self.report(seconds=seconds)
        finally:
            self._flight.release()

    # -- sampling -------------------------------------------------------
    def _sample(self, signum: int, frame: FrameType | None) -> None:
        """SIGALRM handler: one wall-clock sample of every thread."""
        for ident, top in sys._current_frames().items():
            stack: list[str] = []
            f: FrameType | None = top
            depth = 0
            while f is not None:
                if depth >= _MAX_DEPTH:
                    stack.append("<truncated>")
                    break
                code = f.f_code
                if code.co_name != "_sample":  # skip this handler frame
                    stack.append(
                        f"{f.f_globals.get('__name__', '?')}.{code.co_name}"
                    )
                f = f.f_back
                depth += 1
            stack.reverse()
            key = (ident, tuple(stack))
            self._samples[key] = self._samples.get(key, 0) + 1
        self._ticks += 1

    # -- reporting ------------------------------------------------------
    def report(self, seconds: float | None = None) -> dict[str, Any]:
        """Schema-versioned profile document (read only while disarmed)."""
        if self._armed:
            raise RuntimeError("stop the profiler before reading its samples")
        names = {t.ident: t.name for t in threading.enumerate() if t.ident}
        collapsed: list[str] = []
        phases: dict[str, int] = {}
        total = 0
        for (ident, stack), count in sorted(
            self._samples.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            total += count
            thread = names.get(ident, f"thread-{ident}")
            collapsed.append(f"{thread};{';'.join(stack)} {count}")
            phase = "other"
            for entry in reversed(stack):  # leaf-first
                marker = PHASE_MARKERS.get(entry.rpartition(".")[2])
                if marker is not None:
                    phase = marker
                    break
            phases[phase] = phases.get(phase, 0) + count
        return {
            "version": PROFILE_VERSION,
            "interval_seconds": self.interval_seconds,
            "window_seconds": seconds,
            "ticks": self._ticks,
            "samples": total,
            "phases": dict(sorted(phases.items())),
            "collapsed": collapsed,
        }
