"""Counters, gauges and fixed-bucket histograms (the counting half of obs).

A :class:`MetricsRegistry` is process-local and lock-guarded; shard workers
each build their own and the executor merges the serialized dicts back in
the parent.  Merging is **commutative and associative** — counters and
histogram cells add, gauges keep the max — so the merged result is
identical no matter which order shard results arrive in.  Histogram bucket
boundaries are fixed at creation (never derived from observed data), which
is what makes repeated runs of a deterministic workload produce
bit-identical histograms.

Like :mod:`repro.obs.trace`, everything is a no-op while no registry is
active: the module-level helpers (:func:`inc`, :func:`observe`,
:func:`gauge_set`, :func:`gauge_max`) cost one attribute check when
observability is off, which is what lets the hwsim/psc hardware models
stay instrumented unconditionally.
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PAIR_BUCKETS",
    "SECONDS_BUCKETS",
    "activate",
    "active",
    "gauge_max",
    "gauge_set",
    "inc",
    "observe",
    "prometheus_text",
]

#: Default buckets for pair/cell counts: powers of four from 1 to ~16M.
#: Geometric, fixed, and wide enough that the demo and the benchmarks land
#: in interior buckets.
PAIR_BUCKETS: tuple[float, ...] = tuple(4.0**k for k in range(13))

#: Default buckets for wall-clock seconds: 1 µs .. ~1000 s, powers of ten
#: with a 1/3/10 subdivision.
SECONDS_BUCKETS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 3) for m in (1.0, 3.0)
)

#: Label sets are stored canonically as a sorted tuple of (key, value).
LabelItems = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count; merge adds."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def merge(self, other: Counter) -> None:
        self.value += other.value


@dataclass
class Gauge:
    """Last-or-extreme value; merge keeps the max.

    High-water marks (FIFO depth, batch size) are the dominant gauge use
    here, and max-merge is the only commutative choice for them.
    """

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def merge(self, other: Gauge) -> None:
        self.set_max(other.value)


@dataclass
class Histogram:
    """Fixed-boundary histogram; merge adds cell-wise.

    ``boundaries`` are upper bucket edges (inclusive, Prometheus ``le``
    convention); ``counts`` has ``len(boundaries) + 1`` cells, the last
    being the overflow (``+Inf``) bucket.
    """

    boundaries: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    samples: int = 0

    def __post_init__(self) -> None:
        if tuple(sorted(self.boundaries)) != tuple(self.boundaries):
            raise ValueError("histogram boundaries must be sorted ascending")
        if not self.counts:
            self.counts = [0] * (len(self.boundaries) + 1)
        elif len(self.counts) != len(self.boundaries) + 1:
            raise ValueError("histogram counts/boundaries length mismatch")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.samples += 1

    def merge(self, other: Histogram) -> None:
        if other.boundaries != self.boundaries:
            raise ValueError(
                "cannot merge histograms with different boundaries: "
                f"{self.boundaries!r} vs {other.boundaries!r}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.samples += other.samples


Metric = Union[Counter, Gauge, Histogram]

# Read-only (workers fork with this module imported; RC101 scope).
_KINDS: Mapping[str, type] = MappingProxyType(
    {
        "counter": Counter,
        "gauge": Gauge,
        "histogram": Histogram,
    }
)


class MetricsRegistry:
    """Process-local registry of metrics keyed by (name, labels).

    One metric *family* (a name) has one kind; requesting the same name
    with a conflicting kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], Metric] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def _get(
        self, kind: str, name: str, labels: dict[str, Any], **init: Any
    ) -> Metric:
        key = (name, _labels_key(labels))
        with self._lock:
            known = self._kinds.get(name)
            if known is None:
                self._kinds[name] = kind
            elif known != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {known}, not {kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = _KINDS[kind](**init)
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        metric = self._get("counter", name, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        metric = self._get("gauge", name, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        metric = self._get(
            "histogram",
            name,
            labels,
            boundaries=tuple(boundaries) if boundaries is not None else PAIR_BUCKETS,
        )
        assert isinstance(metric, Histogram)
        return metric

    def merge(self, other: MetricsRegistry | dict[str, Any]) -> None:
        """Fold another registry (or its :meth:`to_dict`) into this one."""
        if isinstance(other, MetricsRegistry):
            other = other.to_dict()
        for row in other.get("metrics", ()):
            name = row["name"]
            kind = row["kind"]
            labels = dict(row.get("labels", {}))
            if kind == "counter":
                self.counter(name, **labels).inc(float(row["value"]))
            elif kind == "gauge":
                self.gauge(name, **labels).set_max(float(row["value"]))
            elif kind == "histogram":
                hist = self.histogram(
                    name, boundaries=tuple(row["boundaries"]), **labels
                )
                hist.merge(
                    Histogram(
                        boundaries=tuple(row["boundaries"]),
                        counts=[int(n) for n in row["counts"]],
                        total=float(row["total"]),
                        samples=int(row["samples"]),
                    )
                )
            else:  # pragma: no cover - to_dict never emits other kinds
                raise ValueError(f"unknown metric kind {kind!r}")

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-able form (rows sorted by name then labels)."""
        rows: list[dict[str, Any]] = []
        with self._lock:
            items = sorted(self._metrics.items())
            kinds = dict(self._kinds)
        for (name, labels), metric in items:
            row: dict[str, Any] = {
                "name": name,
                "kind": kinds[name],
                "labels": {k: v for k, v in labels},
            }
            if isinstance(metric, Histogram):
                row.update(
                    boundaries=list(metric.boundaries),
                    counts=list(metric.counts),
                    total=metric.total,
                    samples=metric.samples,
                )
            else:
                row["value"] = metric.value
            rows.append(row)
        return {"metrics": rows}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> MetricsRegistry:
        """Inverse of :meth:`to_dict`."""
        registry = cls()
        registry.merge(data)
        return registry


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Families sort by name, series by label set; histograms expand into
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.  The
    output is deterministic for a deterministic workload, which is what
    lets a golden-file test pin it down.
    """
    data = registry.to_dict()["metrics"]
    by_family: dict[str, list[dict[str, Any]]] = {}
    for row in data:
        by_family.setdefault(row["name"], []).append(row)

    def fmt_labels(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
        items = sorted(labels.items())
        if extra is not None:
            items.append(extra)
        if not items:
            return ""
        body = ",".join(f'{k}="{v}"' for k, v in items)
        return "{" + body + "}"

    def fmt_value(value: float) -> str:
        return repr(int(value)) if float(value).is_integer() else repr(value)

    lines: list[str] = []
    for name in sorted(by_family):
        rows = by_family[name]
        lines.append(f"# TYPE {name} {rows[0]['kind']}")
        for row in rows:
            labels = dict(row.get("labels", {}))
            if row["kind"] == "histogram":
                running = 0
                for edge, n in zip(row["boundaries"], row["counts"]):
                    running += n
                    lines.append(
                        f"{name}_bucket"
                        f"{fmt_labels(labels, ('le', fmt_value(edge)))}"
                        f" {running}"
                    )
                running += row["counts"][-1]
                lines.append(
                    f"{name}_bucket{fmt_labels(labels, ('le', '+Inf'))} {running}"
                )
                lines.append(f"{name}_sum{fmt_labels(labels)} {fmt_value(row['total'])}")
                lines.append(f"{name}_count{fmt_labels(labels)} {row['samples']}")
            else:
                lines.append(f"{name}{fmt_labels(labels)} {fmt_value(row['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


#: The registry of the run in flight, or None (observability off).  Same
#: ambient pattern — and the same ``activate(None)`` deactivation
#: semantics — as :mod:`repro.obs.trace`.
_ACTIVE: MetricsRegistry | None = None


def active() -> MetricsRegistry | None:
    """The currently active registry, if any."""
    return _ACTIVE


@contextmanager
def activate(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry | None]:
    """Make *registry* current for the dynamic extent (None deactivates)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


def reset() -> None:
    """Drop the ambient registry unconditionally (see ``trace.reset``)."""
    global _ACTIVE
    _ACTIVE = None


def inc(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment a counter on the active registry; no-op when off."""
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name, **labels).inc(amount)


def observe(
    name: str,
    value: float,
    boundaries: Sequence[float] | None = None,
    **labels: Any,
) -> None:
    """Observe into a histogram on the active registry; no-op when off."""
    registry = _ACTIVE
    if registry is not None:
        registry.histogram(name, boundaries=boundaries, **labels).observe(value)


def gauge_set(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the active registry; no-op when off."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name, **labels).set(value)


def gauge_max(name: str, value: float, **labels: Any) -> None:
    """Raise a high-water gauge on the active registry; no-op when off."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name, **labels).set_max(value)
