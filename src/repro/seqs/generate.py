"""Synthetic genomic workload generators.

The paper evaluates on the Human chromosome 1 (220 Mnt) and four NCBI nr
protein banks (1K–30K proteins).  Neither dataset ships with this
reproduction (no network, no NCBI dump), so this module builds synthetic
equivalents whose *statistics* drive the same code paths:

* background amino-acid composition follows the Robinson & Robinson
  frequencies used by BLAST's Karlin–Altschul statistics, so seed-match
  densities (the quantity that determines step-2 work, PE occupancy and
  therefore every performance table) are realistic;
* protein lengths are log-normal around the paper's observed mean
  (~335 aa: 10,335,365 aa / 30,000 proteins);
* genomes are GC-biased uniform nucleotide text, optionally with planted
  homologs: proteins reverse-translated through a mutation channel and
  spliced in at recorded coordinates.  Planted coordinates are the ground
  truth for the ROC50/AP sensitivity benchmark (paper Table 6).

Every generator takes an explicit ``numpy.random.Generator`` so workloads
are reproducible bit-for-bit across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .alphabet import AMINO, DNA
from .matrices import BLOSUM62, SubstitutionMatrix
from .sequence import Sequence, SequenceBank
from .translate import STANDARD_CODE, GeneticCode

__all__ = [
    "ROBINSON_FREQUENCIES",
    "random_protein",
    "random_protein_bank",
    "random_genome",
    "mutate_protein",
    "reverse_translate",
    "ProteinFamily",
    "make_family",
    "PlantedHomolog",
    "plant_homologs",
    "paper_bank_spec",
]

# Robinson & Robinson (1991) amino-acid background frequencies in
# ARNDCQEGHILKMFPSTWYV order — the standard BLAST background model.
ROBINSON_FREQUENCIES = np.array(
    [
        0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295,
        0.07377, 0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856,
        0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441,
    ]
)
ROBINSON_FREQUENCIES = ROBINSON_FREQUENCIES / ROBINSON_FREQUENCIES.sum()

#: Paper bank sizes: (#proteins, total amino acids) for the 1K/3K/10K/30K
#: NCBI nr extracts of §4 — used to derive mean protein length and to scale
#: synthetic banks.
PAPER_BANKS = {
    "1K": (1_000, 336_232),
    "3K": (3_000, 1_025_835),
    "10K": (10_000, 3_433_471),
    "30K": (30_000, 10_335_365),
}

#: Length of the paper's genome side: Human chromosome 1, in nucleotides.
PAPER_GENOME_NT = 220_000_000


def paper_bank_spec(label: str, scale: float = 1.0) -> tuple[int, float]:
    """Return (n_proteins, mean_length) for a paper bank at linear *scale*.

    ``scale=0.01`` yields a bank 100× smaller in cardinality with the same
    per-protein length distribution, preserving seed-match density.
    """
    n, total = PAPER_BANKS[label]
    n_scaled = max(1, round(n * scale))
    return n_scaled, total / n


def random_protein(
    rng: np.random.Generator,
    length: int,
    frequencies: np.ndarray = ROBINSON_FREQUENCIES,
) -> np.ndarray:
    """Draw a protein code vector from the background composition."""
    return rng.choice(20, size=length, p=frequencies).astype(np.uint8)


def _lognormal_lengths(
    rng: np.random.Generator, n: int, mean: float, sigma: float, min_length: int
) -> np.ndarray:
    """Log-normal integer lengths with the requested arithmetic mean."""
    mu = np.log(mean) - sigma * sigma / 2.0
    lengths = np.round(rng.lognormal(mu, sigma, size=n)).astype(np.int64)
    return np.maximum(lengths, min_length)


def random_protein_bank(
    rng: np.random.Generator,
    n_sequences: int,
    mean_length: float = 335.0,
    sigma: float = 0.55,
    min_length: int = 30,
    name_prefix: str = "prot",
    pad: int = 64,
    redundancy: float = 0.0,
    redundant_identity: float = 0.9,
) -> SequenceBank:
    """Generate a bank of background-composition proteins.

    ``sigma`` controls length dispersion (0.55 approximates nr's long
    tail).  ``redundancy`` is the fraction of sequences generated as
    mutated copies of earlier bank members (at ``redundant_identity``):
    real nr is heavily redundant — paralogs, strain variants, fragments —
    which fattens the tail of the seed index-list length distribution, a
    first-order effect on PE-array occupancy.  0.0 gives an i.i.d. bank.
    """
    if not 0.0 <= redundancy < 1.0:
        raise ValueError("redundancy must be in [0, 1)")
    lengths = _lognormal_lengths(rng, n_sequences, mean_length, sigma, min_length)
    seqs: list[Sequence] = []
    for i, L in enumerate(lengths):
        if seqs and rng.random() < redundancy:
            template = seqs[int(rng.integers(len(seqs)))].codes
            codes = mutate_protein(rng, template, identity=redundant_identity)
        else:
            codes = random_protein(rng, int(L))
        seqs.append(Sequence(f"{name_prefix}{i:06d}", codes, AMINO))
    return SequenceBank(seqs, AMINO, pad=pad)


def random_genome(
    rng: np.random.Generator,
    length: int,
    gc_content: float = 0.41,
    name: str = "chr",
) -> Sequence:
    """Generate a random genome with the given GC content.

    0.41 is the human chromosome 1 GC fraction.
    """
    p_gc = gc_content / 2.0
    p_at = (1.0 - gc_content) / 2.0
    codes = rng.choice(4, size=length, p=[p_at, p_gc, p_gc, p_at]).astype(np.uint8)
    return Sequence(name, codes, DNA)


def _substitution_kernel(matrix: SubstitutionMatrix, temperature: float) -> np.ndarray:
    """Row-stochastic amino-acid replacement kernel from a score matrix.

    ``P(b | a) ∝ exp(score(a, b) / temperature)`` over the 20 canonical
    residues with the diagonal removed — high-scoring (biochemically
    conservative) replacements are preferred, which is what makes mutated
    family members detectable by score-based search at all.
    """
    s = matrix.scores[:20, :20].astype(np.float64)
    w = np.exp(s / temperature)
    np.fill_diagonal(w, 0.0)
    return w / w.sum(axis=1, keepdims=True)


def mutate_protein(
    rng: np.random.Generator,
    codes: np.ndarray,
    identity: float,
    indel_rate: float = 0.01,
    matrix: SubstitutionMatrix = BLOSUM62,
    temperature: float = 2.0,
) -> np.ndarray:
    """Pass a protein through a mutation channel.

    Parameters
    ----------
    identity:
        Target fraction of positions left unchanged (0 < identity ≤ 1).
    indel_rate:
        Per-position probability of opening an indel (geometric length,
        mean 2).
    matrix, temperature:
        Replacement kernel; see :func:`_substitution_kernel`.
    """
    if not 0.0 < identity <= 1.0:
        raise ValueError("identity must be in (0, 1]")
    codes = np.asarray(codes, dtype=np.uint8)
    kernel = _substitution_kernel(matrix, temperature)
    out: list[int] = []
    i = 0
    n = len(codes)
    while i < n:
        r = rng.random()
        if r < indel_rate:
            span = 1 + rng.geometric(0.5)
            if rng.random() < 0.5:
                i += span  # deletion
            else:
                ins = rng.choice(20, size=span, p=ROBINSON_FREQUENCIES)
                out.extend(int(x) for x in ins)  # insertion, keep current residue next
            continue
        a = int(codes[i])
        if a >= 20 or rng.random() < identity:
            out.append(a)
        else:
            out.append(int(rng.choice(20, p=kernel[a])))
        i += 1
    if not out:  # pathological all-deleted case
        out = [int(codes[0])]
    return np.array(out, dtype=np.uint8)


# Synonymous codon lists per amino-acid code, derived from the standard code.
def _codon_choices(code: GeneticCode) -> list[np.ndarray]:
    table = code.table
    choices: list[np.ndarray] = []
    codons = np.array(
        [[(i // 16) % 4, (i // 4) % 4, i % 4] for i in range(64)], dtype=np.uint8
    )
    for aa in range(25):
        rows = codons[table == aa]
        choices.append(rows)
    return choices


_STANDARD_CODON_CHOICES = _codon_choices(STANDARD_CODE)


def reverse_translate(
    rng: np.random.Generator,
    protein: np.ndarray,
    code: GeneticCode = STANDARD_CODE,
) -> np.ndarray:
    """Back-translate a protein into DNA, sampling synonymous codons.

    Residues with no codon (X, B, Z, gap) are emitted as a random sense
    codon — they carry no signal either way.
    """
    if code is STANDARD_CODE:
        choices = _STANDARD_CODON_CHOICES
    else:
        choices = _codon_choices(code)
    protein = np.asarray(protein, dtype=np.uint8)
    nt = np.empty(3 * len(protein), dtype=np.uint8)
    for i, aa in enumerate(protein):
        rows = choices[int(aa)]
        if rows.shape[0] == 0:
            rows = choices[int(rng.integers(20))]
            while rows.shape[0] == 0:  # pragma: no cover - all 20 have codons
                rows = choices[int(rng.integers(20))]
        nt[3 * i : 3 * i + 3] = rows[rng.integers(rows.shape[0])]
    return nt


@dataclass(frozen=True)
class ProteinFamily:
    """An ancestral protein plus mutated members.

    Members model homologs at decreasing identity; the family id links
    queries to planted genome copies in the sensitivity benchmark.
    """

    family_id: int
    ancestor: np.ndarray
    members: list[np.ndarray] = field(default_factory=list)


def make_family(
    rng: np.random.Generator,
    family_id: int,
    length: int,
    n_members: int,
    identity_range: tuple[float, float] = (0.35, 0.9),
) -> ProteinFamily:
    """Create a family: one ancestor, *n_members* mutated descendants."""
    ancestor = random_protein(rng, length)
    lo, hi = identity_range
    members = [
        mutate_protein(rng, ancestor, identity=float(rng.uniform(lo, hi)))
        for _ in range(n_members)
    ]
    return ProteinFamily(family_id, ancestor, members)


@dataclass(frozen=True)
class PlantedHomolog:
    """Ground-truth record of one family member spliced into a genome."""

    family_id: int
    member_index: int
    genome_start: int
    genome_end: int
    strand: int  # +1 forward, -1 reverse


def plant_homologs(
    rng: np.random.Generator,
    genome: Sequence,
    families: list[ProteinFamily],
    code: GeneticCode = STANDARD_CODE,
) -> tuple[Sequence, list[PlantedHomolog]]:
    """Splice every family member into *genome* at random non-overlapping loci.

    Returns the modified genome and the ground-truth plant records.  Members
    are reverse-translated (random synonymous codons) and inserted on a
    random strand, overwriting background sequence in place so genome length
    is preserved and coordinates stay valid.
    """
    if genome.alphabet is not DNA:
        raise ValueError("plant_homologs expects a DNA genome")
    buf = genome.codes.copy()
    n = len(buf)
    records: list[PlantedHomolog] = []
    occupied: list[tuple[int, int]] = []

    def overlaps(a: int, b: int) -> bool:
        return any(not (b <= s or e <= a) for s, e in occupied)

    for fam in families:
        for m_idx, member in enumerate(fam.members):
            nt = reverse_translate(rng, member, code)
            span = len(nt)
            if span >= n:
                raise ValueError("genome too short for planted member")
            for _ in range(1000):
                start = int(rng.integers(0, n - span))
                if not overlaps(start, start + span):
                    break
            else:
                raise RuntimeError("could not place homolog without overlap")
            strand = 1 if rng.random() < 0.5 else -1
            from .translate import reverse_complement

            buf[start : start + span] = nt if strand == 1 else reverse_complement(nt)
            occupied.append((start, start + span))
            records.append(
                PlantedHomolog(fam.family_id, m_idx, start, start + span, strand)
            )
    return Sequence(genome.name, buf, DNA, genome.description), records
