"""Amino-acid substitution matrices.

The matrices ship embedded in NCBI text format and are parsed once, at import
time, into dense ``(25, 25)`` ``int8`` arrays laid out against the code
assignment of :mod:`repro.seqs.alphabet` (20 canonical residues, then B, Z,
X, ``*`` and the gap sentinel ``-``).

A dense small matrix is exactly what the paper's PE stores in its
substitution ROM (Figure 2): two 5-bit amino-acid codes address a signed
cost.  Keeping the software layout identical to the hardware ROM layout lets
the cycle-accurate simulator and the vectorised software kernel share one
array (see :class:`repro.hwsim.memory.Rom`).

The gap sentinel row/column is set to :data:`GAP_SCORE` (strongly negative)
so windows that overlap inter-sequence padding can never accumulate score
across a sequence boundary.
"""

from __future__ import annotations

import numpy as np

from .alphabet import AA_LETTERS, GAP_CODE

__all__ = ["SubstitutionMatrix", "BLOSUM62", "BLOSUM80", "BLOSUM45", "get_matrix", "GAP_SCORE"]

#: Score assigned to any pairing that involves the gap/padding sentinel.
GAP_SCORE = -16

_BLOSUM62_TEXT = """
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""

_BLOSUM80_TEXT = """
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  5 -2 -2 -2 -1 -1 -1  0 -2 -2 -2 -1 -1 -3 -1  1  0 -3 -2  0 -2 -1 -1 -6
R -2  6 -1 -2 -4  1 -1 -3  0 -3 -3  2 -2 -4 -2 -1 -1 -4 -3 -3 -2  0 -1 -6
N -2 -1  6  1 -3  0 -1 -1  0 -4 -4  0 -3 -4 -3  0  0 -4 -3 -4  4  0 -1 -6
D -2 -2  1  6 -4 -1  1 -2 -2 -4 -5 -1 -4 -4 -2 -1 -1 -6 -4 -4  4  1 -2 -6
C -1 -4 -3 -4  9 -4 -5 -4 -4 -2 -2 -4 -2 -3 -4 -2 -1 -3 -3 -1 -4 -4 -3 -6
Q -1  1  0 -1 -4  6  2 -2  1 -3 -3  1  0 -4 -2  0 -1 -3 -2 -3  0  3 -1 -6
E -1 -1 -1  1 -5  2  6 -3  0 -4 -4  1 -2 -4 -2  0 -1 -4 -3 -3  1  4 -1 -6
G  0 -3 -1 -2 -4 -2 -3  6 -3 -5 -4 -2 -4 -4 -3 -1 -2 -4 -4 -4 -1 -3 -2 -6
H -2  0  0 -2 -4  1  0 -3  8 -4 -3 -1 -2 -2 -3 -1 -2 -3  2 -4 -1  0 -2 -6
I -2 -3 -4 -4 -2 -3 -4 -5 -4  5  1 -3  1 -1 -4 -3 -1 -3 -2  3 -4 -4 -2 -6
L -2 -3 -4 -5 -2 -3 -4 -4 -3  1  4 -3  2  0 -3 -3 -2 -2 -2  1 -4 -3 -2 -6
K -1  2  0 -1 -4  1  1 -2 -1 -3 -3  5 -2 -4 -1 -1 -1 -4 -3 -3 -1  1 -1 -6
M -1 -2 -3 -4 -2  0 -2 -4 -2  1  2 -2  6  0 -3 -2 -1 -2 -2  1 -3 -2 -1 -6
F -3 -4 -4 -4 -3 -4 -4 -4 -2 -1  0 -4  0  6 -4 -3 -2  0  3 -1 -4 -4 -2 -6
P -1 -2 -3 -2 -4 -2 -2 -3 -3 -4 -3 -1 -3 -4  8 -1 -2 -5 -4 -3 -2 -2 -2 -6
S  1 -1  0 -1 -2  0  0 -1 -1 -3 -3 -1 -2 -3 -1  5  1 -4 -2 -2  0  0 -1 -6
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -2 -1 -1 -2 -2  1  5 -4 -2  0 -1 -1 -1 -6
W -3 -4 -4 -6 -3 -3 -4 -4 -3 -3 -2 -4 -2  0 -5 -4 -4 11  2 -3 -5 -4 -3 -6
Y -2 -3 -3 -4 -3 -2 -3 -4  2 -2 -2 -3 -2  3 -4 -2 -2  2  7 -2 -3 -3 -2 -6
V  0 -3 -4 -4 -1 -3 -3 -4 -4  3  1 -3  1 -1 -3 -2  0 -3 -2  4 -4 -3 -1 -6
B -2 -2  4  4 -4  0  1 -1 -1 -4 -4 -1 -3 -4 -2  0 -1 -5 -3 -4  4  0 -2 -6
Z -1  0  0  1 -4  3  4 -3  0 -4 -3  1 -2 -4 -2  0 -1 -4 -3 -3  0  4 -1 -6
X -1 -1 -1 -2 -3 -1 -1 -2 -2 -2 -2 -1 -1 -2 -2 -1 -1 -3 -2 -1 -2 -1 -1 -6
* -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6 -6  1
"""

_BLOSUM45_TEXT = """
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  5 -2 -1 -2 -1 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -2 -2  0 -1 -1  0 -5
R -2  7  0 -1 -3  1  0 -2  0 -3 -2  3 -1 -2 -2 -1 -1 -2 -1 -2 -1  0 -1 -5
N -1  0  6  2 -2  0  0  0  1 -2 -3  0 -2 -2 -2  1  0 -4 -2 -3  4  0 -1 -5
D -2 -1  2  7 -3  0  2 -1  0 -4 -3  0 -3 -4 -1  0 -1 -4 -2 -3  5  1 -1 -5
C -1 -3 -2 -3 12 -3 -3 -3 -3 -3 -2 -3 -2 -2 -4 -1 -1 -5 -3 -1 -2 -3 -2 -5
Q -1  1  0  0 -3  6  2 -2  1 -2 -2  1  0 -4 -1  0 -1 -2 -1 -3  0  4 -1 -5
E -1  0  0  2 -3  2  6 -2  0 -3 -2  1 -2 -3  0  0 -1 -3 -2 -3  1  4 -1 -5
G  0 -2  0 -1 -3 -2 -2  7 -2 -4 -3 -2 -2 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -5
H -2  0  1  0 -3  1  0 -2 10 -3 -2 -1  0 -2 -2 -1 -2 -3  2 -3  0  0 -1 -5
I -1 -3 -2 -4 -3 -2 -3 -4 -3  5  2 -3  2  0 -2 -2 -1 -2  0  3 -3 -3 -1 -5
L -1 -2 -3 -3 -2 -2 -2 -3 -2  2  5 -3  2  1 -3 -3 -1 -2  0  1 -3 -2 -1 -5
K -1  3  0  0 -3  1  1 -2 -1 -3 -3  5 -1 -3 -1 -1 -1 -2 -1 -2  0  1 -1 -5
M -1 -1 -2 -3 -2  0 -2 -2  0  2  2 -1  6  0 -2 -2 -1 -2  0  1 -2 -1 -1 -5
F -2 -2 -2 -4 -2 -4 -3 -3 -2  0  1 -3  0  8 -3 -2 -1  1  3  0 -3 -3 -1 -5
P -1 -2 -2 -1 -4 -1  0 -2 -2 -2 -3 -1 -2 -3  9 -1 -1 -3 -3 -3 -2 -1 -1 -5
S  1 -1  1  0 -1  0  0  0 -1 -2 -3 -1 -2 -2 -1  4  2 -4 -2 -1  0  0  0 -5
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -1 -1  2  5 -3 -1  0  0 -1  0 -5
W -2 -2 -4 -4 -5 -2 -3 -2 -3 -2 -2 -2 -2  1 -3 -4 -3 15  3 -3 -4 -2 -2 -5
Y -2 -1 -2 -2 -3 -1 -2 -3  2  0  0 -1  0  3 -3 -2 -1  3  8 -1 -2 -2 -1 -5
V  0 -2 -3 -3 -1 -3 -3 -3 -3  3  1 -2  1  0 -3 -1  0 -3 -1  5 -3 -3 -1 -5
B -1 -1  4  5 -2  0  1 -1  0 -3 -3  0 -2 -3 -2  0  0 -4 -2 -3  4  2 -1 -5
Z -1  0  0  1 -3  4  4 -2  0 -3 -2  1 -1 -3 -1  0 -1 -2 -2 -3  2  4 -1 -5
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1  0  0 -2 -1 -1 -1 -1 -1 -5
* -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5  1
"""


class SubstitutionMatrix:
    """A dense amino-acid substitution matrix addressed by code pairs.

    Attributes
    ----------
    name:
        Matrix identifier (``"BLOSUM62"`` …).
    scores:
        ``(25, 25)`` ``int8`` array; ``scores[a, b]`` is the cost of
        substituting code ``a`` by code ``b``.  Any pair involving the gap
        sentinel scores :data:`GAP_SCORE`.
    """

    def __init__(self, name: str, scores: np.ndarray) -> None:
        scores = np.asarray(scores, dtype=np.int8)
        n = len(AA_LETTERS)
        if scores.shape != (n, n):
            raise ValueError(f"expected ({n}, {n}) matrix, got {scores.shape}")
        self.name = name
        self.scores = scores
        self.scores.flags.writeable = False

    @classmethod
    def from_ncbi_text(cls, name: str, text: str) -> SubstitutionMatrix:
        """Parse an NCBI-format matrix block (header row + labelled rows).

        The parsed letters are mapped onto the package code assignment; the
        gap sentinel row/column is filled with :data:`GAP_SCORE`.
        """
        lines = [ln for ln in text.strip().splitlines() if ln.strip() and not ln.startswith("#")]
        header = lines[0].split()
        n = len(AA_LETTERS)
        scores = np.full((n, n), GAP_SCORE, dtype=np.int16)
        from .alphabet import AMINO

        col_codes = [int(AMINO.encode(ch)[0]) for ch in header]
        for ln in lines[1:]:
            parts = ln.split()
            row_code = int(AMINO.encode(parts[0])[0])
            values = [int(v) for v in parts[1:]]
            if len(values) != len(header):
                raise ValueError(f"malformed matrix row for {parts[0]!r} in {name}")
            for c, v in zip(col_codes, values, strict=True):
                scores[row_code, c] = v
        scores[GAP_CODE, :] = GAP_SCORE
        scores[:, GAP_CODE] = GAP_SCORE
        return cls(name, scores.astype(np.int8))

    def score(self, a: int, b: int) -> int:
        """Cost of substituting code *a* by code *b*."""
        return int(self.scores[a, b])

    def pair_scores(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised elementwise lookup: ``scores[a[i], b[i]]``.

        *a* and *b* broadcast against each other; the result is ``int8``
        shaped like the broadcast.
        """
        return self.scores[np.asarray(a), np.asarray(b)]

    def max_score(self) -> int:
        """Largest entry (used for X-drop bound computations)."""
        return int(self.scores.max())

    def min_score(self) -> int:
        """Smallest entry excluding the gap sentinel."""
        sub = np.delete(np.delete(self.scores, GAP_CODE, 0), GAP_CODE, 1)
        return int(sub.min())

    def rom_contents(self) -> np.ndarray:
        """Flat ROM image for the hardware PE substitution ROM.

        The PE addresses the ROM with ``a * 32 + b`` (two 5-bit codes), so
        the image is 1024 entries with unused slots at :data:`GAP_SCORE`.
        """
        rom = np.full(32 * 32, GAP_SCORE, dtype=np.int8)
        n = len(AA_LETTERS)
        idx = np.arange(n)
        rom[(idx[:, None] * 32 + idx[None, :]).ravel()] = self.scores.ravel()
        return rom

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SubstitutionMatrix({self.name})"


BLOSUM62 = SubstitutionMatrix.from_ncbi_text("BLOSUM62", _BLOSUM62_TEXT)
BLOSUM80 = SubstitutionMatrix.from_ncbi_text("BLOSUM80", _BLOSUM80_TEXT)
BLOSUM45 = SubstitutionMatrix.from_ncbi_text("BLOSUM45", _BLOSUM45_TEXT)

_REGISTRY = {m.name: m for m in (BLOSUM62, BLOSUM80, BLOSUM45)}


def get_matrix(name: str) -> SubstitutionMatrix:
    """Look up a bundled matrix by name (case-insensitive)."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
