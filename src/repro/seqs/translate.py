"""Genetic code and six-frame translation.

The paper's workload translates a genome "into its 6 possible protein
frames" before comparing it against a protein bank (tblastn semantics).
Translation is fully vectorised: a codon is three nucleotide codes combined
into a base-4 index into a 64-entry table; frames are produced by slicing
the same buffer at offsets 0/1/2 on the forward and reverse-complement
strands.

Codons containing an ``N`` translate to ``X`` (unknown amino acid); stop
codons translate to ``*`` (:data:`repro.seqs.alphabet.STOP_CODE`), matching
BLAST's tblastn behaviour of keeping stops in-frame so alignments cannot
silently cross them (every matrix scores ``*`` at -4 or worse).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alphabet import AMINO, DNA, STOP_CODE, UNKNOWN_AA_CODE
from .sequence import Sequence, SequenceBank

__all__ = [
    "STANDARD_CODE",
    "GeneticCode",
    "reverse_complement",
    "translate",
    "translate_six_frames",
    "translated_bank",
    "codon_of",
]

# NCBI translation table 1 (the standard code), indexed by TCAG order here
# re-expressed against our ACGT code order below.
_CODON_TABLE_TEXT = {
    # Phe/Leu
    "TTT": "F", "TTC": "F", "TTA": "L", "TTG": "L",
    "CTT": "L", "CTC": "L", "CTA": "L", "CTG": "L",
    "ATT": "I", "ATC": "I", "ATA": "I", "ATG": "M",
    "GTT": "V", "GTC": "V", "GTA": "V", "GTG": "V",
    "TCT": "S", "TCC": "S", "TCA": "S", "TCG": "S",
    "CCT": "P", "CCC": "P", "CCA": "P", "CCG": "P",
    "ACT": "T", "ACC": "T", "ACA": "T", "ACG": "T",
    "GCT": "A", "GCC": "A", "GCA": "A", "GCG": "A",
    "TAT": "Y", "TAC": "Y", "TAA": "*", "TAG": "*",
    "CAT": "H", "CAC": "H", "CAA": "Q", "CAG": "Q",
    "AAT": "N", "AAC": "N", "AAA": "K", "AAG": "K",
    "GAT": "D", "GAC": "D", "GAA": "E", "GAG": "E",
    "TGT": "C", "TGC": "C", "TGA": "*", "TGG": "W",
    "CGT": "R", "CGC": "R", "CGA": "R", "CGG": "R",
    "AGT": "S", "AGC": "S", "AGA": "R", "AGG": "R",
    "GGT": "G", "GGC": "G", "GGA": "G", "GGG": "G",
}


@dataclass(frozen=True)
class GeneticCode:
    """A codon → amino-acid mapping with vectorised translation.

    Attributes
    ----------
    name:
        Table identifier.
    table:
        ``(64,)`` uint8 array mapping base-4 codon indices (built from ACGT
        nucleotide codes: ``16*c0 + 4*c1 + c2``) to amino-acid codes.
    """

    name: str
    table: np.ndarray

    @classmethod
    def from_mapping(cls, name: str, mapping: dict[str, str]) -> GeneticCode:
        """Build from a ``{"ATG": "M", ...}`` dictionary (must cover all 64)."""
        if len(mapping) != 64:
            raise ValueError(f"genetic code needs 64 codons, got {len(mapping)}")
        table = np.empty(64, dtype=np.uint8)
        for codon, aa in mapping.items():
            c = DNA.encode(codon)
            idx = int(c[0]) * 16 + int(c[1]) * 4 + int(c[2])
            table[idx] = int(AMINO.encode(aa)[0])
        table.flags.writeable = False
        return cls(name, table)

    def translate_codes(self, nt: np.ndarray) -> np.ndarray:
        """Translate nucleotide codes (frame 0) into amino-acid codes.

        Trailing bases that do not complete a codon are dropped.  Codons
        containing ``N`` yield ``X``.
        """
        nt = np.asarray(nt, dtype=np.uint8)
        n_codons = nt.shape[0] // 3
        if n_codons == 0:
            return np.empty(0, dtype=np.uint8)
        tri = nt[: n_codons * 3].reshape(n_codons, 3).astype(np.int32)
        has_n = (tri >= 4).any(axis=1)
        idx = tri[:, 0] * 16 + tri[:, 1] * 4 + tri[:, 2]
        # Clamp indices built from N codes into range; they are overwritten
        # with X below so the clamped value never leaks out.
        aa = self.table[np.minimum(idx, 63)]
        aa = aa.copy()
        aa[has_n] = UNKNOWN_AA_CODE
        return aa


#: The standard genetic code (NCBI translation table 1).
STANDARD_CODE = GeneticCode.from_mapping("standard", _CODON_TABLE_TEXT)

# Complement lookup under code order A,C,G,T,N -> T,G,C,A,N.
_COMPLEMENT = np.array([3, 2, 1, 0, 4], dtype=np.uint8)


def reverse_complement(nt: np.ndarray) -> np.ndarray:
    """Reverse-complement a nucleotide code vector."""
    nt = np.asarray(nt, dtype=np.uint8)
    return _COMPLEMENT[nt[::-1]]


def translate(nt: np.ndarray, frame: int, code: GeneticCode = STANDARD_CODE) -> np.ndarray:
    """Translate one of the six reading frames.

    Frames follow the BLAST convention: ``+1, +2, +3`` start at offsets
    0/1/2 of the forward strand, ``-1, -2, -3`` at offsets 0/1/2 of the
    reverse complement.
    """
    if frame not in (1, 2, 3, -1, -2, -3):
        raise ValueError(f"frame must be in ±1..3, got {frame}")
    if frame < 0:
        nt = reverse_complement(nt)
        frame = -frame
    return code.translate_codes(np.asarray(nt, dtype=np.uint8)[frame - 1 :])


def translate_six_frames(
    nt: np.ndarray, code: GeneticCode = STANDARD_CODE
) -> dict[int, np.ndarray]:
    """Translate all six frames; returns ``{frame: aa_codes}``."""
    return {f: translate(nt, f, code) for f in (1, 2, 3, -1, -2, -3)}


def codon_of(frame: int, aa_position: int, genome_length: int) -> int:
    """Genome coordinate (forward strand, 0-based) of the first base of the
    codon producing residue *aa_position* in *frame*.

    This is the coordinate bookkeeping tblastn needs to report genomic hit
    locations; reverse frames count from the 3' end.
    """
    if frame > 0:
        return (frame - 1) + 3 * aa_position
    # Position on the reverse-complement strand, mapped back.
    rc_pos = (-frame - 1) + 3 * aa_position
    return genome_length - 1 - rc_pos


def translated_bank(
    genome: Sequence,
    code: GeneticCode = STANDARD_CODE,
    pad: int = 64,
) -> SequenceBank:
    """Translate a genome into a 6-sequence protein bank.

    Sequence names are ``"<genome>|frame+1"`` … ``"<genome>|frame-3"`` so
    hits can be mapped back to genomic coordinates with :func:`codon_of`.
    """
    if genome.alphabet is not DNA:
        raise ValueError("translated_bank expects a DNA sequence")
    seqs = []
    for frame, aa in translate_six_frames(genome.codes, code).items():
        tag = f"+{frame}" if frame > 0 else str(frame)
        seqs.append(Sequence(f"{genome.name}|frame{tag}", aa, AMINO))
    return SequenceBank(seqs, AMINO, pad=pad)
