"""Streaming FASTA reader/writer.

Real deployments of the paper's system consume NCBI FASTA files (protein
banks, chromosome sequences).  This module provides a small, dependency-free
FASTA layer so the CLI and examples can operate on files as well as on the
synthetic generators.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import TextIO

from .alphabet import AMINO, DNA, Alphabet
from .sequence import Sequence, SequenceBank

__all__ = ["read_fasta", "write_fasta", "load_bank", "save_bank"]


def _records(handle: TextIO) -> Iterator[tuple[str, str, str]]:
    """Yield (name, description, residue-text) triples from a FASTA stream."""
    name: str | None = None
    desc = ""
    chunks: list[str] = []
    for raw in handle:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield name, desc, "".join(chunks)
            header = line[1:].split(None, 1)
            name = header[0] if header else ""
            desc = header[1] if len(header) > 1 else ""
            chunks = []
        else:
            if name is None:
                raise ValueError("FASTA data before first '>' header")
            chunks.append(line)
    if name is not None:
        yield name, desc, "".join(chunks)


def _validate_record(name: str, text: str, alphabet: Alphabet) -> None:
    """Reject truncated or garbage FASTA records, naming the offender.

    Empty records are what a file truncated right after a ``>`` header
    looks like; non-alphabet residues are what binary garbage or a
    wrong-alphabet file looks like.  Both would otherwise be silently
    "repaired" by the encoder's fallback code (``X``/``N``) and surface
    later as mystery alignments.
    """
    label = name if name else "<unnamed>"
    if not text:
        raise ValueError(f"FASTA record {label!r} is empty (no residues)")
    bad = sorted(set(text) - _alphabet_chars(alphabet))
    if bad:
        shown = ", ".join(repr(c) for c in bad[:8])
        if len(bad) > 8:
            shown += ", ..."
        raise ValueError(
            f"FASTA record {label!r} contains {len(bad)} character(s) "
            f"outside the {alphabet.name} alphabet: {shown}"
        )


def _alphabet_chars(alphabet: Alphabet) -> frozenset[str]:
    """Characters (both cases) the alphabet encodes losslessly."""
    return frozenset(alphabet.letters + alphabet.letters.lower())


def read_fasta(
    source: str | Path | TextIO,
    alphabet: Alphabet = AMINO,
    strict: bool = True,
) -> Iterator[Sequence]:
    """Iterate sequences from a FASTA file path, string path or open handle.

    With ``strict`` (the default) empty records and records containing
    characters outside *alphabet* raise :class:`ValueError` naming the
    offending record; ``strict=False`` restores the permissive behaviour
    (unknown characters encode to the alphabet's fallback code).
    """
    if isinstance(source, (str, Path)):
        with open(source, encoding="ascii") as fh:
            yield from read_fasta(fh, alphabet, strict)
        return
    for name, desc, text in _records(source):
        if strict:
            _validate_record(name, text, alphabet)
        yield Sequence.from_text(name, text, alphabet, desc)


def write_fasta(
    sequences: Iterable[Sequence],
    target: str | Path | TextIO,
    width: int = 70,
) -> None:
    """Write sequences in FASTA format, wrapping residue lines at *width*."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as fh:
            write_fasta(sequences, fh, width)
        return
    for seq in sequences:
        header = f">{seq.name}"
        if seq.description:
            header += f" {seq.description}"
        target.write(header + "\n")
        text = seq.text()
        for i in range(0, len(text), width):
            target.write(text[i : i + width] + "\n")


def load_bank(
    source: str | Path | TextIO,
    alphabet: Alphabet = AMINO,
    pad: int = 64,
    strict: bool = True,
) -> SequenceBank:
    """Read a whole FASTA file into a :class:`SequenceBank`."""
    return SequenceBank(read_fasta(source, alphabet, strict), alphabet, pad=pad)


def save_bank(bank: SequenceBank, target: str | Path | TextIO, width: int = 70) -> None:
    """Write a bank back out as FASTA."""
    write_fasta(iter(bank), target, width)


def bank_from_text(
    fasta_text: str, alphabet: Alphabet = AMINO, pad: int = 64, strict: bool = True
) -> SequenceBank:
    """Convenience: parse FASTA from an in-memory string."""
    return load_bank(io.StringIO(fasta_text), alphabet, pad=pad, strict=strict)
