"""SEG-style low-complexity masking.

Real protein searches always mask low-complexity regions (poly-A runs,
coiled-coil stutters…) before seeding: such regions generate enormous
index lists and spurious high-scoring pairs.  NCBI tblastn runs SEG by
default, so the baseline comparison in the paper implicitly includes it.

This module implements a vectorised SEG-like filter: the Shannon entropy
of the residue composition in a sliding window is compared to a trigger
threshold; low-entropy windows are masked.  Masked residues are rewritten
to ``X`` (:data:`repro.seqs.alphabet.UNKNOWN_AA_CODE`), which the seed
models treat as invalid — *soft masking*: seeds cannot start in masked
regions, but extensions may still cross them (X scores mildly negative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alphabet import UNKNOWN_AA_CODE
from .sequence import Sequence, SequenceBank

__all__ = ["SegConfig", "window_entropy", "seg_mask", "mask_bank"]


@dataclass(frozen=True)
class SegConfig:
    """SEG parameters (defaults approximate NCBI's 12/2.2/2.5).

    Attributes
    ----------
    window:
        Sliding-window length in residues.
    trigger_entropy:
        Windows with entropy (bits) below this value start a masked region.
    extend_entropy:
        Masked regions extend while entropy stays below this (≥ trigger).
    """

    window: int = 12
    trigger_entropy: float = 2.2
    extend_entropy: float = 2.5

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.extend_entropy < self.trigger_entropy:
            raise ValueError("extend_entropy must be >= trigger_entropy")


def window_entropy(
    codes: np.ndarray, window: int, canonical_only: bool = False
) -> np.ndarray:
    """Shannon entropy (bits) of each length-*window* sliding window.

    Returns an array of length ``len(codes) - window + 1``.  With
    ``canonical_only=False`` residues with codes ≥ 20 (ambiguity / stop /
    gap) are pooled into one pseudo-class; with ``canonical_only=True``
    they are *excluded* — entropy is computed over the canonical residues
    present, and any window containing a non-canonical residue returns
    ``+inf`` (such windows cannot trigger masking, which makes masking
    exactly idempotent: an already-masked X run never re-triggers).
    Computed from per-residue cumulative counts, O(21·N).
    """
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.shape[0] - window + 1
    if n <= 0:
        return np.empty(0, dtype=np.float64)
    classes = np.minimum(codes, 20).astype(np.int64)
    # counts[c, i] = occurrences of class c in codes[:i].
    onehot_cum = np.zeros((21, codes.shape[0] + 1), dtype=np.int32)
    for c in range(21):
        onehot_cum[c, 1:] = np.cumsum(classes == c)
    win_counts = (onehot_cum[:, window:] - onehot_cum[:, :-window]).astype(np.float64)
    if canonical_only:
        canon = win_counts[:20]
        total = canon.sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            p = np.where(total > 0, canon / np.maximum(total, 1), 0.0)
            terms = np.where(p > 0, -p * np.log2(p), 0.0)
        ent = terms.sum(axis=0)
        ent[total < window] = np.inf
        return ent
    p = win_counts / window
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(p > 0, -p * np.log2(p), 0.0)
    return terms.sum(axis=0)


def seg_mask(
    codes: np.ndarray, config: SegConfig = SegConfig()
) -> tuple[np.ndarray, float]:
    """Mask low-complexity regions of one sequence.

    Returns ``(masked_codes, masked_fraction)``.  A window below the
    trigger entropy masks all its positions; neighbouring windows below
    the extend entropy widen the region (two-threshold hysteresis, as in
    SEG's extension step).
    """
    codes = np.asarray(codes, dtype=np.uint8)
    w = config.window
    if codes.shape[0] < w:
        return codes.copy(), 0.0
    ent = window_entropy(codes, w, canonical_only=True)
    trigger = ent < config.trigger_entropy
    if not trigger.any():
        return codes.copy(), 0.0
    extend = ent < config.extend_entropy
    # Grow trigger runs while the extend predicate holds (both directions).
    masked_windows = trigger.copy()
    # Forward pass.
    run = False
    for i in range(masked_windows.shape[0]):
        if trigger[i]:
            run = True
        elif not extend[i]:
            run = False
        if run and extend[i]:
            masked_windows[i] = True
    # Backward pass.
    run = False
    for i in range(masked_windows.shape[0] - 1, -1, -1):
        if trigger[i]:
            run = True
        elif not extend[i]:
            run = False
        if run and extend[i]:
            masked_windows[i] = True
    # A masked window masks all its residues.
    mask = np.zeros(codes.shape[0], dtype=bool)
    idx = np.flatnonzero(masked_windows)
    for i in idx:
        mask[i : i + w] = True
    out = codes.copy()
    out[mask] = UNKNOWN_AA_CODE
    return out, float(mask.mean())


def mask_bank(
    bank: SequenceBank, config: SegConfig = SegConfig()
) -> tuple[SequenceBank, float]:
    """Apply SEG masking to every sequence of a bank.

    Returns the masked bank and the overall masked-residue fraction.
    """
    masked = []
    total = 0
    masked_count = 0.0
    for seq in bank:
        codes, frac = seg_mask(seq.codes, config)
        masked.append(Sequence(seq.name, codes, bank.alphabet, seq.description))
        total += len(seq)
        masked_count += frac * len(seq)
    out = SequenceBank(masked, bank.alphabet, pad=bank.pad)
    return out, (masked_count / total if total else 0.0)
