"""Sequence and sequence-bank containers.

A :class:`SequenceBank` is the unit the paper's algorithm operates on: a
*large set* of sequences stored as one contiguous ``uint8`` buffer plus an
offset table.  Contiguity matters twice over:

* the indexing step (:mod:`repro.index.kmer`) records **global offsets** into
  the buffer, exactly like the paper's "index list of sequence offsets";
* the ungapped-extension kernel gathers fixed-length windows with a single
  strided ``np.take`` per index entry, which keeps the hot loop inside NumPy.

Sequences are padded with :data:`~repro.seqs.alphabet.GAP_CODE` sentinels on
both flanks of the concatenated buffer so window extraction near sequence
boundaries never reads a neighbouring sequence as signal (the gap sentinel
scores the strongest penalty in every substitution matrix).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from collections.abc import Sequence as PySequence
from dataclasses import dataclass, field

import numpy as np

from .alphabet import AMINO, DNA, GAP_CODE, Alphabet

__all__ = ["Sequence", "SequenceBank", "BankBuilder"]


@dataclass(frozen=True)
class Sequence:
    """A single named sequence over an :class:`~repro.seqs.alphabet.Alphabet`."""

    name: str
    codes: np.ndarray
    alphabet: Alphabet = AMINO
    description: str = ""

    def __post_init__(self) -> None:
        codes = np.ascontiguousarray(self.codes, dtype=np.uint8)
        object.__setattr__(self, "codes", codes)

    @classmethod
    def from_text(
        cls,
        name: str,
        text: str,
        alphabet: Alphabet = AMINO,
        description: str = "",
    ) -> Sequence:
        """Build a sequence by encoding *text* with *alphabet*."""
        return cls(name, alphabet.encode(text), alphabet, description)

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    def text(self) -> str:
        """Decode back to a string (letters of :attr:`alphabet`)."""
        return self.alphabet.decode(self.codes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = self.text()[:24]
        ell = "..." if len(self) > 24 else ""
        return f"Sequence({self.name!r}, {head!r}{ell}, len={len(self)})"


class SequenceBank:
    """An immutable set of sequences in one contiguous padded buffer.

    Layout (``P`` = :attr:`pad` sentinel cells)::

        [P…P] seq0 [P…P] seq1 [P…P] … seqN [P…P]

    ``starts[i]`` is the global offset of the first residue of sequence
    ``i``; ``lengths[i]`` its length.  ``buffer[starts[i] + k]`` is residue
    ``k`` of sequence ``i``.  A single pad block separates adjacent
    sequences and flanks the bank, so any window of width ≤ ``pad`` anchored
    inside a sequence stays inside ``buffer``.
    """

    def __init__(
        self,
        sequences: Iterable[Sequence],
        alphabet: Alphabet = AMINO,
        pad: int = 64,
    ) -> None:
        seqs = list(sequences)
        if pad < 1:
            raise ValueError("pad must be >= 1")
        for s in seqs:
            if s.alphabet is not alphabet:
                raise ValueError(
                    f"sequence {s.name!r} uses alphabet {s.alphabet.name!r}, "
                    f"bank expects {alphabet.name!r}"
                )
        self._alphabet = alphabet
        self._pad = int(pad)
        self._names = [s.name for s in seqs]
        self._descriptions = [s.description for s in seqs]
        lengths = np.array([len(s) for s in seqs], dtype=np.int64)
        starts = np.empty(len(seqs), dtype=np.int64)
        total = pad + int((lengths + pad).sum())
        buf = np.full(total, GAP_CODE, dtype=np.uint8)
        cursor = pad
        for i, s in enumerate(seqs):
            starts[i] = cursor
            buf[cursor : cursor + len(s)] = s.codes
            cursor += len(s) + pad
        self._buffer = buf
        self._starts = starts
        self._lengths = lengths
        # Map a global offset back to its sequence id via searchsorted on
        # sequence end boundaries (ends are strictly increasing).
        self._ends = starts + lengths

    # -- basic accessors -------------------------------------------------
    @property
    def alphabet(self) -> Alphabet:
        """Alphabet shared by every sequence in the bank."""
        return self._alphabet

    @property
    def pad(self) -> int:
        """Number of gap sentinels between adjacent sequences."""
        return self._pad

    @property
    def buffer(self) -> np.ndarray:
        """The contiguous code buffer (read-only view)."""
        v = self._buffer.view()
        v.flags.writeable = False
        return v

    @property
    def starts(self) -> np.ndarray:
        """Global offset of each sequence's first residue."""
        v = self._starts.view()
        v.flags.writeable = False
        return v

    @property
    def lengths(self) -> np.ndarray:
        """Length of each sequence."""
        v = self._lengths.view()
        v.flags.writeable = False
        return v

    @property
    def names(self) -> PySequence[str]:
        """Sequence names, in bank order."""
        return tuple(self._names)

    def __len__(self) -> int:
        return len(self._names)

    @property
    def total_residues(self) -> int:
        """Sum of sequence lengths (excluding padding)."""
        return int(self._lengths.sum())

    def __getitem__(self, i: int) -> Sequence:
        s = self._starts[i]
        return Sequence(
            self._names[i],
            self._buffer[s : s + self._lengths[i]].copy(),
            self._alphabet,
            self._descriptions[i],
        )

    def __iter__(self) -> Iterator[Sequence]:
        for i in range(len(self)):
            yield self[i]

    # -- offset arithmetic -----------------------------------------------
    def seq_id_of(self, offsets: np.ndarray) -> np.ndarray:
        """Map global buffer offsets to sequence ids (vectorised).

        Offsets inside padding map to the nearest *following* sequence for
        pre-pad cells; callers are expected to pass offsets that point at
        real residues (index lists always do).
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        return np.searchsorted(self._ends, offsets, side="right")

    def local_position(self, offsets: np.ndarray) -> np.ndarray:
        """Convert global offsets to within-sequence positions."""
        offsets = np.asarray(offsets, dtype=np.int64)
        return offsets - self._starts[self.seq_id_of(offsets)]

    def global_offset(self, seq_id: int, position: int) -> int:
        """Convert (sequence id, local position) to a global offset."""
        if not 0 <= position < int(self._lengths[seq_id]):
            raise IndexError(
                f"position {position} out of range for sequence {seq_id} "
                f"(length {int(self._lengths[seq_id])})"
            )
        return int(self._starts[seq_id] + position)

    def windows(self, offsets: np.ndarray, left: int, width: int) -> np.ndarray:
        """Gather fixed-width windows around global *offsets*.

        Returns an ``(len(offsets), width)`` uint8 array whose row ``i`` is
        ``buffer[offsets[i]-left : offsets[i]-left+width]``.  Callers must
        keep ``left`` and ``width - left`` within :attr:`pad` plus the seed
        width so rows never leave the buffer; this is validated.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        base = offsets - left
        if offsets.size:
            if int(base.min()) < 0 or int(base.max()) + width > self._buffer.size:
                raise IndexError("window exceeds bank buffer; increase pad")
        return self._buffer[base[:, None] + np.arange(width, dtype=np.int64)[None, :]]


class BankBuilder:
    """Incremental construction helper for :class:`SequenceBank`."""

    def __init__(self, alphabet: Alphabet = AMINO, pad: int = 64) -> None:
        self._alphabet = alphabet
        self._pad = pad
        self._seqs: list[Sequence] = []

    def add(self, name: str, text_or_codes: str | np.ndarray, description: str = "") -> None:
        """Append one sequence (string or pre-encoded codes)."""
        if isinstance(text_or_codes, str):
            seq = Sequence.from_text(name, text_or_codes, self._alphabet, description)
        else:
            seq = Sequence(name, np.asarray(text_or_codes, dtype=np.uint8), self._alphabet, description)
        self._seqs.append(seq)

    def build(self) -> SequenceBank:
        """Freeze into an immutable bank."""
        return SequenceBank(self._seqs, self._alphabet, self._pad)

    def __len__(self) -> int:
        return len(self._seqs)
