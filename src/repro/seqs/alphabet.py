"""Biological alphabets and uint8 codecs.

Every kernel in this package operates on NumPy ``uint8`` arrays rather than
Python strings: a protein sequence is a vector of amino-acid *codes* in
``0..24`` and a DNA sequence a vector of nucleotide codes in ``0..4``.  The
fixed code assignment below is part of the public API — substitution
matrices (:mod:`repro.seqs.matrices`), the genetic code
(:mod:`repro.seqs.translate`) and the hardware substitution ROM
(:mod:`repro.hwsim.memory`) are all laid out against it.

Amino-acid codes follow the NCBIstdaa-like convention used by BLAST:

====  =======  =========================
code  letter   meaning
====  =======  =========================
0-19  ARNDCQEGHILKMFPSTWYV  the 20 canonical amino acids
20    B        Asx (N or D ambiguity)
21    Z        Glx (Q or E ambiguity)
22    X        any / unknown
23    ``*``    stop codon (translation)
24    ``-``    gap / padding sentinel
====  =======  =========================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Alphabet",
    "AMINO",
    "DNA",
    "AA_LETTERS",
    "DNA_LETTERS",
    "STOP_CODE",
    "GAP_CODE",
    "UNKNOWN_AA_CODE",
    "encode_protein",
    "decode_protein",
    "encode_dna",
    "decode_dna",
]

AA_LETTERS = "ARNDCQEGHILKMFPSTWYVBZX*-"
DNA_LETTERS = "ACGTN"

#: Code of the translation stop symbol ``*``.
STOP_CODE = AA_LETTERS.index("*")
#: Code of the gap / padding sentinel ``-``.
GAP_CODE = AA_LETTERS.index("-")
#: Code of the unknown amino acid ``X``.
UNKNOWN_AA_CODE = AA_LETTERS.index("X")
#: Code of the unknown nucleotide ``N``.
UNKNOWN_NT_CODE = DNA_LETTERS.index("N")


def _build_lut(letters: str, fallback: int) -> np.ndarray:
    """Build a 256-entry byte→code lookup table.

    Unknown bytes map to *fallback*; lower-case letters are accepted and map
    to the same code as their upper-case counterpart.
    """
    lut = np.full(256, fallback, dtype=np.uint8)
    for code, ch in enumerate(letters):
        lut[ord(ch)] = code
        lut[ord(ch.lower())] = code
    return lut


@dataclass(frozen=True)
class Alphabet:
    """An immutable alphabet with vectorised encode/decode.

    Parameters
    ----------
    name:
        Human-readable identifier (``"amino"`` / ``"dna"``).
    letters:
        One character per code, in code order.
    fallback_code:
        Code assigned to characters outside *letters* when encoding.
    """

    name: str
    letters: str
    fallback_code: int
    _lut: np.ndarray = field(init=False, repr=False, compare=False)
    _chars: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_lut", _build_lut(self.letters, self.fallback_code))
        object.__setattr__(
            self, "_chars", np.frombuffer(self.letters.encode("ascii"), dtype=np.uint8)
        )

    @property
    def size(self) -> int:
        """Number of codes in the alphabet (including ambiguity symbols)."""
        return len(self.letters)

    def encode(self, text: str | bytes) -> np.ndarray:
        """Encode *text* into a fresh ``uint8`` code vector.

        Characters not in the alphabet become :attr:`fallback_code`.
        """
        if isinstance(text, str):
            text = text.encode("ascii", errors="replace")
        raw = np.frombuffer(text, dtype=np.uint8)
        return self._lut[raw]

    def decode(self, codes: np.ndarray) -> str:
        """Decode a code vector back into a string.

        Raises
        ------
        ValueError
            If any code is out of range for this alphabet.
        """
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.size and int(codes.max(initial=0)) >= self.size:
            raise ValueError(
                f"code {int(codes.max())} out of range for alphabet {self.name!r}"
            )
        return self._chars[codes].tobytes().decode("ascii")

    def is_valid(self, codes: np.ndarray) -> bool:
        """Return True when every code is within the alphabet range."""
        codes = np.asarray(codes)
        return bool(codes.size == 0 or (codes >= 0).all() and (codes < self.size).all())


#: The 25-letter amino-acid alphabet (20 canonical + B/Z/X/*/-).
AMINO = Alphabet("amino", AA_LETTERS, fallback_code=UNKNOWN_AA_CODE)

#: The 5-letter nucleotide alphabet (ACGT + N).
DNA = Alphabet("dna", DNA_LETTERS, fallback_code=UNKNOWN_NT_CODE)


def encode_protein(text: str | bytes) -> np.ndarray:
    """Shorthand for ``AMINO.encode``."""
    return AMINO.encode(text)


def decode_protein(codes: np.ndarray) -> str:
    """Shorthand for ``AMINO.decode``."""
    return AMINO.decode(codes)


def encode_dna(text: str | bytes) -> np.ndarray:
    """Shorthand for ``DNA.encode``."""
    return DNA.encode(text)


def decode_dna(codes: np.ndarray) -> str:
    """Shorthand for ``DNA.decode``."""
    return DNA.decode(codes)
