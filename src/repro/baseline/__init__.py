"""NCBI-tblastn-like baseline: neighbourhood words, two-hit seeding,
ungapped + gapped X-drop extension."""

from .tblastn import BaselineStats, TblastnConfig, TblastnSearch, baseline_seconds
from .twohit import TwoHitScanner, TwoHitStats

__all__ = [
    "TblastnConfig",
    "TblastnSearch",
    "BaselineStats",
    "baseline_seconds",
    "TwoHitScanner",
    "TwoHitStats",
]
