"""A from-scratch NCBI-tblastn-like baseline.

This is the comparator the paper benchmarks against (NCBI tblastn 2.2.18):
a *scanning* BLAST — one query bank indexed by neighbourhood words, the
translated subject streamed against it — with the classic BLAST 2.0
pipeline:

1. **seeding** — W=3 words, neighbourhood threshold T (query positions are
   registered under every word scoring ≥ T against their own word);
2. **two-hit rule** — an ungapped extension is attempted only when two
   non-overlapping hits share a diagonal within A=40 residues;
3. **ungapped X-drop extension** along the diagonal; scores reaching the
   gapped trigger enter
4. **gapped X-drop extension**, deduplicated by HSP containment, filtered
   by Karlin–Altschul E-value.

The implementation is vectorised at the scan level (word-hit blocks) and
keeps full operation counts (:class:`BaselineStats`) so the Itanium2 cost
model can translate a run into modelled 2009 wall-clock for Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.results import Alignment, ComparisonReport
from ..extend.gapped import GapPenalties, xdrop_gapped_extend
from ..extend.stats import evalue as evalue_of, gapped_params
from ..extend.ungapped import ungapped_xdrop
from ..index.kmer import BankIndex, ContiguousSeedModel
from ..index.neighborhood import NeighborhoodTable
from ..seqs.matrices import BLOSUM62, SubstitutionMatrix
from ..seqs.sequence import Sequence, SequenceBank
from ..seqs.translate import translated_bank
from .twohit import TwoHitScanner

__all__ = ["TblastnConfig", "BaselineStats", "TblastnSearch"]

# Neighbourhood tables are expensive to build (8000Ã—8000 word scores);
# cache them per (matrix, W, T).
_NEIGHBORHOOD_CACHE: dict[tuple[str, int, int], NeighborhoodTable] = {}


def _neighborhood(matrix: SubstitutionMatrix, w: int, t: int) -> NeighborhoodTable:
    key = (matrix.name, w, t)
    if key not in _NEIGHBORHOOD_CACHE:
        _NEIGHBORHOOD_CACHE[key] = NeighborhoodTable(matrix, w, t)
    return _NEIGHBORHOOD_CACHE[key]


@dataclass(frozen=True)
class TblastnConfig:
    """BLAST-style parameters (NCBI defaults for protein searches)."""

    word_size: int = 3
    neighbor_threshold: int = 11
    two_hit_window: int = 40
    ungapped_x_drop: int = 16
    gapped_trigger: int = 45
    gapped_x_drop: int = 38
    matrix: SubstitutionMatrix = BLOSUM62
    gaps: GapPenalties = field(default_factory=GapPenalties)
    max_evalue: float = 1e-3
    #: Subject anchors per scan block (memory / vectorisation trade-off).
    block_anchors: int = 200_000


@dataclass
class BaselineStats:
    """Operation counts of one search (cost-model inputs)."""

    residues_scanned: int = 0
    word_hits: int = 0
    triggers: int = 0
    ungapped_extensions: int = 0
    ungapped_cells: int = 0
    gapped_extensions: int = 0
    gapped_cells: int = 0


class TblastnSearch:
    """Scanning translated search with the BLAST heuristics."""

    def __init__(self, config: TblastnConfig | None = None) -> None:
        self.config = config or TblastnConfig()
        #: Statistics of the most recent search.
        self.stats = BaselineStats()

    # ------------------------------------------------------------------
    def search_genome(
        self, queries: SequenceBank, genome: Sequence
    ) -> ComparisonReport:
        """tblastn proper: queries vs the 6-frame translation of *genome*."""
        subject = translated_bank(genome, pad=64)
        return self.search(queries, subject)

    def search(
        self, queries: SequenceBank, subject: SequenceBank
    ) -> ComparisonReport:
        """Search *queries* against an already-translated *subject* bank."""
        cfg = self.config
        self.stats = BaselineStats()
        stats = self.stats
        w = cfg.word_size
        # Query word index (exact words, CSR over global offsets).
        qindex = BankIndex(queries, ContiguousSeedModel(w))
        nbr = _neighborhood(cfg.matrix, w, cfg.neighbor_threshold)
        # Lazily built per-word hit lists: word -> all query offsets whose
        # own word is a neighbour of it.
        qlut: dict[int, np.ndarray] = {}

        def query_hits_for(word: int) -> np.ndarray:
            hit = qlut.get(word)
            if hit is None:
                parts = [qindex.list_for(int(v)) for v in nbr.neighbors_of(word)]
                parts = [p for p in parts if p.size]
                hit = (
                    np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
                )
                qlut[word] = hit
            return hit

        # Subject anchors in position order.
        from ..index.kmer import extract_keys

        s_keys, s_valid = extract_keys(subject.buffer, ContiguousSeedModel(w))
        s_anchors = np.flatnonzero(s_valid).astype(np.int64)
        s_words = s_keys[s_anchors]
        stats.residues_scanned = subject.total_residues
        scanner = TwoHitScanner(word_size=w, window=cfg.two_hit_window)
        trigger_q: list[np.ndarray] = []
        trigger_s: list[np.ndarray] = []
        for lo in range(0, s_anchors.shape[0], cfg.block_anchors):
            hi = min(lo + cfg.block_anchors, s_anchors.shape[0])
            blk_anchors = s_anchors[lo:hi]
            blk_words = s_words[lo:hi]
            order = np.argsort(blk_words, kind="stable")
            sorted_words = blk_words[order]
            sorted_anchors = blk_anchors[order]
            boundaries = np.flatnonzero(np.diff(sorted_words)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [sorted_words.shape[0]]))
            q_parts: list[np.ndarray] = []
            s_parts: list[np.ndarray] = []
            for a, b in zip(starts, ends, strict=True):
                word = int(sorted_words[a])
                qh = query_hits_for(word)
                if qh.size == 0:
                    continue
                sp = sorted_anchors[a:b]
                q_parts.append(np.tile(qh, sp.shape[0]))
                s_parts.append(np.repeat(sp, qh.shape[0]))
            if q_parts:
                tq, ts = scanner.process_block(
                    np.concatenate(q_parts), np.concatenate(s_parts)
                )
                trigger_q.append(tq)
                trigger_s.append(ts)
        stats.word_hits = scanner.stats.word_hits
        stats.triggers = scanner.stats.triggers
        tq = np.concatenate(trigger_q) if trigger_q else np.empty(0, dtype=np.int64)
        ts = np.concatenate(trigger_s) if trigger_s else np.empty(0, dtype=np.int64)
        return self._extend_stage(queries, subject, tq, ts)

    # ------------------------------------------------------------------
    def _extend_stage(
        self,
        queries: SequenceBank,
        subject: SequenceBank,
        tq: np.ndarray,
        ts: np.ndarray,
    ) -> ComparisonReport:
        """Ungapped then gapped extension over two-hit triggers."""
        cfg = self.config
        stats = self.stats
        params = gapped_params(cfg.matrix.name, cfg.gaps.open, cfg.gaps.extend)
        db_len = subject.total_residues
        report = ComparisonReport(n_seed_pairs=stats.word_hits)
        qbuf, sbuf = queries.buffer, subject.buffer
        # Per-diagonal rightmost extension frontier (skip covered triggers).
        frontier: dict[int, int] = {}
        covered: dict[tuple[int, int], list[tuple[int, int, int, int]]] = {}
        order = np.argsort(ts, kind="stable")
        for r in order:
            q, s = int(tq[r]), int(ts[r])
            diag = s - q
            if frontier.get(diag, -1) >= s + cfg.word_size:
                continue
            score, left, right = ungapped_xdrop(
                qbuf,
                q,
                sbuf,
                s,
                cfg.word_size,
                matrix=cfg.matrix,
                x_drop=cfg.ungapped_x_drop,
            )
            stats.ungapped_extensions += 1
            stats.ungapped_cells += cfg.word_size + left + right
            frontier[diag] = s + cfg.word_size + right
            if score < cfg.gapped_trigger:
                continue
            sid0 = int(queries.seq_id_of(np.array([q]))[0])
            sid1 = int(subject.seq_id_of(np.array([s]))[0])
            p0 = q - int(queries.starts[sid0])
            p1 = s - int(subject.starts[sid1])
            ranges = covered.setdefault((sid0, sid1), [])
            if any(a0 <= p0 < b0 and a1 <= p1 < b1 for a0, b0, a1, b1 in ranges):
                continue
            ext = xdrop_gapped_extend(
                qbuf,
                q,
                sbuf,
                s,
                matrix=cfg.matrix,
                gaps=cfg.gaps,
                x_drop=cfg.gapped_x_drop,
            )
            stats.gapped_extensions += 1
            stats.gapped_cells += ext.cells
            l0 = int(queries.starts[sid0])
            l1 = int(subject.starts[sid1])
            ranges.append(
                (ext.start0 - l0, ext.end0 - l0, ext.start1 - l1, ext.end1 - l1)
            )
            e = evalue_of(ext.score, int(queries.lengths[sid0]), db_len, params)
            if e > cfg.max_evalue:
                continue
            report.alignments.append(
                Alignment(
                    seq0_id=sid0,
                    seq0_name=queries.names[sid0],
                    start0=ext.start0 - l0,
                    end0=ext.end0 - l0,
                    seq1_id=sid1,
                    seq1_name=subject.names[sid1],
                    start1=ext.start1 - l1,
                    end1=ext.end1 - l1,
                    raw_score=ext.score,
                    bit_score=params.bit_score(ext.score),
                    evalue=e,
                    ungapped_score=score,
                )
            )
        report.n_ungapped_hits = stats.ungapped_extensions
        report.n_gapped_extensions = stats.gapped_extensions
        report.sort()
        return report


def baseline_seconds(stats: BaselineStats, host, ns_per_word_hit: float = 3.0) -> float:
    """Modelled Itanium2 run time of a baseline search.

    Word-hit processing dominates BLAST's inner loop; extensions reuse the
    shared :class:`~repro.rasc.host.HostCostModel` cell costs.
    """
    return (
        stats.word_hits * ns_per_word_hit * 1e-9
        + host.step2_seconds(stats.ungapped_cells)
        + host.step3_seconds(stats.gapped_cells)
        + stats.residues_scanned * 20e-9
    )
