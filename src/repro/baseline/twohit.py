"""BLAST two-hit seeding machinery.

NCBI BLAST 2.0 triggers an ungapped extension only when *two*
non-overlapping word hits land on the same diagonal within a window of
``A`` residues — the paper contrasts its single weight-4 subset seed
against exactly this heuristic ("In the NCBI BLAST algorithm, the ungapped
extension is started when two seeds of 3 amino acids are detected in a
closed neighbouring").

The scan is vectorised: word hits for a block of subject anchors are
materialised as (query-position, subject-position) arrays, sorted by
(diagonal, subject position), and trigger detection reduces to comparing
consecutive rows.  Cross-block diagonal state (last hit seen per diagonal)
is carried in a dictionary so blocks can be streamed without losing
triggers that straddle a block boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TwoHitScanner", "TwoHitStats"]


@dataclass
class TwoHitStats:
    """Scan accounting (cost-model inputs)."""

    word_hits: int = 0
    triggers: int = 0
    blocks: int = 0


class TwoHitScanner:
    """Streams word-hit blocks and yields two-hit trigger pairs.

    Parameters
    ----------
    word_size:
        BLAST ``W`` (3 for protein searches).
    window:
        BLAST ``A``: maximum diagonal distance between the two hits.
    """

    def __init__(self, word_size: int = 3, window: int = 40) -> None:
        self.word_size = word_size
        self.window = window
        self.stats = TwoHitStats()
        # diagonal -> subject position of the most recent (unconsumed) hit.
        self._last_hit: dict[int, int] = {}

    def reset(self) -> None:
        """Clear cross-block state (new subject sequence)."""
        self._last_hit.clear()

    def process_block(
        self, qpos: np.ndarray, spos: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Find two-hit triggers in one block of word hits.

        *qpos*/*spos* are parallel arrays of query/subject anchor
        positions (any order).  Returns ``(trigger_q, trigger_s)`` — the
        *second* hit of each triggering pair, the position BLAST extends
        from.  Hits are also enrolled in cross-block diagonal state.
        """
        self.stats.blocks += 1
        self.stats.word_hits += int(qpos.shape[0])
        if qpos.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        qpos = np.asarray(qpos, dtype=np.int64)
        spos = np.asarray(spos, dtype=np.int64)
        diag = spos - qpos
        order = np.lexsort((spos, diag))
        diag_s = diag[order]
        spos_s = spos[order]
        qpos_s = qpos[order]
        same_diag = np.empty(diag_s.shape[0], dtype=bool)
        same_diag[0] = False
        same_diag[1:] = diag_s[1:] == diag_s[:-1]
        delta = np.empty_like(spos_s)
        delta[0] = 0
        delta[1:] = spos_s[1:] - spos_s[:-1]
        in_block = same_diag & (delta >= self.word_size) & (delta <= self.window)
        # Cross-block pairs: first hit of each diagonal run vs carried state.
        run_start = ~same_diag
        cross = np.zeros(diag_s.shape[0], dtype=bool)
        starts = np.flatnonzero(run_start)
        for i in starts:
            d = int(diag_s[i])
            prev = self._last_hit.get(d)
            if prev is not None:
                gap = int(spos_s[i]) - prev
                if self.word_size <= gap <= self.window:
                    cross[i] = True
        # Update carried state with each diagonal's last hit.
        run_end = np.empty(diag_s.shape[0], dtype=bool)
        run_end[:-1] = diag_s[1:] != diag_s[:-1]
        run_end[-1] = True
        for i in np.flatnonzero(run_end):
            self._last_hit[int(diag_s[i])] = int(spos_s[i])
        trig = in_block | cross
        self.stats.triggers += int(trig.sum())
        return qpos_s[trig], spos_s[trig]
