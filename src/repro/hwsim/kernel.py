"""Cycle-driven hardware simulation kernel.

A deliberately small synchronous-digital-logic model: a
:class:`Simulator` owns a set of :class:`Component` instances and advances
a global clock.  Each cycle has two phases, mirroring edge-triggered RTL:

1. ``tick(cycle)`` — every component reads the *current* (pre-edge) state
   of its inputs (other components' outputs, FIFO heads) and stages its
   next state;
2. ``commit()`` — every component and every FIFO latches staged state,
   making it visible for the next cycle.

Because all reads happen before all commits, evaluation order within a
cycle cannot change behaviour — the property that makes the PSC-operator
simulation deterministic and lets the analytic model match it exactly.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["Component", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on protocol violations (FIFO overflow, bad state…)."""


class Component:
    """Base class for clocked components.

    Subclasses override :meth:`tick` (combinational read + stage) and
    optionally :meth:`commit` (sequential latch).  Components register any
    FIFOs they own so the simulator can commit them.
    """

    name: str = "component"

    def tick(self, cycle: int) -> None:
        """Stage next state; must only *read* other components' state."""

    def commit(self) -> None:
        """Latch staged state (post clock edge)."""

    def is_idle(self) -> bool:
        """True when the component has no pending work (for run-until-idle)."""
        return True


class Simulator:
    """Owns components and advances the clock.

    Attributes
    ----------
    cycle:
        Number of full cycles executed so far (also the current cycle index
        passed to ``tick``).
    """

    def __init__(self) -> None:
        self._components: list[Component] = []
        self.cycle = 0

    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        self._components.append(component)
        return component

    def step(self, n: int = 1) -> None:
        """Advance *n* cycles."""
        for _ in range(n):
            for c in self._components:
                c.tick(self.cycle)
            for c in self._components:
                c.commit()
            self.cycle += 1

    def run_until(
        self, predicate: Callable[[], bool], max_cycles: int = 10_000_000
    ) -> int:
        """Step until *predicate* is true; returns cycles executed.

        Raises
        ------
        SimulationError
            If *max_cycles* elapse first (hung design).
        """
        start = self.cycle
        while not predicate():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"simulation did not converge within {max_cycles} cycles"
                )
            self.step()
        return self.cycle - start

    def run_until_idle(self, max_cycles: int = 10_000_000) -> int:
        """Step until every component reports idle."""
        return self.run_until(
            lambda: all(c.is_idle() for c in self._components), max_cycles
        )
