"""Memory models: ROM and SRAM.

* :class:`Rom` — combinational read-only memory, used for the PE
  substitution-cost ROM (two 5-bit amino-acid codes → signed cost, Figure
  2 of the paper).  Reads are same-cycle, as in a LUT-based FPGA ROM.
* :class:`Sram` — the RASC-100 board SRAM: word-addressable storage with
  cycle accounting and simple bank bookkeeping, used to stage index lists
  before streaming them through the PSC operator.
"""

from __future__ import annotations

import numpy as np

from .kernel import SimulationError

__all__ = ["Rom", "Sram"]


class Rom:
    """Combinational ROM over a NumPy array image."""

    def __init__(self, image: np.ndarray, name: str = "rom") -> None:
        self._image = np.ascontiguousarray(image)
        self._image.flags.writeable = False
        self.name = name
        #: Number of read accesses (energy/cost accounting).
        self.reads = 0

    @property
    def size(self) -> int:
        """Number of words."""
        return int(self._image.shape[0])

    def read(self, address: int) -> int:
        """Same-cycle read; out-of-range addresses are fatal."""
        if not 0 <= address < self.size:
            raise SimulationError(f"ROM {self.name!r}: address {address} out of range")
        self.reads += 1
        return int(self._image[address])

    @classmethod
    def substitution_rom(cls, matrix) -> Rom:
        """Build the PE substitution ROM from a
        :class:`~repro.seqs.matrices.SubstitutionMatrix` (1024 words, two
        5-bit code address fields: ``a * 32 + b``)."""
        return cls(matrix.rom_contents(), name=f"subst-{matrix.name}")


class Sram:
    """Word-addressable SRAM with capacity and access accounting.

    The RASC-100 carries board SRAM used to stage data between DMA and the
    user design.  The model is functional (dense NumPy backing store) with
    counters for read/write words so the platform model can charge
    bandwidth.
    """

    def __init__(self, n_words: int, dtype=np.int64, name: str = "sram") -> None:
        if n_words < 1:
            raise ValueError("SRAM needs at least one word")
        self._store = np.zeros(n_words, dtype=dtype)
        self.name = name
        self.reads = 0
        self.writes = 0

    @property
    def n_words(self) -> int:
        """Capacity in words."""
        return int(self._store.shape[0])

    def _check(self, address: int, count: int) -> None:
        if address < 0 or address + count > self.n_words:
            raise SimulationError(
                f"SRAM {self.name!r}: access [{address}, {address + count}) "
                f"outside capacity {self.n_words}"
            )

    def write_block(self, address: int, data: np.ndarray) -> None:
        """Write a contiguous block of words."""
        data = np.asarray(data)
        self._check(address, data.shape[0])
        self._store[address : address + data.shape[0]] = data
        self.writes += int(data.shape[0])

    def read_block(self, address: int, count: int) -> np.ndarray:
        """Read a contiguous block of words (copy)."""
        self._check(address, count)
        self.reads += count
        return self._store[address : address + count].copy()

    def write(self, address: int, value: int) -> None:
        """Single-word write."""
        self._check(address, 1)
        self._store[address] = value
        self.writes += 1

    def read(self, address: int) -> int:
        """Single-word read."""
        self._check(address, 1)
        self.reads += 1
        return int(self._store[address])
