"""DMA and interconnect link models.

Two levels of fidelity:

* :class:`LinkModel` — an analytic latency/bandwidth model of a host ↔
  accelerator link (the RASC-100's NUMAlink connection).  Transfer time is
  ``latency + bytes / bandwidth``; utilisation accounting lets the platform
  model detect the result-path saturation the paper hit in its 2-FPGA
  experiment.
* :class:`DmaStream` — a cycle-level source component feeding words from a
  NumPy buffer into a :class:`~repro.hwsim.fifo.SyncFifo` at a configurable
  rate, with backpressure; :class:`DmaDrain` is its sink counterpart.
  These wrap the PSC operator's input/result ports in full-system
  simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..obs import metrics as obsmetrics
from .fifo import FaultHook, SyncFifo
from .kernel import Component, SimulationError

__all__ = ["LinkModel", "LinkAccounting", "DmaStream", "DmaDrain"]


@dataclass
class LinkAccounting:
    """Cumulative traffic over a link."""

    bytes_in: int = 0  # host → accelerator
    bytes_out: int = 0  # accelerator → host
    transfers: int = 0
    busy_seconds: float = 0.0


@dataclass(frozen=True)
class LinkModel:
    """Analytic latency/bandwidth model of an interconnect link.

    Defaults approximate a NUMAlink-4 connection: 3.2 GB/s per direction,
    ~1 µs software+hardware initiation latency per DMA transfer.
    """

    bandwidth_bytes_per_s: float = 3.2e9
    latency_s: float = 1.0e-6
    accounting: LinkAccounting = field(default_factory=LinkAccounting, compare=False)

    def transfer_seconds(self, n_bytes: int) -> float:
        """Time for one DMA transfer of *n_bytes*."""
        if n_bytes < 0:
            raise ValueError("negative transfer size")
        return self.latency_s + n_bytes / self.bandwidth_bytes_per_s

    def record_in(self, n_bytes: int) -> float:
        """Account a host→accelerator transfer; returns its duration."""
        t = self.transfer_seconds(n_bytes)
        self.accounting.bytes_in += n_bytes
        self.accounting.transfers += 1
        self.accounting.busy_seconds += t
        self._publish(n_bytes, "in", t)
        return t

    def record_out(self, n_bytes: int) -> float:
        """Account an accelerator→host transfer; returns its duration."""
        t = self.transfer_seconds(n_bytes)
        self.accounting.bytes_out += n_bytes
        self.accounting.transfers += 1
        self.accounting.busy_seconds += t
        self._publish(n_bytes, "out", t)
        return t

    @staticmethod
    def _publish(n_bytes: int, direction: str, seconds: float) -> None:
        # One call per DMA transfer (not per cycle) — cheap enough to mirror
        # straight into the ambient registry; no-op when observability is off.
        obsmetrics.inc("hwsim_dma_bytes_total", n_bytes, direction=direction)
        obsmetrics.inc("hwsim_dma_transfers_total", 1, direction=direction)
        obsmetrics.inc("hwsim_link_busy_seconds_total", seconds)

    def sustained_result_rate(self, record_bytes: int) -> float:
        """Records/second the link can sustain on the result path."""
        return self.bandwidth_bytes_per_s / record_bytes


class DmaStream(Component):
    """Cycle-level DMA source: buffer → FIFO at ``words_per_cycle``.

    ``fault_hook``, when given, is consulted with the 0-based index of each
    word about to be transferred; returning ``True`` raises an injected
    :class:`~repro.hwsim.kernel.SimulationError` — the deterministic
    stand-in for a failed DMA transfer in chaos tests (wired from
    :meth:`repro.core.faults.FaultPlan.hwsim_hook`).
    """

    def __init__(
        self,
        data: np.ndarray,
        out_fifo: SyncFifo,
        words_per_cycle: int = 1,
        name: str = "dma-in",
        fault_hook: FaultHook | None = None,
    ) -> None:
        self.name = name
        self._data = np.asarray(data)
        self._fifo = out_fifo
        self._rate = int(words_per_cycle)
        self._cursor = 0
        self.fault_hook = fault_hook
        #: Cycles in which the stream wanted to push but the FIFO was full.
        self.stall_cycles = 0

    def tick(self, cycle: int) -> None:
        sent = 0
        stalled = False
        while sent < self._rate and self._cursor < self._data.shape[0]:
            if not self._fifo.can_push():
                stalled = True
                break
            if self.fault_hook is not None and self.fault_hook(self._cursor):
                raise SimulationError(
                    f"DMA {self.name!r} injected transfer error at word "
                    f"{self._cursor} (fault plan)"
                )
            self._fifo.push(self._data[self._cursor])
            self._cursor += 1
            sent += 1
        if stalled:
            self.stall_cycles += 1

    def commit(self) -> None:
        self._fifo.commit()

    def is_idle(self) -> bool:
        return self._cursor >= self._data.shape[0]

    @property
    def words_sent(self) -> int:
        """Words pushed so far."""
        return self._cursor

    def publish_metrics(self, **labels: Any) -> None:
        """Export stream counters (end-of-run, like ``SyncFifo``'s)."""
        registry = obsmetrics.active()
        if registry is None:
            return
        registry.counter("hwsim_dma_words_total", stream=self.name, **labels).inc(
            self.words_sent
        )
        registry.counter(
            "hwsim_dma_stall_cycles_total", stream=self.name, **labels
        ).inc(self.stall_cycles)


class DmaDrain(Component):
    """Cycle-level DMA sink: FIFO → list at ``words_per_cycle``."""

    def __init__(
        self, in_fifo: SyncFifo, words_per_cycle: int = 1, name: str = "dma-out"
    ) -> None:
        self.name = name
        self._fifo = in_fifo
        self._rate = int(words_per_cycle)
        #: Collected words, in arrival order.
        self.received: list = []

    def tick(self, cycle: int) -> None:
        for _ in range(self._rate):
            if not self._fifo.can_pop():
                break
            self.received.append(self._fifo.pop())

    def commit(self) -> None:
        # The producing side owns the FIFO commit in composed designs; when
        # the drain is used standalone it must commit its claimed pops.
        self._fifo.commit()

    def is_idle(self) -> bool:
        return not self._fifo.can_pop()
