"""Signal tracing for cycle simulations.

A :class:`Tracer` is a passive component that samples named probes every
cycle — attribute paths on other components, FIFO occupancies, or
arbitrary callables — building a waveform table that can be rendered as
ASCII art or exported as CSV.  It is the debugging instrument a hardware
simulation kernel owes its users: the Figure-1 bench uses it to show the
PSC phases, and tests use it to assert temporal properties ("the FIFO
never exceeded depth 3", "the load phase lasted exactly K0·L cycles").
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from .kernel import Component

__all__ = ["Probe", "Tracer"]


@dataclass(frozen=True)
class Probe:
    """One traced signal: a name plus a sampling function."""

    name: str
    sample: Callable[[], Any]

    @classmethod
    def attr(cls, name: str, obj: Any, attribute: str) -> Probe:
        """Probe an attribute of *obj* (sampled by ``getattr``)."""
        return cls(name, lambda: getattr(obj, attribute))

    @classmethod
    def fifo_depth(cls, name: str, fifo) -> Probe:
        """Probe a FIFO's committed occupancy."""
        return cls(name, lambda: len(fifo))


class Tracer(Component):
    """Samples its probes at every clock tick.

    Register it *last* in the simulator so samples reflect the cycle's
    staged state consistently (all probes are read in the same phase).
    """

    name = "tracer"

    def __init__(self, probes: list[Probe], max_cycles: int = 1_000_000) -> None:
        self.probes = list(probes)
        self.max_cycles = max_cycles
        #: One list per probe, aligned with :attr:`cycles`.
        self.samples: dict[str, list[Any]] = {p.name: [] for p in self.probes}
        self.cycles: list[int] = []

    def tick(self, cycle: int) -> None:
        if len(self.cycles) >= self.max_cycles:
            return
        self.cycles.append(cycle)
        for p in self.probes:
            self.samples[p.name].append(p.sample())

    # -- analysis helpers ---------------------------------------------------
    def series(self, name: str) -> list[Any]:
        """Samples of one probe."""
        return self.samples[name]

    def maximum(self, name: str) -> Any:
        """Max sample of a numeric probe."""
        return max(self.samples[name])

    def changes(self, name: str) -> list[tuple[int, Any]]:
        """(cycle, new value) at each transition of a probe."""
        out: list[tuple[int, Any]] = []
        prev: Any = object()
        for cyc, v in zip(self.cycles, self.samples[name], strict=True):
            if v != prev:
                out.append((cyc, v))
                prev = v
        return out

    def duration(self, name: str, value: Any) -> int:
        """Number of cycles a probe held *value*."""
        return sum(1 for v in self.samples[name] if v == value)

    # -- rendering ------------------------------------------------------------
    def to_csv(self) -> str:
        """Export all probes as CSV text (cycle column first)."""
        header = "cycle," + ",".join(p.name for p in self.probes)
        rows = [
            f"{cyc}," + ",".join(str(self.samples[p.name][i]) for p in self.probes)
            for i, cyc in enumerate(self.cycles)
        ]
        return "\n".join([header] + rows)

    def waveform(self, name: str, width: int = 72, glyphs: str = " ▁▂▃▄▅▆▇█") -> str:
        """ASCII waveform of a numeric probe, downsampled to *width*."""
        data = self.samples[name]
        if not data:
            return f"{name}: (no samples)"
        lo = min(data)
        hi = max(data)
        span = max(1e-12, float(hi - lo))
        step = max(1, len(data) // width)
        buckets = [
            max(data[i : i + step]) for i in range(0, len(data), step)
        ][:width]
        chars = "".join(
            glyphs[int((b - lo) / span * (len(glyphs) - 1))] for b in buckets
        )
        return f"{name} [{lo}..{hi}]: {chars}"
