"""Cycle-driven hardware simulation kernel: clocked components, synchronous
FIFOs, ROM/SRAM models and DMA/link models."""

from .dma import DmaDrain, DmaStream, LinkAccounting, LinkModel
from .fifo import FifoCascade, SyncFifo
from .kernel import Component, SimulationError, Simulator
from .memory import Rom, Sram
from .trace import Probe, Tracer

__all__ = [
    "Component",
    "Simulator",
    "SimulationError",
    "SyncFifo",
    "FifoCascade",
    "Rom",
    "Sram",
    "Probe",
    "Tracer",
    "LinkModel",
    "LinkAccounting",
    "DmaStream",
    "DmaDrain",
]
