"""Synchronous FIFOs with two-phase (stage/commit) semantics.

A :class:`SyncFifo` models a hardware FIFO between clocked producers and
consumers: pushes staged during ``tick`` become visible only after
``commit``, so a consumer never sees a word in the same cycle it was
produced — one-cycle latency per hop, exactly like the register-stage
FIFOs cascading results out of the paper's PE slots.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable
from typing import Any

from ..obs import metrics as obsmetrics
from .kernel import SimulationError

__all__ = ["SyncFifo", "FifoCascade"]

#: Fault-injection hook: push-event index -> fire?  Wired from a
#: :meth:`repro.core.faults.FaultPlan.hwsim_hook` so the same plans that
#: exercise the step-2 supervisor exercise the simulator's overflow path.
FaultHook = Callable[[int], bool]


class SyncFifo:
    """Bounded FIFO with staged pushes/pops.

    ``can_push`` / ``can_pop`` report the *committed* state; ``push`` and
    ``pop`` stage operations applied at :meth:`commit`.  At most ``depth``
    committed items are held; staging more pushes than free space raises
    :class:`~repro.hwsim.kernel.SimulationError` (hardware would drop data
    — a design bug, so the simulator treats it as fatal).

    ``fault_hook``, when given, is consulted with the 0-based index of each
    push event; returning ``True`` raises an injected overflow — the
    deterministic stand-in for a design-bug overflow in chaos tests.
    """

    def __init__(
        self, depth: int, name: str = "fifo", fault_hook: FaultHook | None = None
    ) -> None:
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.depth = depth
        self.name = name
        self.fault_hook = fault_hook
        self._items: deque[Any] = deque()
        self._staged_pushes: list[Any] = []
        self._staged_pops = 0
        #: Peak committed occupancy observed (for sizing studies).
        self.high_water = 0
        #: Total items ever pushed (throughput accounting).
        self.total_pushed = 0

    def __len__(self) -> int:
        return len(self._items)

    def can_push(self, n: int = 1) -> bool:
        """True when *n* more staged pushes will fit after this cycle."""
        return len(self._items) - self._staged_pops + len(self._staged_pushes) + n <= self.depth

    def push(self, item: Any) -> None:
        """Stage a push for the next commit."""
        if self.fault_hook is not None and self.fault_hook(
            self.total_pushed + len(self._staged_pushes)
        ):
            raise SimulationError(
                f"FIFO {self.name!r} injected overflow (fault plan)"
            )
        if not self.can_push(1):
            raise SimulationError(f"FIFO {self.name!r} overflow (depth {self.depth})")
        self._staged_pushes.append(item)

    def can_pop(self) -> bool:
        """True when a committed item is available and not yet claimed."""
        return len(self._items) > self._staged_pops

    def front(self) -> Any:
        """Peek the oldest committed, unclaimed item."""
        if not self.can_pop():
            raise SimulationError(f"FIFO {self.name!r} underflow")
        return self._items[self._staged_pops]

    def pop(self) -> Any:
        """Claim (stage a pop of) the oldest committed item; returns it."""
        item = self.front()
        self._staged_pops += 1
        return item

    def commit(self) -> None:
        """Apply staged pops then pushes (one clock edge)."""
        for _ in range(self._staged_pops):
            self._items.popleft()
        self._staged_pops = 0
        overflow = len(self._items) + len(self._staged_pushes) - self.depth
        if overflow > 0:
            raise SimulationError(f"FIFO {self.name!r} overflow (depth {self.depth})")
        self._items.extend(self._staged_pushes)
        self.total_pushed += len(self._staged_pushes)
        self._staged_pushes.clear()
        self.high_water = max(self.high_water, len(self._items))

    def drain(self) -> list[Any]:
        """Testing helper: pop-and-commit everything immediately."""
        out = list(self._items)
        self._items.clear()
        return out

    def publish_metrics(self, **labels: Any) -> None:
        """Export this FIFO's counters to the active metrics registry.

        Called by the owning component at the *end* of a run — commit()
        runs once per simulated cycle and must stay registry-free.  The
        high-water mark max-merges, so repeated publications (and shards)
        compose; no-op when observability is off.
        """
        registry = obsmetrics.active()
        if registry is None:
            return
        registry.gauge("hwsim_fifo_high_water", fifo=self.name, **labels).set_max(
            self.high_water
        )
        registry.counter("hwsim_fifo_pushed_total", fifo=self.name, **labels).inc(
            self.total_pushed
        )


class FifoCascade:
    """A chain of FIFOs with one-word-per-cycle forwarding.

    Models the paper's cascaded result FIFOs: each cycle, the head of each
    upstream FIFO moves one hop downstream if space permits.  Call
    :meth:`forward` from the owning component's ``tick`` and
    :meth:`commit` from its ``commit``.
    """

    def __init__(self, n_stages: int, depth: int, name: str = "cascade") -> None:
        if n_stages < 1:
            raise ValueError("cascade needs at least one stage")
        self.stages = [SyncFifo(depth, f"{name}[{i}]") for i in range(n_stages)]

    @property
    def tail(self) -> SyncFifo:
        """The last (output-side) FIFO."""
        return self.stages[-1]

    def stage(self, i: int) -> SyncFifo:
        """FIFO at position *i* (0 = furthest from output)."""
        return self.stages[i]

    def forward(self) -> None:
        """Stage one-hop moves toward the tail (tick phase)."""
        # Walk from tail-1 upstream so a word moves at most one hop/cycle.
        for i in range(len(self.stages) - 2, -1, -1):
            src, dst = self.stages[i], self.stages[i + 1]
            if src.can_pop() and dst.can_push():
                dst.push(src.pop())

    def commit(self) -> None:
        """Latch every stage."""
        for s in self.stages:
            s.commit()

    def occupancy(self) -> int:
        """Total committed items across stages."""
        return sum(len(s) for s in self.stages)

    def is_empty(self) -> bool:
        """True when no stage holds data."""
        return self.occupancy() == 0


def fill(fifo: SyncFifo, items: Iterable[Any]) -> None:
    """Testing helper: push-and-commit a batch."""
    for it in items:
        fifo.push(it)
    fifo.commit()
