"""Command-line front end.

Subcommands mirror the deployment stages of the paper's system::

    repro-psc compare  QUERIES.fasta GENOME.fasta   # software pipeline
    repro-psc accel    QUERIES.fasta GENOME.fasta   # RASC-100 model
    repro-psc baseline QUERIES.fasta GENOME.fasta   # tblastn-like baseline
    repro-psc synth    --proteins 50 --genome-nt 100000 out_prefix
    repro-psc simulate --pes 64 --entries 200       # PSC cycle simulation
    repro-psc serve    RESIDENT.fasta --port 8641   # warm-bank service

``compare``/``accel``/``baseline`` print alignments in a BLAST-tabular-like
format; ``synth`` writes a reproducible synthetic workload to FASTA files;
``simulate`` runs the cycle-level operator on a random workload and prints
the schedule breakdown.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from contextlib import contextmanager
from typing import Any

import numpy as np

from .core.config import PipelineConfig
from .core.errors import (
    EXIT_OK,
    CliError,
    ConfigError,
    InputError,
    RuntimeFault,
)
from .core.pipeline import SeedComparisonPipeline
from .core.results import ComparisonReport

__all__ = ["main", "serve_main", "build_parser"]


def positive_int(text: str) -> int:
    """Argparse type for options that must be strictly positive integers."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def nonnegative_int(text: str) -> int:
    """Argparse type for options that must be integers >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def positive_float(text: str) -> float:
    """Argparse type for options that must be strictly positive floats."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _add_obs_args(sp: argparse.ArgumentParser) -> None:
    """Observability flags shared by every command that runs a workload."""
    sp.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a JSON run report (spans + metrics + profile)",
    )
    sp.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write metrics in Prometheus text exposition format",
    )
    sp.add_argument(
        "--obs-summary", action="store_true",
        help="print the span tree after the run",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-psc",
        description="Seed-based protein/genome comparison with a simulated "
        "SGI RASC-100 accelerator",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def add_compare_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("queries", help="protein FASTA file")
        sp.add_argument("genome", help="DNA FASTA file (first record used)")
        sp.add_argument("--evalue", type=float, default=1e-3, help="E-value cutoff")
        sp.add_argument(
            "--threshold", type=int, default=45, help="ungapped score threshold"
        )
        sp.add_argument("--flank", type=int, default=12, help="window flank N")
        sp.add_argument(
            "--workers", type=positive_int, default=1,
            help="step-2 shard processes (1 = in-process batched scoring)",
        )
        sp.add_argument(
            "--batch-pairs", type=positive_int, default=1 << 20,
            help="max seed pairs per step-2 kernel batch",
        )
        sp.add_argument(
            "--shard-timeout", type=positive_float, default=None, metavar="SECONDS",
            help="per-shard step-2 dispatch deadline (default: derived from "
            "each shard's pair count)",
        )
        sp.add_argument(
            "--max-retries", type=nonnegative_int, default=2,
            help="re-dispatches per failed/hung step-2 shard before "
            "in-process fallback",
        )
        sp.add_argument(
            "--fault-plan", default=None, metavar="JSON|FILE",
            help="deterministic fault-injection plan (inline JSON or a "
            "path) applied to step-2 workers — chaos testing only",
        )
        sp.add_argument(
            "--step2-backend", default="auto", metavar="NAME",
            help="step-2 scoring-kernel backend (a registry name such as "
            "fused, int16, batched, per_key, scalar — or 'auto' for the "
            "best available; all are bit-identical)",
        )
        sp.add_argument(
            "--min-pairs-per-shard", type=nonnegative_int, default=1 << 18,
            help="below this many step-2 pairs per shard, a multi-worker "
            "run scores in-process instead of paying pool startup "
            "(0 disables the heuristic)",
        )
        sp.add_argument("--max-hits", type=int, default=25, help="alignments to print")
        sp.add_argument(
            "--render", type=int, default=0, metavar="N",
            help="render the top N alignments BLAST-style",
        )
        _add_obs_args(sp)

    sc = sub.add_parser("compare", help="run the software pipeline")
    add_compare_args(sc)
    sa = sub.add_parser("accel", help="run the RASC-100 accelerated pipeline")
    add_compare_args(sa)
    sa.add_argument("--pes", type=int, default=192, help="PE array size")
    sa.add_argument("--dual", action="store_true", help="use both FPGAs")
    sb = sub.add_parser("baseline", help="run the tblastn-like baseline")
    add_compare_args(sb)

    sg = sub.add_parser("synth", help="generate a synthetic workload")
    sg.add_argument("prefix", help="output file prefix")
    sg.add_argument("--proteins", type=int, default=100)
    sg.add_argument("--genome-nt", type=int, default=200_000)
    sg.add_argument("--families", type=int, default=5)
    sg.add_argument("--seed", type=int, default=0)

    si = sub.add_parser("index", help="build or inspect a persisted bank index")
    si.add_argument("action", choices=["build", "info"])
    si.add_argument("path", help="index file (.npz)")
    si.add_argument("--fasta", help="protein FASTA to index (build)")
    si.add_argument(
        "--seed", dest="seed_pattern", default="#11#",
        help="seed pattern (subset symbols) or 'contiguous:W'",
    )

    ss = sub.add_parser("simulate", help="cycle-simulate the PSC operator")
    ss.add_argument("--pes", type=int, default=16)
    ss.add_argument("--slot-size", type=int, default=8)
    ss.add_argument("--entries", type=int, default=100)
    ss.add_argument("--seed", type=int, default=0)
    _add_obs_args(ss)

    sv = sub.add_parser(
        "serve", help="run the warm-bank search service (see also repro-serve)"
    )
    sv.add_argument("bank", help="resident protein FASTA held warm in memory")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=nonnegative_int, default=8641)
    sv.add_argument(
        "--workers", type=positive_int, default=2,
        help="warm step-2 worker processes (1 = in-process only)",
    )
    sv.add_argument(
        "--queue-depth", type=positive_int, default=8,
        help="admission queue depth; beyond it requests shed with 429",
    )
    sv.add_argument(
        "--default-deadline-ms", type=positive_float, default=None,
        help="deadline applied to requests that do not carry their own",
    )
    sv.add_argument(
        "--breaker-threshold", type=positive_int, default=3,
        help="consecutive pool failures that open the circuit breaker",
    )
    sv.add_argument(
        "--breaker-reset-seconds", type=positive_float, default=5.0,
        help="open-state dwell before a half-open probe",
    )
    sv.add_argument(
        "--fault-plan", default=None, metavar="JSON|FILE",
        help="deterministic fault plan (worker + service kinds) — chaos only",
    )
    sv.add_argument(
        "--threshold", type=int, default=45, help="ungapped score threshold"
    )
    sv.add_argument("--flank", type=int, default=12, help="window flank N")
    sv.add_argument("--evalue", type=float, default=1e-3, help="E-value cutoff")
    sv.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="spool per-request trace JSON (and the drain flight dump) here",
    )
    sv.add_argument(
        "--flight-records", type=positive_int, default=256,
        help="flight-recorder ring capacity (/debug/requests)",
    )
    sv.add_argument(
        "--trace-records", type=positive_int, default=64,
        help="retained span-tree documents (/debug/trace/<id>)",
    )
    sv.add_argument(
        "--no-request-tracing", action="store_true",
        help="disable per-request span trees (flight records stay on)",
    )
    sv.add_argument(
        "--slo-latency-ms", type=positive_float, default=1000.0,
        help="latency SLO objective for burn-rate accounting",
    )
    sv.add_argument(
        "--profile", action="store_true",
        help="install the sampling profiler (enables /debug/profile)",
    )
    sv.add_argument(
        "--profile-out", default=None, metavar="FILE",
        help="profile continuously and write the collapsed-stack report "
        "on shutdown (implies --profile)",
    )
    return p


class _ObsSession:
    """Live tracing/metrics state for one CLI command.

    Commands attach their profile/health/detsan artefacts before the
    session closes so the run report can merge them.
    """

    def __init__(self, tracer: Any, registry: Any) -> None:
        self.tracer = tracer
        self.registry = registry
        self.profile: Any = None
        self.health: Any = None
        self.detsan: Any = None


def _obs_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "trace_out", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "obs_summary", False)
    )


@contextmanager
def _obs_session(args: argparse.Namespace, command: str):
    """Activate ambient tracing/metrics for one command, when requested.

    Off by default: without one of the obs flags no tracer or registry is
    installed and the instrumentation throughout the pipeline stays on its
    no-op paths.  Yields the session (or ``None`` when off); on exit the
    requested artefacts are written.
    """
    if not _obs_requested(args):
        yield None
        return
    from .obs import metrics as obsmetrics
    from .obs import trace
    from .obs.export import build_run_report, render_span_tree
    from .obs.metrics import prometheus_text

    session = _ObsSession(
        trace.Tracer(meta={"command": command}), obsmetrics.MetricsRegistry()
    )
    with trace.activate(session.tracer), obsmetrics.activate(session.registry):
        yield session
    if args.trace_out:
        report = build_run_report(
            tracer=session.tracer,
            registry=session.registry,
            profile=session.profile,
            health=session.health,
            detsan=session.detsan,
        )
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"# wrote run report: {args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(session.registry))
        print(f"# wrote metrics: {args.metrics_out}")
    if args.obs_summary:
        print(render_span_tree(session.tracer))


def _print_report(report: ComparisonReport, max_hits: int) -> None:
    print(
        f"# seed pairs={report.n_seed_pairs}  ungapped hits="
        f"{report.n_ungapped_hits}  gapped extensions="
        f"{report.n_gapped_extensions}  alignments={len(report)}"
    )
    print("# query\tsubject\tqstart\tqend\tsstart\tsend\traw\tbits\tevalue")
    for a in report.best(max_hits):
        print(
            f"{a.seq0_name}\t{a.seq1_name}\t{a.start0}\t{a.end0}\t"
            f"{a.start1}\t{a.end1}\t{a.raw_score}\t{a.bit_score:.1f}\t"
            f"{a.evalue:.2e}"
        )


def _parse_fault_plan(text: str):
    """Parse a ``--fault-plan`` argument; malformed plans are config errors."""
    from .core.faults import FaultPlan

    try:
        return FaultPlan.parse(text)
    except (ValueError, KeyError, TypeError, OSError) as exc:
        raise ConfigError(f"bad --fault-plan: {exc}") from exc


def _load_fasta_bank(path: str, alphabet=None):
    """Load a FASTA bank; missing/unreadable/empty files are input errors."""
    from .seqs.fasta import load_bank

    try:
        bank = load_bank(path) if alphabet is None else load_bank(path, alphabet)
    except (OSError, ValueError) as exc:
        raise InputError(f"cannot load {path}: {exc}") from exc
    if len(bank) == 0:
        raise InputError(f"no sequences in {path}")
    return bank


def _load_compare_inputs(args):
    from .seqs.alphabet import DNA
    from .seqs.fasta import read_fasta

    queries = _load_fasta_bank(args.queries)
    try:
        genome = next(iter(read_fasta(args.genome, DNA)))
    except (OSError, ValueError, StopIteration) as exc:
        raise InputError(f"cannot load {args.genome}: {exc}") from exc
    plan_arg = getattr(args, "fault_plan", None)
    config = PipelineConfig(
        flank=args.flank,
        ungapped_threshold=args.threshold,
        max_evalue=args.evalue,
        workers=getattr(args, "workers", 1),
        pair_chunk=getattr(args, "batch_pairs", 1 << 20),
        shard_timeout=getattr(args, "shard_timeout", None),
        max_retries=getattr(args, "max_retries", 2),
        fault_plan=_parse_fault_plan(plan_arg) if plan_arg else None,
        step2_backend=getattr(args, "step2_backend", "auto"),
        min_pairs_per_shard=getattr(args, "min_pairs_per_shard", 1 << 18),
    )
    return queries, genome, config


def _cmd_compare(args) -> int:
    queries, genome, config = _load_compare_inputs(args)
    pipe = SeedComparisonPipeline(config)
    with _obs_session(args, "compare") as obs:
        report = pipe.compare_with_genome(queries, genome)
        if obs is not None:
            obs.profile = pipe.profile
            obs.health = pipe.profile.run_health
            obs.detsan = pipe.last_detsan
    _print_report(report, args.max_hits)
    f1, f2, f3 = pipe.profile.wall_fractions()
    print(f"# wall profile: step1={f1:.1%} step2={f2:.1%} step3={f3:.1%}")
    if config.workers > 1:
        from .core.render import render_run_health

        shards = pipe.profile.step2_shards
        imb = pipe.profile.step2_shard_imbalance()
        print(
            f"# step2 shards: {len(shards)} workers, imbalance={imb:.2f}"
        )
        for s in shards:
            print(
                f"#   shard {s.shard}: entries={s.entries} pairs={s.pairs} "
                f"hits={s.hits} batches={s.batches} wall={s.wall_seconds:.3f}s "
                f"attempts={s.attempts} via={s.via} backend={s.backend}"
            )
        print(f"# {render_run_health(pipe.profile.run_health)}")
    if args.render:
        from .core.render import render_alignment
        from .seqs.translate import translated_bank

        frames = translated_bank(genome, pad=max(64, config.flank + 8))
        for a in report.best(args.render):
            print()
            print(render_alignment(queries, frames, a, config.matrix, config.gaps))
    return 0


def _cmd_index(args) -> int:
    from .index.kmer import BankIndex, ContiguousSeedModel
    from .index.persist import load_index, save_index
    from .index.subset_seed import SubsetSeedModel

    if args.action == "build":
        if not args.fasta:
            raise ConfigError("index build requires --fasta")
        try:
            if args.seed_pattern.startswith("contiguous:"):
                model = ContiguousSeedModel(int(args.seed_pattern.split(":")[1]))
            else:
                model = SubsetSeedModel.from_pattern(args.seed_pattern)
        except (ValueError, IndexError, KeyError) as exc:
            raise ConfigError(
                f"bad --seed pattern {args.seed_pattern!r}: {exc}"
            ) from exc
        bank = _load_fasta_bank(args.fasta)
        index = BankIndex(bank, model)
        save_index(index, args.path)
        print(
            f"indexed {len(bank)} sequences ({bank.total_residues:,} aa): "
            f"{index.n_anchors:,} anchors, "
            f"{len(index.unique_keys):,} distinct keys -> {args.path}"
        )
        return 0
    try:
        index = load_index(args.path)
    except (OSError, ValueError, KeyError) as exc:
        raise InputError(f"cannot load index {args.path}: {exc}") from exc
    lengths = index.list_lengths()
    print(f"sequences   : {len(index.bank)}")
    print(f"residues    : {index.bank.total_residues:,}")
    print(f"seed model  : span={index.model.span} key_space={index.model.key_space:,}")
    print(f"anchors     : {index.n_anchors:,}")
    print(f"keys used   : {len(index.unique_keys):,}")
    if lengths.size:
        print(f"list length : mean={lengths.mean():.2f} max={int(lengths.max())}")
    print(f"memory      : {index.memory_bytes():,} bytes")
    from .index.stats import index_stats

    st = index_stats(index)
    print(f"p99 length  : {st.p99_length:.0f}")
    print(f"load factor : {st.load_factor:.1%}")
    print(f"gini        : {st.gini:.3f}")
    return 0


def _cmd_accel(args) -> int:
    from .psc.schedule import PscArrayConfig
    from .rasc.accelerated import AcceleratedPipeline

    queries, genome, config = _load_compare_inputs(args)
    psc = PscArrayConfig(
        n_pes=args.pes,
        window=config.window,
        threshold=config.ungapped_threshold,
        matrix=config.matrix,
    )
    pipe = AcceleratedPipeline(config, psc)
    with _obs_session(args, "accel"):
        result = (
            pipe.run_dual(queries, genome) if args.dual else pipe.run(queries, genome)
        )
    _print_report(result.report, args.max_hits)
    print(
        f"# modelled: step1={result.host_seconds.step1:.3f}s "
        f"accel={result.accel_seconds:.4f}s "
        f"step3={result.host_seconds.step3:.3f}s "
        f"total={result.total_seconds:.3f}s"
    )
    return 0


def _cmd_baseline(args) -> int:
    from .baseline.tblastn import TblastnConfig, TblastnSearch

    queries, genome, _config = _load_compare_inputs(args)
    search = TblastnSearch(TblastnConfig(max_evalue=args.evalue))
    with _obs_session(args, "baseline"):
        report = search.search_genome(queries, genome)
    _print_report(report, args.max_hits)
    s = search.stats
    print(
        f"# word hits={s.word_hits} triggers={s.triggers} "
        f"ungapped ext={s.ungapped_extensions} gapped ext={s.gapped_extensions}"
    )
    return 0


def _cmd_synth(args) -> int:
    from .seqs.fasta import write_fasta
    from .seqs.generate import make_family, plant_homologs, random_genome, random_protein_bank
    from .seqs.sequence import Sequence

    rng = np.random.default_rng(args.seed)
    bank = random_protein_bank(rng, args.proteins)
    genome = random_genome(rng, args.genome_nt)
    families = [
        make_family(rng, f, int(rng.integers(120, 400)), 2)
        for f in range(args.families)
    ]
    genome, truth = plant_homologs(rng, genome, families)
    extras = [Sequence(f"family{f.family_id:03d}", f.ancestor) for f in families]
    write_fasta(list(bank) + extras, f"{args.prefix}_proteins.fasta")
    write_fasta([genome], f"{args.prefix}_genome.fasta")
    print(f"wrote {args.prefix}_proteins.fasta ({len(bank) + len(extras)} sequences)")
    print(f"wrote {args.prefix}_genome.fasta ({args.genome_nt} nt)")
    for t in truth:
        print(
            f"# planted family={t.family_id} member={t.member_index} "
            f"[{t.genome_start}:{t.genome_end}] strand={t.strand:+d}"
        )
    return 0


def _cmd_simulate(args) -> int:
    from .index.kmer import TwoBankIndex
    from .index.subset_seed import DEFAULT_SUBSET_SEED
    from .psc.operator import PscOperator
    from .psc.schedule import PscArrayConfig
    from .psc.workload import build_jobs
    from .seqs.generate import random_protein_bank

    rng = np.random.default_rng(args.seed)
    b0 = random_protein_bank(rng, max(2, args.entries // 20), mean_length=150)
    b1 = random_protein_bank(rng, max(2, args.entries // 10), mean_length=150)
    index = TwoBankIndex.build(b0, b1, DEFAULT_SUBSET_SEED)
    cfg = PscArrayConfig(n_pes=args.pes, slot_size=args.slot_size, threshold=20)
    op = PscOperator(cfg)
    with _obs_session(args, "simulate"):
        result = op.run(build_jobs(index, flank=12, window=cfg.window))
    b = result.breakdown
    print(f"entries={index.n_shared_keys} pairs={index.total_pairs} hits={len(result)}")
    print(
        f"cycles: load={b.load_cycles} compute={b.compute_cycles} "
        f"overhead={b.overhead_cycles} total={b.total_cycles}"
    )
    print(f"PE utilisation: {b.utilization:.1%}")
    print(f"time @100MHz: {cfg.seconds(b.total_cycles) * 1e3:.3f} ms")
    return 0


def _cmd_serve(args) -> int:
    import json as _json
    import os

    from .obs.slo import SloConfig
    from .serve import (
        BreakerConfig,
        SearchHTTPServer,
        SearchService,
        ServiceConfig,
        serve_forever,
    )

    resident = _load_fasta_bank(args.bank)
    plan = _parse_fault_plan(args.fault_plan) if args.fault_plan else None
    config = PipelineConfig(
        flank=args.flank,
        ungapped_threshold=args.threshold,
        max_evalue=args.evalue,
        workers=args.workers,
        fault_plan=plan,
    )
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
    deadline = args.default_deadline_ms
    service = SearchService(
        config,
        resident,
        ServiceConfig(
            workers=args.workers,
            queue_depth=args.queue_depth,
            default_deadline_seconds=None if deadline is None else deadline / 1e3,
            breaker=BreakerConfig(
                failure_threshold=args.breaker_threshold,
                reset_seconds=args.breaker_reset_seconds,
            ),
            tracing=not args.no_request_tracing,
            flight_records=args.flight_records,
            trace_records=args.trace_records,
            trace_dir=args.trace_dir,
            slo=SloConfig(latency_objective_seconds=args.slo_latency_ms / 1e3),
        ),
        fault_plan=plan,
    )

    profiler = None
    if args.profile or args.profile_out:
        # Must happen on the main thread, before any worker forks and
        # before serve_forever: signal.signal is main-thread-only, and
        # install() registers the at-fork disarm hook.
        from .obs.profile import SamplingProfiler

        profiler = SamplingProfiler()
        profiler.install()
        if args.profile_out:
            profiler.start()

    service.start(warm=True)
    try:
        server = SearchHTTPServer((args.host, args.port), service, profiler=profiler)
    except OSError as exc:
        service.drain(timeout=5.0)
        raise RuntimeFault(
            f"cannot bind {args.host}:{args.port}: {exc}"
        ) from exc
    host, port = server.server_address[:2]
    print(
        f"serving {len(resident)} resident sequences "
        f"({resident.total_residues:,} aa) on http://{host}:{port} "
        f"(workers={args.workers}, queue={args.queue_depth}, "
        f"tracing={'on' if not args.no_request_tracing else 'off'})",
        flush=True,
    )
    serve_forever(server)
    if profiler is not None and args.profile_out:
        profiler.stop()
        with open(args.profile_out, "w", encoding="utf-8") as fh:
            _json.dump(profiler.report(), fh, indent=2)
        print(f"profile written to {args.profile_out}", flush=True)
    return 0


_COMMANDS = {
    "compare": _cmd_compare,
    "index": _cmd_index,
    "accel": _cmd_accel,
    "baseline": _cmd_baseline,
    "synth": _cmd_synth,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Exit codes follow the contract in :mod:`repro.core.errors`: 0 ok,
    2 config error, 3 input error, 4 runtime fault; an uncaught exception
    keeps Python's traceback and exit code 1 (a bug, not an outcome).
    """
    from .core.faults import BankCorruption
    from .core.supervisor import DeadlineExceeded

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except (DeadlineExceeded, BankCorruption) as exc:
        print(f"error: runtime fault: {exc}", file=sys.stderr)
        return RuntimeFault.exit_code
    except BrokenPipeError:  # downstream pager/head closed the pipe
        return EXIT_OK


def serve_main(argv: Sequence[str] | None = None) -> int:
    """``repro-serve`` entry point: ``repro-psc serve`` without the prefix."""
    if argv is None:
        argv = sys.argv[1:]
    return main(["serve", *argv])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
