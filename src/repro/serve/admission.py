"""Bounded admission queue with explicit backpressure.

A long-lived service must shed load it cannot serve instead of queueing
unboundedly and missing every deadline at once.  Admission here is a
fixed-depth FIFO: a full queue rejects the request immediately (the HTTP
layer turns that into 429 + ``Retry-After``) and the shed is counted, so
overload is visible in ``/metrics`` rather than as mystery latency.

Every blocking operation in this module carries an explicit timeout or is
non-blocking (repro-check rule RC107): a stuck dispatcher must surface as
a deadline miss, never as a handler thread wedged forever in ``get()``.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING, Any

from ..obs import metrics as obsmetrics
from ..obs import trace
from ..obs.context import RequestContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..seqs.sequence import SequenceBank

__all__ = ["Ticket", "AdmissionQueue"]


class Ticket:
    """One admitted request travelling handler thread → dispatcher.

    The handler thread parks on :attr:`done` (with a timeout) after
    enqueueing; the dispatcher fills :attr:`result` or :attr:`error` and
    sets the event.  ``deadline_at`` is the request's absolute deadline on
    the :func:`repro.obs.trace.clock` timeline (``None`` = unbounded) —
    the same value later plumbed into
    :attr:`~repro.core.supervisor.SupervisorConfig.deadline`.  ``ctx`` is
    the request's identity (:class:`~repro.obs.context.RequestContext`);
    every span, flight record and manifest detail joins on its ids.
    """

    def __init__(
        self,
        request_index: int,
        queries: SequenceBank,
        deadline_at: float | None = None,
        max_alignments: int | None = None,
        ctx: RequestContext | None = None,
    ) -> None:
        self.request_index = request_index
        self.queries = queries
        self.deadline_at = deadline_at
        self.max_alignments = max_alignments
        self.ctx = ctx if ctx is not None else RequestContext.new(
            request_index=request_index, deadline_at=deadline_at
        )
        self.enqueued_at = trace.clock()
        #: Admission wait, stamped by the queue when the dispatcher takes
        #: the ticket (stays 0.0 for requests shed before admission).
        self.queue_seconds = 0.0
        self.done = threading.Event()
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        #: Machine-readable outcome: ok | deadline | error.
        self.status = "ok"

    def expired(self) -> bool:
        """True when the request's deadline has already passed."""
        return self.deadline_at is not None and trace.clock() >= self.deadline_at

    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` = unbounded)."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - trace.clock())


class AdmissionQueue:
    """Fixed-depth FIFO between HTTP handler threads and the dispatcher.

    Parameters
    ----------
    depth:
        Maximum queued (admitted but not yet dispatched) requests.
    registry:
        Metrics registry receiving ``serve_queue_depth`` (high-water
        gauge), ``serve_shed_total`` and ``serve_queue_wait_seconds``.
    """

    def __init__(self, depth: int, registry: obsmetrics.MetricsRegistry) -> None:
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = depth
        self._registry = registry
        self._queue: queue.Queue[Ticket] = queue.Queue(maxsize=depth)

    def offer(self, ticket: Ticket, force_shed: bool = False) -> bool:
        """Admit *ticket* or shed it; never blocks.

        ``force_shed`` is the :data:`~repro.core.faults.FaultKind.QUEUE_OVERFLOW`
        injection point: the queue reports itself full for this request so
        the shedding path is exercised without needing real overload.
        """
        if not force_shed:
            try:
                self._queue.put(ticket, block=False)
            except queue.Full:
                force_shed = True
        if force_shed:
            self._registry.counter("serve_shed_total").inc()
            trace.add_event(
                "serve.shed",
                request=ticket.request_index,
                request_id=ticket.ctx.request_id,
            )
            return False
        depth = self._queue.qsize()
        self._registry.gauge("serve_queue_depth").set_max(depth)
        self._registry.gauge("serve_queue_depth_current").set(depth)
        return True

    def take(self, timeout: float) -> Ticket | None:
        """Dequeue the next ticket, or ``None`` after *timeout* seconds."""
        try:
            ticket = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        return self._observe_wait(ticket)

    def take_nowait(self) -> Ticket | None:
        """Dequeue the next ticket without blocking (``None`` when empty).

        The dispatcher calls this under its dequeue lock so taking a
        ticket and marking the service busy are one atomic step for
        drain's idle check — a blocking take cannot sit inside that lock.
        """
        try:
            ticket = self._queue.get(block=False)
        except queue.Empty:
            return None
        return self._observe_wait(ticket)

    def _observe_wait(self, ticket: Ticket) -> Ticket:
        ticket.queue_seconds = trace.clock() - ticket.enqueued_at
        self._registry.histogram(
            "serve_queue_wait_seconds", boundaries=obsmetrics.SECONDS_BUCKETS
        ).observe(ticket.queue_seconds)
        self._registry.gauge("serve_queue_depth_current").set(self._queue.qsize())
        return ticket

    def empty(self) -> bool:
        """True when no admitted request is waiting for dispatch."""
        return self._queue.empty()
