"""Stdlib load-generator client for the search service (``repro-serve-bench``).

Drives ``POST /search`` with a configurable number of concurrent client
threads, records per-request latency / status / time-to-first-hit, and
summarises QPS and shed rate.  Used three ways:

* as the ``repro-serve-bench`` console script against a running server;
* by ``benchmarks/bench_serve.py`` to produce ``BENCH_serve.json``
  (warm-service throughput vs the cold one-shot path);
* by the ``serve-chaos`` CI job to drive a server booted under a pinned
  fault plan and assert recovery.

The client honors the same :class:`~repro.core.faults.FaultPlan` chaos
model as everything else: a ``SLOW_CLIENT`` spec addressed at request
``i`` makes *this side* stall mid-request (headers sent, body withheld),
which is how a slow reader is simulated deterministically — the server's
connection timeout, not the admission queue, must absorb it.
"""

from __future__ import annotations

import argparse
import http.client
import json
import queue
import threading
from typing import Any

from ..core.faults import FaultKind, FaultPlan
from ..obs import trace
from ..obs.context import mint_request_id

__all__ = ["search_request", "run_load", "main"]

#: Client-side socket timeout per request (seconds).
DEFAULT_TIMEOUT = 30.0

#: Never-set module event whose ``wait(timeout=...)`` is the sanctioned
#: bounded sleep (interruptible, monotonic — unlike ``time.sleep`` it can
#: never oversleep past interpreter shutdown).  One shared instance: a
#: fresh ``threading.Event()`` per stall allocates a lock + condition per
#: request, and RC303 flags the throwaway-Event shape as a probable
#: forgotten-``set()`` bug.
_SLEEP = threading.Event()


def search_request(
    host: str,
    port: int,
    queries: list[tuple[str, str]],
    deadline_ms: float | None = None,
    max_alignments: int | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    stall_seconds: float = 0.0,
    request_id: str | None = None,
) -> dict[str, Any]:
    """One ``POST /search``; returns the decoded body plus timing fields.

    ``stall_seconds > 0`` sends the headers, then withholds the body for
    that long before completing the request (the ``SLOW_CLIENT`` fault).

    *request_id* (minted when ``None``) is sent as ``X-Request-Id``; the
    record carries both the sent id (``request_id``) and the server's
    echoed header (``request_id_header``), so client-side latencies join
    server-side flight records and traces on one key.
    """
    if request_id is None:
        request_id = mint_request_id()
    body = {"queries": [[n, s] for n, s in queries]}
    if deadline_ms is not None:
        body["deadline_ms"] = deadline_ms
    if max_alignments is not None:
        body["max_alignments"] = max_alignments
    payload = json.dumps(body).encode("utf-8")
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    t0 = trace.clock()
    try:
        conn.putrequest("POST", "/search")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(len(payload)))
        conn.putheader("X-Request-Id", request_id)
        conn.endheaders()
        if stall_seconds > 0:
            # Deterministic slow-client stall: headers are on the wire, the
            # server-side handler is blocked reading a body that is not
            # coming yet.  ``_SLEEP`` (never set) is the bounded sleep.
            _SLEEP.wait(timeout=stall_seconds)
        conn.send(payload)
        response = conn.getresponse()
        raw = response.read()
        wall = trace.clock() - t0
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": "undecodable body"}
        decoded["http_status"] = response.status
        decoded["wall_seconds"] = wall
        decoded["retry_after_header"] = response.headers.get("Retry-After")
        decoded["request_id"] = request_id
        decoded["request_id_header"] = response.headers.get("X-Request-Id")
        return decoded
    except OSError as exc:
        return {
            "http_status": 0,
            "error": repr(exc),
            "wall_seconds": trace.clock() - t0,
            "request_id": request_id,
            "request_id_header": None,
        }
    finally:
        conn.close()


def run_load(
    host: str,
    port: int,
    workloads: list[list[tuple[str, str]]],
    concurrency: int = 2,
    deadline_ms: float | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    fault_plan: FaultPlan | None = None,
) -> dict[str, Any]:
    """Drive one request per workload through *concurrency* client threads.

    Requests are issued in index order from a shared feed; per-request
    records land in ``results`` (index order restored) and the summary
    carries QPS, shed rate and time-to-first-hit (wall of the first
    request that returned at least one alignment).
    """
    feed: queue.Queue[tuple[int, list[tuple[str, str]]]] = queue.Queue()
    for i, workload in enumerate(workloads):
        feed.put((i, workload), block=False)
    records: list[dict[str, Any] | None] = [None] * len(workloads)

    def worker() -> None:
        while True:
            try:
                i, workload = feed.get(block=False)
            except queue.Empty:
                return
            stall = 0.0
            if fault_plan is not None:
                spec = fault_plan.service_fault(i, FaultKind.SLOW_CLIENT)
                if spec is not None:
                    stall = spec.hang_seconds
            record = search_request(
                host,
                port,
                workload,
                deadline_ms=deadline_ms,
                timeout=timeout,
                stall_seconds=stall,
                request_id=mint_request_id(),
            )
            record["request"] = i
            records[i] = record

    threads = [
        threading.Thread(target=worker, name=f"load-{t}", daemon=True)
        for t in range(max(1, concurrency))
    ]
    t0 = trace.clock()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout * (len(workloads) + 1))
    wall = trace.clock() - t0
    results = [r if r is not None else {"http_status": 0} for r in records]
    served = [r for r in results if r.get("http_status") == 200]
    shed = [r for r in results if r.get("http_status") == 429]
    deadline_missed = [r for r in results if r.get("http_status") == 504]
    first_hit = next(
        (
            r["wall_seconds"]
            for r in results
            if r.get("http_status") == 200 and r.get("n_alignments", 0) > 0
        ),
        None,
    )
    # Every response that reached the server must echo the id we sent; a
    # mismatch means the joinability contract broke somewhere en route.
    id_mismatches = sum(
        1
        for r in results
        if r.get("http_status", 0) > 0
        and r.get("request_id_header") != r.get("request_id")
    )
    return {
        "requests": len(results),
        "served": len(served),
        "shed": len(shed),
        "deadline_missed": len(deadline_missed),
        "errors": len(results) - len(served) - len(shed) - len(deadline_missed),
        "wall_seconds": wall,
        "qps": len(served) / wall if wall > 0 else 0.0,
        "shed_rate": len(shed) / len(results) if results else 0.0,
        "id_mismatches": id_mismatches,
        "time_to_first_hit_seconds": first_hit,
        "mean_latency_seconds": (
            sum(r["wall_seconds"] for r in served) / len(served)
            if served
            else None
        ),
        "results": results,
    }


def _chunk_queries(
    queries: list[tuple[str, str]], per_request: int, requests: int
) -> list[list[tuple[str, str]]]:
    """Round-robin the query set into *requests* fixed-size workloads."""
    if not queries:
        raise ValueError("no query sequences")
    workloads = []
    for r in range(requests):
        workloads.append(
            [queries[(r * per_request + k) % len(queries)] for k in range(per_request)]
        )
    return workloads


def main(argv: list[str] | None = None) -> int:
    """``repro-serve-bench``: load-generate against a running server."""
    parser = argparse.ArgumentParser(
        prog="repro-serve-bench",
        description="stdlib load generator for the repro search service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--fasta", required=True, help="FASTA of query proteins to cycle through"
    )
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--per-request", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=2)
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT)
    parser.add_argument(
        "--fault-plan",
        default=None,
        help="FaultPlan JSON/file for client-side faults (SLOW_CLIENT)",
    )
    parser.add_argument("--out", default=None, help="write the summary JSON here")
    args = parser.parse_args(argv)

    from ..seqs.fasta import load_bank

    bank = load_bank(args.fasta)
    queries = [
        (bank.names[i], bank[i].text()) for i in range(len(bank))
    ]
    plan = FaultPlan.parse(args.fault_plan) if args.fault_plan else None
    summary = run_load(
        args.host,
        args.port,
        _chunk_queries(queries, args.per_request, args.requests),
        concurrency=args.concurrency,
        deadline_ms=args.deadline_ms,
        timeout=args.timeout,
        fault_plan=plan,
    )
    text = json.dumps(
        {k: v for k, v in summary.items() if k != "results"}, indent=2
    )
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
    return 0 if summary["errors"] == 0 and summary["id_mismatches"] == 0 else 1


if __name__ == "__main__":  # pragma: no cover - manual tool
    raise SystemExit(main())
