"""The search service: admission queue → circuit breaker → warm pool.

:class:`SearchService` is the transport-independent core the HTTP layer
(and tests) drive.  One dispatcher thread drains the admission queue and
executes requests serially against the single warm pool — serialisation
is what makes the half-open breaker probe race-free and keeps the pool's
shard fan-out the only parallelism knob, exactly like the paper's host
feeding its two FPGAs one query at a time.

Request lifecycle::

    submit() ── draining? 503 ── QUEUE_OVERFLOW fault / queue full? 429
        │
        └─> Ticket ──queue──> dispatcher ── service faults (POOL_DEATH,
              CORRUPT_WARM_BANK + CRC self-heal) ── breaker route:
                ├─ closed/half-open: warm pool (deadline plumbed into
                │    SupervisorConfig; outcome feeds the breaker)
                └─ open: in-process degraded path (bit-identical, slower)

Every completed request's alignments are bit-identical to a cold
one-shot :meth:`~repro.core.pipeline.SeedComparisonPipeline.compare_banks`
run of the same query bank — whichever route, fault or retry served it.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..analysis.locksan import make_lock
from ..core.config import PipelineConfig
from ..core.executor import _publish_health_metrics, live_segment_names
from ..core.faults import FaultKind, FaultPlan
from ..core.pipeline import SeedComparisonPipeline
from ..core.supervisor import DeadlineExceeded
from ..obs import metrics as obsmetrics
from ..obs import trace
from ..obs.context import RequestContext
from ..obs.flight import FlightRecord, FlightRecorder, RequestTraceStore
from ..obs.metrics import prometheus_text
from ..obs.slo import SloConfig, SloTracker
from .admission import AdmissionQueue, Ticket
from .breaker import STATE_VALUES, BreakerConfig, BreakerState, CircuitBreaker
from .pool import WarmPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.profile import PipelineProfile
    from ..core.results import ComparisonReport
    from ..seqs.sequence import SequenceBank

__all__ = ["TRACE_VERSION", "ServiceConfig", "SearchService"]

_log = logging.getLogger(__name__)

#: Version of the per-request trace document (``/debug/trace/<id>`` and
#: ``--trace-dir`` spool files); mirrored by
#: ``schemas/request_trace.schema.json``.
TRACE_VERSION = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level policy knobs (everything above the supervisor).

    Attributes
    ----------
    workers:
        Warm-pool worker process count.
    queue_depth:
        Admission queue capacity; requests beyond it shed with 429.
    retry_after_seconds:
        ``Retry-After`` hint returned with a shed.
    default_deadline_seconds:
        Deadline applied when the request names none (``None`` = no
        default — unbounded requests allowed).
    max_wait_seconds:
        Hard cap a handler thread parks on its ticket, deadline or not;
        the backstop that keeps a wedged dispatcher from pinning handler
        threads forever.
    deadline_grace_seconds:
        Extra park time past a request's deadline (or past the
        ``max_wait_seconds`` cap) so the dispatcher can finish cancelling
        and fill in the 504 before the handler gives up with a 500.
    poll_seconds:
        Dispatcher queue-poll granularity (bounds drain latency).
    tracing:
        Record a span tree per request (the ``/debug/trace/<id>``
        surface).  Off, requests still get ids and flight records but
        event counts in those records stay zero.
    flight_records:
        Flight-recorder ring capacity (last N request records).
    trace_records:
        Per-request trace documents retained for ``/debug/trace/<id>``.
    trace_dir:
        When set, every per-request trace document is also spooled to
        ``<trace_dir>/trace-<index>-<request id>.json`` and the flight
        recorder is dumped there on drain.
    slo:
        Declared service-level objectives (see :class:`SloConfig`).
    """

    workers: int = 2
    queue_depth: int = 8
    retry_after_seconds: float = 1.0
    default_deadline_seconds: float | None = None
    max_wait_seconds: float = 120.0
    deadline_grace_seconds: float = 5.0
    poll_seconds: float = 0.1
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    tracing: bool = True
    flight_records: int = 256
    trace_records: int = 64
    trace_dir: str | None = None
    slo: SloConfig = field(default_factory=SloConfig)


class SearchService:
    """Long-lived search core over one resident bank.

    Parameters
    ----------
    config:
        Pipeline configuration (seed model, thresholds, backend …).
    resident:
        The resident bank every query is compared against.
    service:
        Service policy (:class:`ServiceConfig`).
    fault_plan:
        Deterministic chaos: worker-addressed specs fire inside warm
        workers, request-addressed specs at the service fault sites.
    registry:
        Metrics registry backing ``/metrics``; a private one is created
        when not given.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        resident: SequenceBank | None = None,
        service: ServiceConfig | None = None,
        fault_plan: FaultPlan | None = None,
        registry: obsmetrics.MetricsRegistry | None = None,
    ) -> None:
        if resident is None:
            raise ValueError("a resident bank is required")
        self.config = config or PipelineConfig()
        self.service = service or ServiceConfig()
        self.fault_plan = fault_plan
        self.registry = registry or obsmetrics.MetricsRegistry()
        self.pool = WarmPool(
            self.config,
            resident,
            workers=self.service.workers,
            fault_plan=fault_plan,
            obs_enabled=self.service.tracing,
        )
        self.breaker = CircuitBreaker(self.service.breaker)
        self.queue = AdmissionQueue(self.service.queue_depth, self.registry)
        self.flight = FlightRecorder(self.service.flight_records)
        self.traces = RequestTraceStore(self.service.trace_records)
        self.slo = SloTracker(self.service.slo, self.registry)
        self._counter = itertools.count()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._busy = threading.Event()  # set while a request is dispatched
        self._idle_tick = threading.Event()  # pulsed by the dispatcher
        self._work = threading.Event()  # pulsed by submit() on admission
        # Dequeue-and-mark-busy happens atomically under this lock, and
        # drain() samples its idle condition under the same lock — so a
        # ticket can never be invisible (out of the queue, _busy not yet
        # set) at the moment drain decides the service is idle.
        self._dispatch_lock = make_lock(
            "repro.serve.service.SearchService._dispatch_lock"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        # An Event, not a bool: ``ready`` is read from HTTP handler threads
        # while ``start()`` runs on the owner's thread; a sync primitive
        # makes the handoff explicit (and the lock model exempts it).
        self._started = threading.Event()

    # -- lifecycle ------------------------------------------------------
    def start(self, warm: bool = True) -> None:
        """Spawn the dispatcher (and, by default, the warm pool)."""
        if self._started.is_set():
            return
        self._started.set()
        if warm:
            self.pool.warm_up()
        self._set_breaker_gauge()
        # Pre-register every unlabelled serve family so /metrics exposes
        # the full surface (with zeros) from boot, not only after the
        # first shed/heal/degrade — dashboards and the metrics-schema
        # gate both rely on the complete set being present.
        for name in (
            "serve_shed_total",
            "serve_degraded_requests_total",
            "serve_bank_heals_total",
        ):
            self.registry.counter(name).inc(0)
        self.registry.gauge("serve_queue_depth").set_max(0)
        self.registry.gauge("serve_queue_depth_current").set(0)
        self.registry.gauge("serve_resident_bank_bytes").set(
            self.pool.resident_bytes
        )
        self._set_pool_gauge()
        self.slo.register_gauges()
        self.registry.histogram(
            "serve_queue_wait_seconds", boundaries=obsmetrics.SECONDS_BUCKETS
        )
        self.registry.histogram(
            "serve_request_seconds", boundaries=obsmetrics.SECONDS_BUCKETS
        )
        self._dispatcher.start()

    @property
    def ready(self) -> bool:
        """True while accepting: started, not draining, not stopped."""
        return (
            self._started.is_set()
            and not self._draining.is_set()
            and not self._stopped.is_set()
        )

    @property
    def draining(self) -> bool:
        """True once a drain began (``/readyz`` flips 503)."""
        return self._draining.is_set()

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: stop admitting, finish in-flight, release.

        Returns true when the queue fully drained inside *timeout* (the
        pool and staged segment are released either way — after a drain
        the process holds zero shared-memory segments, which
        :func:`repro.core.executor.live_segment_names` lets callers
        assert).
        """
        self._draining.set()
        deadline = trace.clock() + max(0.0, timeout)
        drained = False
        while trace.clock() < deadline:
            with self._dispatch_lock:
                idle = self.queue.empty() and not self._busy.is_set()
            if idle:
                drained = True
                break
            self._idle_tick.wait(timeout=self.service.poll_seconds)
            self._idle_tick.clear()
        self._stopped.set()
        if self._dispatcher.is_alive():
            self._dispatcher.join(timeout=max(1.0, 2 * self.service.poll_seconds))
        self.pool.close()
        self._set_pool_gauge()
        if self.service.trace_dir is not None:
            # The flight recorder's black-box moment: persist the last N
            # request records before the process goes away.
            try:
                self.flight.dump(
                    os.path.join(self.service.trace_dir, "flight_records.json")
                )
            except OSError as exc:  # pragma: no cover - disk trouble
                _log.warning("flight-recorder dump failed: %r", exc)
        if not drained:
            _log.warning("drain timed out with requests still queued")
        return drained

    # -- request path ---------------------------------------------------
    def submit(
        self,
        queries: SequenceBank,
        deadline_seconds: float | None = None,
        max_alignments: int | None = None,
        request_id: str | None = None,
    ) -> dict[str, Any]:
        """Admit one request and block until its response is ready.

        Returns a response dict with an HTTP-shaped ``code``:
        200 (served), 429 (shed, with ``retry_after``), 503 (draining),
        504 (deadline expired), 500 (runtime fault).  *request_id* is the
        client-supplied identity (already validated at the HTTP edge);
        one is minted when absent.  Every response carries
        ``request_id`` and every terminal outcome — including sheds and
        draining rejections — leaves a flight record under that id.
        """
        if not self.ready:
            ctx = RequestContext.new(request_id)
            self.flight.record(
                FlightRecord(
                    request_id=ctx.request_id,
                    trace_id=ctx.trace_id,
                    request_index=None,
                    status="draining",
                    code=503,
                )
            )
            return {
                "code": 503,
                "status": "draining",
                "error": "not accepting",
                "request_id": ctx.request_id,
            }
        request_index = next(self._counter)
        if deadline_seconds is None:
            deadline_seconds = self.service.default_deadline_seconds
        deadline_at = (
            None if deadline_seconds is None else trace.clock() + deadline_seconds
        )
        ctx = RequestContext.new(
            request_id, request_index=request_index, deadline_at=deadline_at
        )
        ticket = Ticket(
            request_index,
            queries,
            deadline_at,
            max_alignments=max_alignments,
            ctx=ctx,
        )
        forced = None
        if self.fault_plan is not None:
            forced = self.fault_plan.service_fault(
                request_index, FaultKind.QUEUE_OVERFLOW
            )
        if not self.queue.offer(ticket, force_shed=forced is not None):
            self._count_request("shed")
            retry_after = self.service.retry_after_seconds
            self.flight.record(
                FlightRecord(
                    request_id=ctx.request_id,
                    trace_id=ctx.trace_id,
                    request_index=request_index,
                    status="shed",
                    code=429,
                    shed_reason="injected" if forced is not None else "queue-full",
                    retry_after=retry_after,
                )
            )
            # A shed is the admission policy working, not the service
            # failing: it spends no availability budget.
            self.slo.record(True, 0.0, ctx.request_id)
            return {
                "code": 429,
                "status": "shed",
                "request": request_index,
                "request_id": ctx.request_id,
                "retry_after": retry_after,
            }
        self._work.set()
        wait = self.service.max_wait_seconds
        remaining = ticket.remaining()
        if remaining is not None:
            # Park until the deadline (never past the max_wait backstop),
            # plus a grace window for the dispatcher to finish cancelling
            # and fill in the 504 before the handler gives up.
            wait = min(wait, remaining) + self.service.deadline_grace_seconds
        if not ticket.done.wait(timeout=wait):
            self._count_request("error")
            self.flight.record(
                FlightRecord(
                    request_id=ctx.request_id,
                    trace_id=ctx.trace_id,
                    request_index=request_index,
                    status="error",
                    code=500,
                    error="dispatcher unresponsive",
                )
            )
            self.slo.record(False, trace.clock() - ticket.enqueued_at, ctx.request_id)
            return {
                "code": 500,
                "status": "error",
                "request": request_index,
                "request_id": ctx.request_id,
                "error": "dispatcher unresponsive",
            }
        return self._response(ticket)

    def _response(self, ticket: Ticket) -> dict[str, Any]:
        self._count_request(ticket.status)
        if ticket.status == "deadline":
            return {
                "code": 504,
                "status": "deadline",
                "request": ticket.request_index,
                "request_id": ticket.ctx.request_id,
                "error": ticket.error or "deadline expired",
            }
        if ticket.status != "ok" or ticket.result is None:
            return {
                "code": 500,
                "status": "error",
                "request": ticket.request_index,
                "request_id": ticket.ctx.request_id,
                "error": ticket.error or "internal error",
            }
        body = dict(ticket.result)
        body["code"] = 200
        body["status"] = "ok"
        body["request"] = ticket.request_index
        body["request_id"] = ticket.ctx.request_id
        return body

    # -- dispatcher -----------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stopped.is_set():
            with self._dispatch_lock:
                ticket = self.queue.take_nowait()
                if ticket is not None:
                    self._busy.set()
            if ticket is None:
                self._idle_tick.set()
                self._work.wait(timeout=self.service.poll_seconds)
                self._work.clear()
                continue
            try:
                self._handle(ticket)
            finally:
                self._busy.clear()
                self._idle_tick.set()
                ticket.done.set()

    def _handle(self, ticket: Ticket) -> None:
        # One tracer per request: spans recorded anywhere down the path
        # (pipeline stages, supervisor events, adopted worker spans) form
        # this request's tree and nothing else's.  The dispatcher is the
        # only thread that runs requests, so activating the ambient
        # tracer/registry here is race-free; handler threads never trace.
        tracer = (
            trace.Tracer(
                meta={
                    "request_id": ticket.ctx.request_id,
                    "trace_id": ticket.ctx.trace_id,
                }
            )
            if self.service.tracing
            else None
        )
        timer = trace.Timer()
        profile: PipelineProfile | None = None
        with trace.activate(tracer), obsmetrics.activate(self.registry):
            with timer:
                with trace.span(
                    "serve.request",
                    request_id=ticket.ctx.request_id,
                    request=ticket.request_index,
                ):
                    profile = self._process(ticket)
        self.registry.histogram(
            "serve_request_seconds", boundaries=obsmetrics.SECONDS_BUCKETS
        ).observe(timer.seconds)
        self._observe_request(ticket, tracer, timer.seconds, profile)

    def _process(self, ticket: Ticket) -> PipelineProfile | None:
        """Execute one ticket inside its request span; returns the profile."""
        self._apply_service_faults(ticket.request_index)
        if self.pool.heal_if_corrupt():
            self.registry.counter("serve_bank_heals_total").inc()
        if ticket.expired():
            ticket.status = "deadline"
            ticket.error = "deadline expired before dispatch"
            return None
        use_pool = self.breaker.allows_pool()
        probing = self.breaker.state is BreakerState.HALF_OPEN
        if not use_pool:
            self.registry.counter("serve_degraded_requests_total").inc()
        pipeline = self._make_pipeline(ticket, use_pool)
        try:
            report, health_ok = self._run(pipeline, ticket)
        except DeadlineExceeded as exc:
            ticket.status = "deadline"
            ticket.error = str(exc)
            if use_pool:
                # A deadline miss on the pool path counts against the
                # breaker only when the pool actually misbehaved —
                # an aggressive client deadline alone must not trip it.
                self._record_breaker(not self._pool_misbehaved(), probing)
            return pipeline.profile
        except Exception as exc:  # noqa: BLE001 - request must answer
            _log.warning(
                "request %d failed: %r", ticket.request_index, exc
            )
            ticket.status = "error"
            ticket.error = repr(exc)
            if use_pool:
                self._record_breaker(False, probing)
            return pipeline.profile
        if use_pool:
            self._record_breaker(health_ok, probing)
        ticket.result = self._format(ticket, report)
        return pipeline.profile

    def _apply_service_faults(self, request_index: int) -> None:
        plan = self.fault_plan
        if plan is None:
            return
        if plan.service_fault(request_index, FaultKind.POOL_DEATH) is not None:
            _log.warning("injecting POOL_DEATH before request %d", request_index)
            self.pool.kill_workers()
        if (
            plan.service_fault(request_index, FaultKind.CORRUPT_WARM_BANK)
            is not None
        ):
            _log.warning(
                "injecting CORRUPT_WARM_BANK before request %d", request_index
            )
            self.pool.corrupt_staged_bank(request_index)
            if self.pool.heal_if_corrupt():
                self.registry.counter("serve_bank_heals_total").inc()

    def _make_pipeline(
        self, ticket: Ticket, use_pool: bool
    ) -> SeedComparisonPipeline:
        """The per-request pipeline (built separately so its profile
        survives a :class:`DeadlineExceeded` raised mid-run)."""
        return SeedComparisonPipeline(
            self.config,
            step2=lambda index: self.pool.step2(
                index,
                deadline_at=ticket.deadline_at,
                use_pool=use_pool,
                request_id=ticket.ctx.request_id,
            ),
        )

    def _run(
        self, pipeline: SeedComparisonPipeline, ticket: Ticket
    ) -> tuple[ComparisonReport, bool]:
        """Run the pipeline for one ticket; returns (report, pool-healthy)."""
        report = pipeline.compare_against_index(
            ticket.queries, self.pool.resident_index
        )
        health = self.pool.last_health
        _publish_health_metrics(self.registry, health)
        if ticket.expired():
            raise DeadlineExceeded(
                "request deadline expired during gapped extension",
                health,
                (),
            )
        return report, health.healthy

    def _observe_request(
        self,
        ticket: Ticket,
        tracer: trace.Tracer | None,
        total_seconds: float,
        profile: PipelineProfile | None,
    ) -> None:
        """Flight record + SLO accounting + trace document for one ticket."""
        status = ticket.status
        code = {"ok": 200, "deadline": 504}.get(status, 500)
        breakdown = {
            "queue": ticket.queue_seconds,
            "total": total_seconds,
        }
        if profile is not None:
            step1 = profile.step1.wall_seconds
            step2 = profile.step2.wall_seconds
            merge = profile.step3.wall_seconds
            breakdown.update(
                step1=step1,
                step2=step2,
                merge=merge,
                dispatch=max(0.0, total_seconds - step1 - step2 - merge),
            )
        retry_events = fallback_events = 0
        breaker_events: list[str] = []
        if tracer is not None:
            for recorded in tracer.spans:
                for event in recorded.events:
                    name = str(event["name"])
                    if name == "step2.retry":
                        retry_events += 1
                    elif name == "step2.fallback":
                        fallback_events += 1
                    elif name.startswith("breaker.") or name == "serve.bank_heal":
                        breaker_events.append(name)
        degraded: bool | None = None
        alignments: int | None = None
        if ticket.result is not None:
            degraded = bool(ticket.result.get("degraded"))
            alignments = ticket.result.get("n_alignments")
        self.flight.record(
            FlightRecord(
                request_id=ticket.ctx.request_id,
                trace_id=ticket.ctx.trace_id,
                request_index=ticket.request_index,
                status=status,
                code=code,
                breakdown=breakdown,
                retry_events=retry_events,
                fallback_events=fallback_events,
                breaker_events=tuple(breaker_events),
                degraded=degraded,
                alignments=alignments,
                error=ticket.error,
            )
        )
        self.slo.record(status == "ok", total_seconds, ticket.ctx.request_id)
        self._set_pool_gauge()
        if tracer is None:
            return
        doc = {
            "version": TRACE_VERSION,
            "request_id": ticket.ctx.request_id,
            "trace_id": ticket.ctx.trace_id,
            "request_index": ticket.request_index,
            "status": status,
            "code": code,
            "duration_seconds": total_seconds,
            "spans": tracer.export(),
        }
        self.traces.retain(doc)
        if self.service.trace_dir is not None:
            # Request ids pass the edge's charset filter, so embedding one
            # in the spool filename is safe by construction.
            path = os.path.join(
                self.service.trace_dir,
                f"trace-{ticket.request_index:06d}-{ticket.ctx.request_id}.json",
            )
            try:
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            except OSError as exc:  # pragma: no cover - disk trouble
                _log.warning("trace spool failed for %s: %r", path, exc)

    def _pool_misbehaved(self) -> bool:
        """True when the last run's counters show real pool faults.

        Cancellations alone are the *client's* deadline, not the pool's
        fault; crashes/timeouts/corruption/rebuilds are the pool's.
        """
        h = self.pool.last_health
        return bool(
            h.crashes or h.timeouts or h.truncated or h.corrupt or h.pool_rebuilds
        )

    def _record_breaker(self, success: bool, probing: bool) -> None:
        if success:
            self.breaker.record_success()
            if probing:
                self.registry.counter("serve_breaker_probes_total", result="ok").inc()
        else:
            self.breaker.record_failure()
            if probing:
                self.registry.counter(
                    "serve_breaker_probes_total", result="failed"
                ).inc()
        self._set_breaker_gauge()

    def _set_breaker_gauge(self) -> None:
        self.registry.gauge("serve_breaker_state").set(
            STATE_VALUES[self.breaker.state]
        )
        trips = self.breaker.trips
        counter = self.registry.counter("serve_breaker_trips_total")
        if trips > counter.value:
            counter.inc(trips - counter.value)

    def _count_request(self, status: str) -> None:
        self.registry.counter("serve_requests_total", status=status).inc()

    def _set_pool_gauge(self) -> None:
        self.registry.gauge("serve_pool_workers").set(
            float(self.pool.workers if self.pool.pool_alive else 0)
        )

    def _format(
        self, ticket: Ticket, report: ComparisonReport
    ) -> dict[str, Any]:
        """JSON-ready response body for one served request."""
        limit = ticket.max_alignments
        alignments = report.alignments
        if limit is not None:
            alignments = alignments[: max(0, int(limit))]
        health = self.pool.last_health
        return {
            "n_seed_pairs": report.n_seed_pairs,
            "n_ungapped_hits": report.n_ungapped_hits,
            "n_gapped_extensions": report.n_gapped_extensions,
            "n_alignments": len(report.alignments),
            "alignments": [
                {
                    "query": a.seq0_name,
                    "subject": a.seq1_name,
                    "query_range": [a.start0, a.end0],
                    "subject_range": [a.start1, a.end1],
                    "raw_score": a.raw_score,
                    "ungapped_score": a.ungapped_score,
                    "bit_score": a.bit_score,
                    "evalue": a.evalue,
                }
                for a in alignments
            ],
            "degraded": health.degraded or not self.breaker.allows_pool(),
            "run_health": health.as_dict(),
        }

    # -- introspection --------------------------------------------------
    def metrics_text(self) -> str:
        """The ``/metrics`` exposition, with scrape-time gauges refreshed.

        Burn rates and the pool/queue gauges are derived state — refreshed
        here once per scrape instead of on every request.
        """
        self.slo.publish()
        self._set_pool_gauge()
        return prometheus_text(self.registry)

    def debug_requests(self, limit: int | None = None) -> dict[str, Any]:
        """The ``/debug/requests`` document: flight records + SLO state."""
        doc = self.flight.to_dict(limit)
        doc["slo"] = self.slo.snapshot()
        return doc

    def health_snapshot(self) -> dict[str, Any]:
        """``/healthz`` body: liveness plus the load-bearing gauges."""
        return {
            "ok": True,
            "ready": self.ready,
            "draining": self.draining,
            "breaker": self.breaker.state.value,
            "breaker_trips": self.breaker.trips,
            "pool_alive": self.pool.pool_alive,
            "bank_heals": self.pool.bank_heals,
            "live_segments": list(live_segment_names()),
        }
