"""Long-lived search-as-a-service layer over the comparison pipeline.

The paper's deployment model is a host that stays up: banks are staged
onto the RASC-100 blades once and queries stream against them, so the
per-query cost is scoring, not setup.  Every one-shot CLI run of this
reproduction instead pays bank indexing, pool spawn and shared-memory
staging from scratch — the cost that makes 2-worker sharding *lose* to 1
worker on small workloads (see ``BENCH_step2.json``).  This package is
the serving architecture that makes the resident-bank framing concrete:

* :mod:`repro.serve.pool` — the warm bank + warm worker pool: the
  resident bank is indexed once, staged into shared memory once, and a
  persistent supervised pool scores request after request against it;
* :mod:`repro.serve.admission` — a bounded admission queue with explicit
  backpressure (full queue → shed with 429 + ``Retry-After``);
* :mod:`repro.serve.breaker` — a consecutive-failure circuit breaker
  around the pool; while open, requests are served by the bit-identical
  in-process degraded path;
* :mod:`repro.serve.service` — :class:`~repro.serve.service.SearchService`
  wiring queue → breaker → supervisor, with per-request deadlines plumbed
  into :class:`~repro.core.supervisor.SupervisorConfig` and service-level
  fault injection (:data:`repro.core.faults.SERVICE_KINDS`);
* :mod:`repro.serve.server` — the stdlib HTTP front end (``POST
  /search``, ``/healthz``, ``/readyz``, ``/metrics``) with graceful drain
  on SIGTERM;
* :mod:`repro.serve.client` — the stdlib load-generator client behind
  ``repro-serve-bench``;
* :mod:`repro.serve.top` — the ``repro-serve-top`` terminal dashboard
  polling ``/metrics`` + ``/debug/requests`` (QPS, latency percentiles,
  queue depth, breaker state, SLO burn rates).

Everything here is zero-dependency beyond numpy (which the pipeline
already requires): HTTP is :mod:`http.server`, concurrency is
:mod:`threading` + the existing supervised process pool.
"""

from .admission import AdmissionQueue, Ticket
from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .pool import WarmPool
from .service import SearchService, ServiceConfig
from .server import SearchHTTPServer, serve_forever

__all__ = [
    "AdmissionQueue",
    "Ticket",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "WarmPool",
    "SearchService",
    "ServiceConfig",
    "SearchHTTPServer",
    "serve_forever",
]
