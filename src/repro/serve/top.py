"""``repro-serve-top``: a terminal dashboard for a running search service.

Polls ``GET /metrics`` and ``GET /debug/requests`` on an interval and
renders one frame per poll: requests-per-second and latency percentiles
computed from *deltas* between consecutive scrapes (so the numbers track
the live window, not the process lifetime), admission queue depth,
breaker state, warm-pool worker count, resident-bank size, SLO burn
rates, and the most recent flight records.

Everything here is stdlib: :mod:`http.client` for the scrape, a
deliberately minimal Prometheus text-exposition parser (it understands
exactly what :func:`repro.obs.metrics.prometheus_text` emits — ``name``
or ``name{label="v",…} value`` lines and ``# TYPE`` comments), and pure
frame rendering so tests can assert on frames without a terminal or a
server.  Printing happens only in :func:`main`.
"""

from __future__ import annotations

import argparse
import http.client
import json
import threading
from typing import Any

from ..obs import trace

__all__ = [
    "parse_prometheus",
    "histogram_quantile",
    "scrape",
    "render_frame",
    "main",
]

#: Scrape socket timeout (seconds).
DEFAULT_TIMEOUT = 5.0

#: Never-set module event whose ``wait(timeout=...)`` is the sanctioned
#: bounded sleep between frames (interruptible, never oversleeps past
#: interpreter shutdown; RC303 flags throwaway per-wait Events).
_SLEEP = threading.Event()

#: One parsed sample: ``(metric name, sorted label items) -> value``.
Series = dict[tuple[str, tuple[tuple[str, str], ...]], float]


def parse_prometheus(text: str) -> Series:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    Only the subset :func:`repro.obs.metrics.prometheus_text` produces is
    supported; unparseable lines are skipped rather than fatal so a
    half-written scrape degrades to a sparse frame, not a crash.
    """
    out: Series = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value_text = line.rpartition(" ")
        if not series:
            continue
        try:
            value = float(value_text)
        except ValueError:
            continue
        labels: list[tuple[str, str]] = []
        name = series
        if series.endswith("}") and "{" in series:
            name, _, label_text = series.partition("{")
            for item in label_text[:-1].split(","):
                key, eq, raw = item.partition("=")
                if not eq:
                    continue
                labels.append((key, raw.strip('"')))
        out[(name, tuple(sorted(labels)))] = value
    return out


def _sum_matching(sample: Series, name: str, **labels: str) -> float:
    """Sum all series of *name* whose labels include **labels**."""
    want = set(labels.items())
    return sum(
        value
        for (series_name, series_labels), value in sample.items()
        if series_name == name and want <= set(series_labels)
    )


def _buckets(sample: Series, name: str) -> list[tuple[float, float]]:
    """Cumulative ``(le, count)`` pairs of histogram *name*, le-ascending."""
    pairs: list[tuple[float, float]] = []
    for (series_name, series_labels), value in sample.items():
        if series_name != f"{name}_bucket":
            continue
        le = dict(series_labels).get("le")
        if le is None:
            continue
        pairs.append((float("inf") if le == "+Inf" else float(le), value))
    pairs.sort()
    return pairs


def histogram_quantile(
    buckets: list[tuple[float, float]], q: float
) -> float | None:
    """Quantile *q* from cumulative ``(le, count)`` pairs, interpolated.

    Linear interpolation inside the containing bucket (the Prometheus
    convention); the +Inf bucket reports its finite lower edge since the
    upper edge is unbounded.  ``None`` when the histogram is empty.
    """
    if not buckets:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    rank = q * total
    lo_edge, lo_count = 0.0, 0.0
    for le, count in buckets:
        if count >= rank:
            if le == float("inf"):
                return lo_edge
            if count == lo_count:
                return le
            return lo_edge + (le - lo_edge) * (rank - lo_count) / (count - lo_count)
        lo_edge, lo_count = le, count
    return buckets[-1][0]


def _delta_buckets(
    prev: list[tuple[float, float]], cur: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Per-window bucket counts: *cur* minus *prev*, clamped at zero."""
    if not prev:
        return cur
    prev_map = dict(prev)
    return [(le, max(0.0, count - prev_map.get(le, 0.0))) for le, count in cur]


def _http_get(host: str, port: int, path: str, timeout: float) -> str | None:
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        if response.status != 200:
            return None
        return body.decode("utf-8", errors="replace")
    except OSError:
        return None
    finally:
        conn.close()


def scrape(
    host: str, port: int, timeout: float = DEFAULT_TIMEOUT
) -> dict[str, Any] | None:
    """One poll: parsed ``/metrics`` + decoded ``/debug/requests``.

    Returns ``None`` when the metrics endpoint is unreachable (the
    dashboard renders a "server unreachable" frame); a missing debug
    endpoint degrades to an empty record list instead.
    """
    text = _http_get(host, port, "/metrics", timeout)
    if text is None:
        return None
    debug: dict[str, Any] = {}
    raw = _http_get(host, port, "/debug/requests?limit=8", timeout)
    if raw is not None:
        try:
            debug = json.loads(raw)
        except json.JSONDecodeError:
            debug = {}
    return {
        "at": trace.clock(),
        "metrics": parse_prometheus(text),
        "debug": debug,
    }


_BREAKER_STATES = {0.0: "closed", 1.0: "open", 2.0: "half-open"}


def render_frame(
    prev: dict[str, Any] | None, cur: dict[str, Any] | None, host: str, port: int
) -> str:
    """Render one dashboard frame as a multi-line string (pure)."""
    title = f"repro-serve-top — {host}:{port}"
    if cur is None:
        return f"{title}\n  server unreachable\n"
    sample: Series = cur["metrics"]
    prev_sample: Series = prev["metrics"] if prev else {}
    dt = (cur["at"] - prev["at"]) if prev else 0.0

    served = _sum_matching(sample, "serve_requests_total")
    shed = _sum_matching(sample, "serve_shed_total")
    if prev and dt > 0:
        qps = (served - _sum_matching(prev_sample, "serve_requests_total")) / dt
        shed_rate = (shed - _sum_matching(prev_sample, "serve_shed_total")) / dt
        window = f"{dt:.1f}s window"
    else:
        qps, shed_rate, window = 0.0, 0.0, "first sample"

    buckets = _delta_buckets(
        _buckets(prev_sample, "serve_request_seconds"),
        _buckets(sample, "serve_request_seconds"),
    )
    percentiles = {
        q: histogram_quantile(buckets, q) for q in (0.50, 0.95, 0.99)
    }
    lat = "  ".join(
        f"p{int(q * 100)}={'—' if v is None else f'{v * 1e3:.1f}ms'}"
        for q, v in percentiles.items()
    )

    depth = _sum_matching(sample, "serve_queue_depth_current")
    workers = _sum_matching(sample, "serve_pool_workers")
    bank = _sum_matching(sample, "serve_resident_bank_bytes")
    breaker_value = _sum_matching(sample, "serve_breaker_state")
    breaker = _BREAKER_STATES.get(breaker_value, f"state={breaker_value:g}")

    burn_lines = []
    for (name, labels), value in sorted(sample.items()):
        if name == "serve_slo_burn_rate":
            tags = dict(labels)
            burn_lines.append(
                f"{tags.get('slo', '?')}/{tags.get('window', '?')}={value:.2f}"
            )
    burn = "  ".join(burn_lines) if burn_lines else "—"

    lines = [
        title,
        f"  qps {qps:7.2f}   shed/s {shed_rate:6.2f}   ({window})",
        f"  latency {lat}",
        f"  queue {depth:g}   workers {workers:g}   breaker {breaker}   "
        f"bank {bank / (1 << 20):.1f} MiB",
        f"  slo burn {burn}",
    ]
    records = cur["debug"].get("records", [])
    if records:
        lines.append("  recent requests:")
        for record in records[:8]:
            total = (record.get("breakdown") or {}).get("total", 0.0)
            lines.append(
                f"    {record.get('request_id', '?'):>34}  "
                f"{record.get('status', '?'):8} {record.get('code', 0):3d}  "
                f"{total * 1e3:8.1f}ms  retries={record.get('retry_events', 0)}"
            )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    """``repro-serve-top``: poll a server and print dashboard frames."""
    parser = argparse.ArgumentParser(
        prog="repro-serve-top",
        description="terminal dashboard for a running repro search service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--interval", type=float, default=2.0, help="seconds between frames"
    )
    parser.add_argument(
        "--count",
        type=int,
        default=0,
        help="stop after this many frames (0 = until interrupted)",
    )
    parser.add_argument(
        "--once", action="store_true", help="render a single frame and exit"
    )
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT)
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be positive")

    count = 1 if args.once else args.count
    prev: dict[str, Any] | None = None
    frames = 0
    try:
        while True:
            cur = scrape(args.host, args.port, timeout=args.timeout)
            print(render_frame(prev, cur, args.host, args.port), flush=True)
            frames += 1
            if cur is None and (args.once or count):
                return 1
            if count and frames >= count:
                return 0
            prev = cur
            _SLEEP.wait(timeout=args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover - manual tool
    raise SystemExit(main())
