"""Stdlib HTTP front end for :class:`~repro.serve.service.SearchService`.

Endpoints::

    POST /search   {"queries": [["name", "SEQ…"], …],
                    "deadline_ms": 2000, "max_alignments": 50}
    GET  /healthz  liveness + breaker/pool snapshot (always 200 while up)
    GET  /readyz   200 while accepting, 503 once draining
    GET  /metrics  Prometheus text exposition of the service registry

One handler thread per connection (``ThreadingHTTPServer``); actual
search execution is serialised by the service's dispatcher, so handler
threads only parse, enqueue and wait.  Connections carry a socket
timeout, so a slow client (the ``SLOW_CLIENT`` chaos kind) stalls one
handler thread at most — never the dispatcher, never admission.

Graceful drain: SIGTERM (and SIGINT) flips ``/readyz`` to 503, new
``/search`` requests answer 503, in-flight requests finish, the warm pool
and staged shared memory are released, and the process exits with zero
live segments — the ``serve-chaos`` CI job asserts exactly that.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from ..obs.metrics import prometheus_text
from ..seqs.sequence import BankBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service import SearchService

__all__ = ["SearchHTTPServer", "serve_forever"]

_log = logging.getLogger(__name__)

#: Per-connection socket timeout: a client that stops reading or writing
#: is cut loose after this long (RC107's no-unbounded-blocking contract
#: at the socket layer).
CONNECTION_TIMEOUT = 30.0

#: Largest accepted request body (queries are meant to be small; the
#: resident bank is the big side and it lives server-side).
MAX_BODY_BYTES = 8 << 20


class _Handler(BaseHTTPRequestHandler):
    """Request handler; ``self.server`` is the :class:`SearchHTTPServer`."""

    server: SearchHTTPServer  # narrowed for type checkers
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: BaseHTTPRequestHandler honors this as the connection socket timeout.
    timeout = CONNECTION_TIMEOUT

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _log.debug("%s %s", self.address_string(), format % args)

    def _send_json(
        self, code: int, body: dict[str, Any], retry_after: float | None = None
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        self.wfile.write(payload)

    # -- GET ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(200, service.health_snapshot())
        elif self.path == "/readyz":
            if service.ready:
                self._send_json(200, {"ready": True})
            else:
                self._send_json(503, {"ready": False, "draining": service.draining})
        elif self.path == "/metrics":
            text = prometheus_text(service.registry).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(text)))
            self.end_headers()
            self.wfile.write(text)
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    # -- POST -----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/search":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "request body missing or too large"})
            return
        # The socket timeout (``timeout`` above) bounds this read; a slow
        # client times out its own connection, nothing else.
        raw = self.rfile.read(length)
        try:
            request = json.loads(raw)
            queries = request["queries"]
            if not isinstance(queries, list) or not queries:
                raise ValueError("queries must be a non-empty list")
            builder = BankBuilder()
            for i, item in enumerate(queries):
                name, text = item
                builder.add(str(name) or f"query{i}", str(text))
            bank = builder.build()
            deadline_ms = request.get("deadline_ms")
            deadline = None if deadline_ms is None else float(deadline_ms) / 1e3
            max_alignments = request.get("max_alignments")
            if max_alignments is not None:
                # Reject rather than coerce: a malformed limit is the
                # client's error (400), never a dispatcher 500 that would
                # count against the breaker.
                if isinstance(max_alignments, bool) or not isinstance(
                    max_alignments, int
                ):
                    raise ValueError("max_alignments must be an integer")
                if max_alignments < 0:
                    raise ValueError("max_alignments must be >= 0")
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"bad search request: {exc}"})
            return
        result = self.server.service.submit(
            bank, deadline_seconds=deadline, max_alignments=max_alignments
        )
        code = int(result.pop("code", 200))
        retry_after = result.get("retry_after")
        self._send_json(code, result, retry_after=retry_after)


class SearchHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`SearchService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SearchService) -> None:
        super().__init__(address, _Handler)
        self.service = service

    def drain_and_shutdown(self, timeout: float = 30.0) -> None:
        """Stop accepting, finish in-flight work, release resources."""
        self.service.drain(timeout=timeout)
        self.shutdown()


def serve_forever(
    server: SearchHTTPServer,
    install_signals: bool = True,
    poll_seconds: float = 0.5,
) -> None:
    """Run *server* until SIGTERM/SIGINT, then drain gracefully.

    The signal handler only sets a flag and kicks the shutdown thread —
    all real work (drain, pool stop, shm release) happens outside signal
    context.  Deliberately *not* chained through
    :func:`repro.core.executor.install_signal_cleanup`: that hook
    releases segments immediately, which would yank the staged bank out
    from under in-flight requests; here the drain releases them in order,
    and the executor's atexit registration backstops any path where the
    drain never completes.
    """
    stop = threading.Event()

    def _stop_handler(signum: int, frame: Any) -> None:
        _log.info("signal %d received; draining", signum)
        stop.set()
        threading.Thread(
            target=server.drain_and_shutdown, name="serve-drain", daemon=True
        ).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _stop_handler)
        signal.signal(signal.SIGINT, _stop_handler)
    try:
        server.serve_forever(poll_interval=poll_seconds)
    finally:
        server.server_close()
        if not stop.is_set():
            # serve_forever ended without a signal (test harness called
            # shutdown() directly): still drain so nothing leaks.
            server.service.drain(timeout=poll_seconds)
