"""Stdlib HTTP front end for :class:`~repro.serve.service.SearchService`.

Endpoints::

    POST /search   {"queries": [["name", "SEQ…"], …],
                    "deadline_ms": 2000, "max_alignments": 50}
    GET  /healthz  liveness + breaker/pool snapshot (always 200 while up)
    GET  /readyz   200 while accepting, 503 once draining
    GET  /metrics  Prometheus text exposition of the service registry
    GET  /debug/requests[?limit=N]  flight recorder + SLO snapshot
    GET  /debug/trace/<request id>  the request's span-tree document
    GET  /debug/profile[?seconds=S] sampling profile (needs --profile)

Every response — including 400/413/429/500 error paths — carries an
``X-Request-Id`` header: the inbound header's value when well-formed, a
server-minted id otherwise, so client and server views of one request
always join on one key.

One handler thread per connection (``ThreadingHTTPServer``); actual
search execution is serialised by the service's dispatcher, so handler
threads only parse, enqueue and wait.  Connections carry a socket
timeout, so a slow client (the ``SLOW_CLIENT`` chaos kind) stalls one
handler thread at most — never the dispatcher, never admission.

Graceful drain: SIGTERM (and SIGINT) flips ``/readyz`` to 503, new
``/search`` requests answer 503, in-flight requests finish, the warm pool
and staged shared memory are released, and the process exits with zero
live segments — the ``serve-chaos`` CI job asserts exactly that.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs, urlsplit

from ..obs.context import accept_request_id
from ..seqs.sequence import BankBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.profile import SamplingProfiler
    from .service import SearchService

__all__ = ["SearchHTTPServer", "serve_forever"]

_log = logging.getLogger(__name__)

#: Per-connection socket timeout: a client that stops reading or writing
#: is cut loose after this long (RC107's no-unbounded-blocking contract
#: at the socket layer).
CONNECTION_TIMEOUT = 30.0

#: Largest accepted request body (queries are meant to be small; the
#: resident bank is the big side and it lives server-side).
MAX_BODY_BYTES = 8 << 20


class _Handler(BaseHTTPRequestHandler):
    """Request handler; ``self.server`` is the :class:`SearchHTTPServer`."""

    server: SearchHTTPServer  # narrowed for type checkers
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: BaseHTTPRequestHandler honors this as the connection socket timeout.
    timeout = CONNECTION_TIMEOUT

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _log.debug("%s %s", self.address_string(), format % args)

    def _send_json(
        self,
        code: int,
        body: dict[str, Any],
        retry_after: float | None = None,
        request_id: str | None = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        self.wfile.write(payload)

    def _request_id(self) -> str:
        """The request's identity: honoured from the header or minted."""
        return accept_request_id(self.headers.get("X-Request-Id"))

    # -- GET ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        rid = self._request_id()
        parts = urlsplit(self.path)
        path, query = parts.path, parse_qs(parts.query)
        if path == "/healthz":
            self._send_json(200, service.health_snapshot(), request_id=rid)
        elif path == "/readyz":
            if service.ready:
                self._send_json(200, {"ready": True}, request_id=rid)
            else:
                self._send_json(
                    503,
                    {"ready": False, "draining": service.draining},
                    request_id=rid,
                )
        elif path == "/metrics":
            text = service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(text)))
            self.send_header("X-Request-Id", rid)
            self.end_headers()
            self.wfile.write(text)
        elif path == "/debug/requests":
            limit = None
            if "limit" in query:
                try:
                    limit = max(0, int(query["limit"][0]))
                except ValueError:
                    self._send_json(
                        400, {"error": "limit must be an integer"}, request_id=rid
                    )
                    return
            self._send_json(200, service.debug_requests(limit), request_id=rid)
        elif path.startswith("/debug/trace/"):
            wanted = path[len("/debug/trace/") :]
            doc = service.traces.get(wanted)
            if doc is None:
                self._send_json(
                    404,
                    {"error": f"no trace retained for request id {wanted!r}"},
                    request_id=rid,
                )
            else:
                self._send_json(200, doc, request_id=rid)
        elif path == "/debug/profile":
            self._profile(query, rid)
        else:
            self._send_json(
                404, {"error": f"unknown path {self.path}"}, request_id=rid
            )

    def _profile(self, query: dict[str, list[str]], rid: str) -> None:
        """``/debug/profile?seconds=S``: one bounded profiling window."""
        profiler = self.server.profiler
        if profiler is None or not profiler.installed:
            self._send_json(
                503,
                {"error": "profiler not enabled (start the server with --profile)"},
                request_id=rid,
            )
            return
        seconds = 5.0
        if "seconds" in query:
            try:
                seconds = float(query["seconds"][0])
            except ValueError:
                self._send_json(
                    400, {"error": "seconds must be a number"}, request_id=rid
                )
                return
        if not 0.0 < seconds <= 30.0:
            self._send_json(
                400, {"error": "seconds must be in (0, 30]"}, request_id=rid
            )
            return
        report = profiler.run_for(seconds)
        if report is None:
            self._send_json(
                409,
                {
                    "error": "profiler busy (another window or a session "
                    "profile is running)"
                },
                request_id=rid,
            )
            return
        self._send_json(200, report, request_id=rid)

    # -- POST -----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        rid = self._request_id()
        if self.path != "/search":
            self._send_json(
                404, {"error": f"unknown path {self.path}"}, request_id=rid
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"}, request_id=rid)
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                413,
                {"error": "request body missing or too large"},
                request_id=rid,
            )
            return
        # The socket timeout (``timeout`` above) bounds this read; a slow
        # client times out its own connection, nothing else.
        raw = self.rfile.read(length)
        try:
            request = json.loads(raw)
            queries = request["queries"]
            if not isinstance(queries, list) or not queries:
                raise ValueError("queries must be a non-empty list")
            builder = BankBuilder()
            for i, item in enumerate(queries):
                name, text = item
                builder.add(str(name) or f"query{i}", str(text))
            bank = builder.build()
            deadline_ms = request.get("deadline_ms")
            deadline = None if deadline_ms is None else float(deadline_ms) / 1e3
            max_alignments = request.get("max_alignments")
            if max_alignments is not None:
                # Reject rather than coerce: a malformed limit is the
                # client's error (400), never a dispatcher 500 that would
                # count against the breaker.
                if isinstance(max_alignments, bool) or not isinstance(
                    max_alignments, int
                ):
                    raise ValueError("max_alignments must be an integer")
                if max_alignments < 0:
                    raise ValueError("max_alignments must be >= 0")
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_json(
                400, {"error": f"bad search request: {exc}"}, request_id=rid
            )
            return
        result = self.server.service.submit(
            bank,
            deadline_seconds=deadline,
            max_alignments=max_alignments,
            request_id=rid,
        )
        code = int(result.pop("code", 200))
        retry_after = result.get("retry_after")
        self._send_json(
            code,
            result,
            retry_after=retry_after,
            request_id=str(result.get("request_id", rid)),
        )


class SearchHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`SearchService`.

    *profiler* is the optional process-wide
    :class:`~repro.obs.profile.SamplingProfiler` backing
    ``/debug/profile`` (must already be installed; the handler only
    arms/disarms the timer, which is legal off the main thread).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: SearchService,
        profiler: SamplingProfiler | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.profiler = profiler

    def drain_and_shutdown(self, timeout: float = 30.0) -> None:
        """Stop accepting, finish in-flight work, release resources."""
        self.service.drain(timeout=timeout)
        self.shutdown()


def serve_forever(
    server: SearchHTTPServer,
    install_signals: bool = True,
    poll_seconds: float = 0.5,
) -> None:
    """Run *server* until SIGTERM/SIGINT, then drain gracefully.

    The signal handler only sets a flag and kicks the shutdown thread —
    all real work (drain, pool stop, shm release) happens outside signal
    context.  Deliberately *not* chained through
    :func:`repro.core.executor.install_signal_cleanup`: that hook
    releases segments immediately, which would yank the staged bank out
    from under in-flight requests; here the drain releases them in order,
    and the executor's atexit registration backstops any path where the
    drain never completes.
    """
    stop = threading.Event()

    def _stop_handler(signum: int, frame: Any) -> None:
        _log.info("signal %d received; draining", signum)
        stop.set()
        threading.Thread(
            target=server.drain_and_shutdown, name="serve-drain", daemon=True
        ).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _stop_handler)
        signal.signal(signal.SIGINT, _stop_handler)
    try:
        server.serve_forever(poll_interval=poll_seconds)
    finally:
        server.server_close()
        if not stop.is_set():
            # serve_forever ended without a signal (test harness called
            # shutdown() directly): still drain so nothing leaks.
            server.service.drain(timeout=poll_seconds)
