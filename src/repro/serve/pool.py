"""Warm bank + warm worker pool: the resident side of the service.

A one-shot :class:`~repro.core.executor.ShardedStep2Executor` run pays,
per call: indexing both banks, creating two shared-memory segments,
copying both buffers in, and spawning a fresh worker pool.  For a server
answering many small queries against one large resident bank, all of that
is per-*bank* cost being paid per-*request*.  :class:`WarmPool` hoists it:

* the resident bank is indexed once (``BankIndex``) and its buffer staged
  into one shared-memory segment once, with a CRC recorded at staging;
* worker processes map that segment in their initializer and stay alive
  across requests (``initial_pool``/``keep_pool`` on
  :class:`~repro.core.supervisor.ShardSupervisor`);
* each request ships only its (small) query buffer inside the task
  payload — no per-request segments, no per-request pool.

Bit-identity is inherited, not re-proven: the warm task runs the same
:class:`~repro.extend.batched.BatchedUngappedEngine` over the same shard
payloads as the one-shot executor, and shards merge in shard order, so
the merged hits equal a cold run's bit for bit (see
``tests/test_serve_service.py``).

Chaos hooks mirror the executor's: worker-addressed
:class:`~repro.core.faults.FaultSpec` records fire inside the warm task
(crash/hang/truncate/corrupt view), and the service-level
``POOL_DEATH`` / ``CORRUPT_WARM_BANK`` kinds are applied here via
:meth:`WarmPool.kill_workers` and :meth:`WarmPool.corrupt_staged_bank`,
with :meth:`WarmPool.heal_if_corrupt` as the CRC self-heal.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from ..analysis.contracts import check_array
from ..analysis.locksan import make_lock, touch
from ..core import executor as core_executor
from ..core.config import PipelineConfig
from ..core.executor import (
    ShardResult,
    _attach_shared,
    _package_hits,
    _pool_context,
    _score_shard_local,
)
from ..core.faults import BankCorruption, FaultKind, FaultPlan, bank_digest
from ..core.partition import split_entries_contiguous
from ..core.profile import RunHealth
from ..core.supervisor import (
    DeadlineExceeded,
    ShardSupervisor,
    SupervisorConfig,
    _stop_pool,
)
from ..extend.backends import resolve_backend
from ..extend.batched import BatchedUngappedEngine, EntryBlock
from ..extend.ungapped import UngappedHits, UngappedStats
from ..index.kmer import BankIndex, TwoBankIndex
from ..obs import metrics as obsmetrics
from ..obs import trace as obstrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing.shared_memory import SharedMemory

    from ..seqs.sequence import SequenceBank

__all__ = ["WarmPool"]


def _init_warm_worker(
    name1: str,
    size1: int,
    config: object,
    unregister: bool,
    fault_plan: FaultPlan | None,
    digest1: int,
    obs_enabled: bool = False,
) -> None:
    """Warm-pool initializer: map only the resident bank segment.

    State lands in the executor's per-process ``_WORKER`` dict (one
    fork-unsafe module global for the whole codebase, already baselined
    for RC101) under warm-specific keys; the query side arrives per task.
    """
    import signal

    # Workers forked after serve_forever() installed the server's
    # SIGTERM/SIGINT drain handler inherit it — a worker that catches
    # SIGTERM survives kills and starts a drain thread of its own.
    # Reset to the default disposition: workers die when told to.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    obstrace.reset()
    obsmetrics.reset()
    core_executor._LIVE_SEGMENTS.clear()
    shm1 = _attach_shared(name1, unregister)
    state = core_executor._WORKER
    state.clear()
    state["shm1"] = shm1
    state["size1"] = size1
    buf1 = np.ndarray((size1,), dtype=np.uint8, buffer=shm1.buf)
    check_array(
        "warm-pool resident bank view", buf1, core_executor._BANK_VIEW_SPEC
    )
    state["buf1"] = buf1
    state["config"] = config
    state["fault_plan"] = fault_plan
    state["digest1"] = digest1
    state["obs"] = obs_enabled


def _warm_probe() -> bool:
    """No-op task whose only job is forcing worker processes to spawn."""
    return "buf1" in core_executor._WORKER


def _verify_resident_view() -> None:
    """Digest-check the worker's resident view; re-map and raise if bad."""
    state = core_executor._WORKER
    expect = state["digest1"]
    if bank_digest(state["buf1"]) == expect:
        return
    fresh = np.ndarray(
        (state["size1"],), dtype=np.uint8, buffer=state["shm1"].buf
    )
    if bank_digest(fresh) != expect:  # pragma: no cover - shm itself bad
        raise BankCorruption(
            "shared resident-bank segment is corrupt beyond repair"
        )
    state["buf1"] = fresh
    raise BankCorruption(
        "warm worker's resident bank view failed the digest check; "
        "view re-mapped from the shared segment"
    )


def _score_warm_shard(
    shard: int,
    attempt: int,
    request_id: str | None,
    query_bytes: bytes,
    offsets0: np.ndarray,
    counts0: np.ndarray,
    offsets1: np.ndarray,
    counts1: np.ndarray,
) -> ShardResult:
    """Warm worker task: score one shard of a request.

    The resident bank is the process-lifetime shared-memory view; the
    query bank rides the payload as raw bytes (queries are small — this
    is the whole point of the warm split).  Fault addressing matches the
    cold task: ``(shard, attempt)``, with ``CORRUPT_BANK`` redirected at
    the *resident* view so the digest-check/re-map path is what recovers.

    *request_id* rides the payload so the worker's spans carry the
    originating request's identity; when the service enabled tracing the
    spans are recorded into a fresh per-task tracer and ride home in the
    result tuple's obs slot, where :meth:`WarmPool.step2` adopts them
    under the request's shard span (same round-trip as the cold
    executor's ``_score_shard``).
    """
    t0 = obstrace.clock()
    state = core_executor._WORKER
    plan: FaultPlan | None = state.get("fault_plan")
    spec = plan.worker_fault(shard, attempt) if plan is not None else None
    if spec is not None:
        if spec.kind is FaultKind.CORRUPT_BANK:
            assert plan is not None
            bad = state["buf1"].copy()
            n = min(64, bad.shape[0])
            bad[:n] ^= plan.corruption(shard, n) | np.uint8(1)
            state["buf1"] = bad  # private copy: shm stays clean for peers
        else:
            core_executor._apply_worker_fault(spec, shard)
    _verify_resident_view()
    buf0 = np.frombuffer(query_bytes, dtype=np.uint8)
    engine = BatchedUngappedEngine(state["config"])

    def scored() -> UngappedHits:
        return engine.run_stream(
            buf0, state["buf1"], EntryBlock(offsets0, counts0, offsets1, counts1)
        )

    obs_payload = None
    if state.get("obs"):
        import os

        tracer = obstrace.Tracer()
        registry = obsmetrics.MetricsRegistry()
        with obstrace.activate(tracer), obsmetrics.activate(registry):
            with obstrace.span(
                "step2.worker",
                shard=shard,
                attempt=attempt,
                request_id=request_id,
                pid=os.getpid(),
            ):
                hits = scored()
        obs_payload = (tuple(tracer.export()), registry.to_dict())
    else:
        with obstrace.span("step2.worker", shard=shard, attempt=attempt):
            hits = scored()
    result = _package_hits(shard, hits, obstrace.clock() - t0, engine, obs_payload)
    if spec is not None and spec.kind is FaultKind.TRUNCATE:
        drop = max(1, int(spec.drop))
        result = (
            result[:1] + tuple(a[:-drop] for a in result[1:4]) + result[4:]
        )
    return result


class WarmPool:
    """Resident bank staged once + persistent supervised worker pool.

    Parameters
    ----------
    config:
        Pipeline configuration; its derived
        :class:`~repro.extend.ungapped.UngappedConfig` (backend resolved
        eagerly, as the executor does) rides the pool initargs.
    resident:
        The resident bank (bank 1 of every comparison — e.g. the
        translated genome).
    workers:
        Warm worker process count (>= 1; 1 still stages the bank but
        scores in-process).
    fault_plan:
        Worker-addressed deterministic faults for the warm tasks.
    supervisor:
        Per-request supervision policy template; each request overlays
        its own absolute deadline via :func:`dataclasses.replace`.
    obs_enabled:
        When true, warm workers record per-task spans that ride back in
        the result tuple for adoption under the request's span tree.
    """

    def __init__(
        self,
        config: PipelineConfig,
        resident: SequenceBank,
        workers: int = 2,
        fault_plan: FaultPlan | None = None,
        supervisor: SupervisorConfig | None = None,
        obs_enabled: bool = False,
    ) -> None:
        from multiprocessing import shared_memory

        self.obs_enabled = obs_enabled
        self.config = config
        ungapped = config.ungapped_config()
        resolved = resolve_backend(ungapped.backend, ungapped)
        if ungapped.backend != resolved.info.name:
            ungapped = replace(ungapped, backend=resolved.info.name)
        self.ungapped = ungapped
        self.resident = resident
        self.workers = max(1, int(workers))
        self.fault_plan = fault_plan
        self.supervisor = supervisor or config.supervisor_config()
        #: Resident index built once; every request joins against it.
        self.resident_index = BankIndex(resident, config.seed_model)
        #: Guards every mutable field the dispatcher threads share:
        #: ``_pool``, ``_closed``, ``_staged``, ``_last_health`` and
        #: ``_bank_heals``.  Built through the locksan factory so the
        #: runtime sanitizer can watch it under ``REPRO_LOCKSAN=1``.
        self._pool_lock = make_lock("repro.serve.pool.WarmPool._pool_lock")
        self._last_health = RunHealth()
        self._bank_heals = 0

        buf1 = resident.buffer
        check_array(
            "warm-pool resident bank buffer", buf1, core_executor._BANK_VIEW_SPEC
        )
        self.digest = bank_digest(buf1)
        self._ctx, self._unregister = _pool_context()
        self._shm: SharedMemory = shared_memory.SharedMemory(
            create=True, size=max(1, buf1.nbytes)
        )
        core_executor._track_segment(self._shm)
        self._staged = np.ndarray(buf1.shape, dtype=np.uint8, buffer=self._shm.buf)
        self._staged[:] = buf1
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    # -- shared state accessors -----------------------------------------
    @property
    def last_health(self) -> RunHealth:
        """Supervision counters of the most recent :meth:`step2` call."""
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._last_health")
            return self._last_health

    @last_health.setter
    def last_health(self, value: RunHealth) -> None:
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._last_health", write=True)
            self._last_health = value

    @property
    def bank_heals(self) -> int:
        """Pool rebuilds + bank heals over the pool's lifetime."""
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._bank_heals")
            return self._bank_heals

    @property
    def resident_bytes(self) -> int:
        """Bytes of the staged resident-bank segment (a boot-time constant)."""
        return int(self._shm.size)

    # -- lifecycle ------------------------------------------------------
    def _make_pool(self) -> ProcessPoolExecutor:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._ctx,
            initializer=_init_warm_worker,
            initargs=(
                self._shm.name,
                self.resident.buffer.shape[0],
                self.ungapped,
                self._unregister,
                self.fault_plan,
                self.digest,
                self.obs_enabled,
            ),
        )

    def warm_up(self, timeout: float = 60.0) -> None:
        """Spawn the worker pool eagerly (otherwise first request pays it).

        ``ProcessPoolExecutor`` forks workers lazily on first submit, so a
        bare executor is not actually warm — a probe task forces the spawn
        (and the initializer's segment mapping) to happen at boot.

        The pool is *built* (a fork point) outside :attr:`_pool_lock` and
        only *published* under it — forking with the lock held is exactly
        what RC304 forbids.  A racing publisher loses: its pool is stopped
        outside the lock.
        """
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._pool")
            if self._closed or self.workers <= 1 or self._pool is not None:
                return
        pool = self._make_pool()
        pool.submit(_warm_probe).result(timeout=timeout)
        leftover = None
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._pool", write=True)
            if self._closed or self._pool is not None:
                leftover = pool
            else:
                self._pool = pool
        if leftover is not None:
            _stop_pool(leftover)

    @property
    def pool_alive(self) -> bool:
        """True while a warm pool is held for the next request."""
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._pool")
            return self._pool is not None

    def close(self) -> None:
        """Stop the pool and release the staged segment (idempotent).

        The pool is swapped out under :attr:`_pool_lock` and stopped
        outside it — ``_stop_pool`` joins worker processes, and holding a
        lock across a join is the bounded-blocking shape RC107 rejects.
        """
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._closed", write=True)
            if self._closed:
                return
            self._closed = True
            touch("repro.serve.pool.WarmPool._pool", write=True)
            pool, self._pool = self._pool, None
        if pool is not None:
            _stop_pool(pool)
        core_executor._release_segment(self._shm)

    # -- chaos hooks ----------------------------------------------------
    def kill_workers(self) -> None:
        """Terminate every warm worker (the ``POOL_DEATH`` injection).

        The pool object survives in a broken state, exactly as if the
        processes had died for real — the next request's supervisor sees
        ``BrokenProcessPool`` and rebuilds via ``make_pool``.
        """
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._pool")
            pool = self._pool
        if pool is None:
            return
        # SIGKILL, not SIGTERM: the modelled death is a hard one (segfault,
        # OOM kill), and it must not depend on what handlers the worker
        # happens to have installed.
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.kill()
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.join(timeout=1.0)

    def corrupt_staged_bank(self, request: int) -> None:
        """Overwrite the staged segment head with seeded garbage.

        The ``CORRUPT_WARM_BANK`` injection: unlike the worker-view
        corruption (private copy), this damages the *source* segment, so
        only the service-level CRC check + re-stage can recover.
        """
        plan = self.fault_plan or FaultPlan()
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._staged", write=True)
            n = min(64, self._staged.shape[0])
            self._staged[:n] ^= plan.corruption(request, n) | np.uint8(1)

    def heal_if_corrupt(self) -> bool:
        """CRC-check the staged segment; re-stage from the host copy if bad.

        Returns true when a heal happened.  The host's own ``resident``
        buffer is the pristine source (it is never handed to workers), so
        re-staging restores the exact bytes recorded by :attr:`digest` —
        workers' digest checks pass again without remapping.
        """
        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._staged", write=True)
            if bank_digest(self._staged) == self.digest:
                return False
            self._staged[:] = self.resident.buffer
            touch("repro.serve.pool.WarmPool._bank_heals", write=True)
            self._bank_heals += 1
        obstrace.add_event("serve.bank_heal")
        return True

    # -- scoring --------------------------------------------------------
    def step2(
        self,
        index: TwoBankIndex,
        deadline_at: float | None = None,
        use_pool: bool = True,
        request_id: str | None = None,
    ) -> UngappedHits:
        """Score one request's joint *index*, warm-pool sharded.

        ``deadline_at`` is the request's absolute deadline, plumbed into
        :attr:`~repro.core.supervisor.SupervisorConfig.deadline`;
        ``use_pool=False`` is the breaker's degraded route (in-process,
        bit-identical, no pool interaction at all).  ``request_id``
        threads the request's identity through the supervisor (retry and
        fallback events carry it) and into every worker task payload, so
        worker spans coming home in the obs slot re-parent under this
        request's shard spans.
        """
        if (
            not use_pool
            or self.workers == 1
            or index.n_shared_keys < 2 * self.workers
        ):
            return self._step2_local(index, deadline_at, request_id)
        n_shards = max(1, min(self.workers, index.n_shared_keys))
        ranges = split_entries_contiguous(index, n_shards)
        tasks = [(s, lo, hi) for s, (lo, hi) in enumerate(ranges) if hi > lo]
        if not tasks:
            return self._step2_local(index, deadline_at, request_id)
        counts = index.pair_counts()
        qbuf = index.index0.bank.buffer
        query_bytes = qbuf.tobytes()
        payloads = {
            s: (request_id, query_bytes, *index.shard_arrays(lo, hi))
            for s, lo, hi in tasks
        }
        pair_counts = {s: int(counts[lo:hi].sum()) for s, lo, hi in tasks}

        def local_score(shard: int) -> ShardResult:
            return _score_shard_local(
                self.ungapped,
                qbuf,
                self.resident.buffer,
                shard,
                payloads[shard][2:],
            )

        with self._pool_lock:
            touch("repro.serve.pool.WarmPool._pool", write=True)
            held, self._pool = self._pool, None  # ownership to the supervisor
        sup = ShardSupervisor(
            replace(self.supervisor, deadline=deadline_at, request_id=request_id),
            self._make_pool,
            _score_warm_shard,
            local_score,
            initial_pool=held,
            keep_pool=True,
        )
        try:
            outcomes, health = sup.run(payloads, pair_counts)
        except DeadlineExceeded as exc:
            self.last_health = exc.health
            raise
        finally:
            # Re-publish the supervisor's pool unless close() won the race
            # while the run was in flight — then the pool is a leftover and
            # is stopped outside the lock (joining under a lock is RC107).
            leftover = None
            with self._pool_lock:
                touch("repro.serve.pool.WarmPool._pool", write=True)
                if self._closed or self._pool is not None:
                    leftover = sup.final_pool
                else:
                    self._pool = sup.final_pool
            if leftover is not None:
                _stop_pool(leftover)
        self.last_health = health
        tracer = obstrace.active()
        registry = obsmetrics.active()
        stats = UngappedStats()
        results = [o.result for o in outcomes]
        for outcome in outcomes:
            result = outcome.result
            shard, _o0, _o1, _sc, (entries, pairs, cells, hits_n), wall = (
                result[:6]
            )
            obs_payload = result[8] if len(result) > 8 else None
            if tracer is not None:
                # Same retrospective-span + adoption shape as the cold
                # executor's merge loop: the shard span is backdated to
                # end now and the worker's spans reparent under it with
                # their timeline rebased onto the shard span's start.
                shard_span = tracer.record(
                    "step2.shard",
                    wall,
                    shard=shard,
                    via=outcome.via,
                    attempts=outcome.attempts,
                    pairs=pairs,
                    hits=hits_n,
                    retry_wall_seconds=outcome.retry_wall_seconds,
                    request_id=request_id,
                )
                if obs_payload is not None and obs_payload[0]:
                    worker_spans = obs_payload[0]
                    tracer.adopt(
                        worker_spans,
                        shard_span.span_id,
                        rebase=(worker_spans[0]["start"], shard_span.start),
                    )
            if registry is not None and obs_payload is not None:
                registry.merge(obs_payload[1])
            stats.merge(UngappedStats(entries, pairs, cells, hits_n))
        offsets0 = np.concatenate([r[1] for r in results])
        offsets1 = np.concatenate([r[2] for r in results])
        scores = np.concatenate([r[3] for r in results]).astype(np.int32)
        return UngappedHits(offsets0, offsets1, scores, stats)

    def _step2_local(
        self,
        index: TwoBankIndex,
        deadline_at: float | None,
        request_id: str | None = None,
    ) -> UngappedHits:
        """Degraded / small-workload route: in-process batched scoring."""
        if deadline_at is not None and obstrace.clock() >= deadline_at:
            health = RunHealth(shards=1, cancelled=1)
            self.last_health = health
            raise DeadlineExceeded(
                "request deadline expired before in-process scoring",
                health,
                (0,),
            )
        engine = BatchedUngappedEngine(self.ungapped)
        with obstrace.span(
            "step2.shard", shard=0, via="local", request_id=request_id
        ):
            hits = engine.run(index)
        self.last_health = RunHealth(shards=1)
        return hits
