"""Circuit breaker around the warm worker pool.

The supervisor already recovers a single bad dispatch (retry, rebuild,
in-process fallback), but a persistently failing pool would make *every*
request pay the full retry ladder before its fallback.  The breaker cuts
that short: after ``failure_threshold`` consecutive pool-path failures it
opens, and requests are routed straight to the in-process degraded path —
correct (bit-identical) results at pool-less speed, with none of the
retry latency.  After ``reset_seconds`` a single half-open probe request
is allowed back onto the pool path; its success closes the breaker, its
failure re-opens it.

::

    CLOSED ──failure × threshold──> OPEN ──reset_seconds──> HALF_OPEN
      ^                              ^                          │
      └───────── probe ok ───────────┼────── probe fails ───────┘

Thread safety: state transitions are guarded by a lock held only for
constant-time bookkeeping (never across a dispatch), so handler threads
cannot observe a torn state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..analysis.locksan import make_lock, touch
from ..obs import trace

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """Where the breaker routes the next request."""

    #: Pool path; failures accumulate toward the trip threshold.
    CLOSED = "closed"
    #: Degraded in-process path; the pool is presumed broken.
    OPEN = "open"
    #: One probe request is trying the pool path right now.
    HALF_OPEN = "half-open"


#: Numeric encoding of each state for the ``serve_breaker_state`` gauge.
STATE_VALUES = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}


@dataclass(frozen=True)
class BreakerConfig:
    """Trip and recovery policy.

    Attributes
    ----------
    failure_threshold:
        Consecutive pool-path failures that open the breaker.
    reset_seconds:
        Open-state dwell before a half-open probe is allowed.
    """

    failure_threshold: int = 3
    reset_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_seconds < 0:
            raise ValueError("reset_seconds must be >= 0")


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe."""

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self._lock = make_lock("repro.serve.breaker.CircuitBreaker._lock")
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trips = 0

    @property
    def trips(self) -> int:
        """Lifetime count of CLOSED/HALF_OPEN → OPEN transitions."""
        with self._lock:
            touch("repro.serve.breaker.CircuitBreaker._trips")
            return self._trips

    @property
    def state(self) -> BreakerState:
        """Current state (transitioning OPEN → HALF_OPEN when due)."""
        with self._lock:
            touch("repro.serve.breaker.CircuitBreaker._state")
            self._maybe_half_open()
            return self._state

    def allows_pool(self) -> bool:
        """Route the next request: pool path (true) or degraded (false).

        In the half-open state this keeps answering true — the service's
        single dispatcher thread serialises requests, so exactly one probe
        is in flight at a time by construction.
        """
        with self._lock:
            touch("repro.serve.breaker.CircuitBreaker._state")
            self._maybe_half_open()
            return self._state is not BreakerState.OPEN

    def record_success(self) -> None:
        """A pool-path request completed with a healthy run."""
        with self._lock:
            touch("repro.serve.breaker.CircuitBreaker._state", write=True)
            if self._state is BreakerState.HALF_OPEN:
                trace.add_event("breaker.close")
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A pool-path request needed recovery (or raised outright)."""
        with self._lock:
            touch("repro.serve.breaker.CircuitBreaker._state", write=True)
            self._consecutive_failures += 1
            if self._state is BreakerState.HALF_OPEN or (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._state = BreakerState.OPEN
                self._opened_at = trace.clock()
                touch("repro.serve.breaker.CircuitBreaker._trips", write=True)
                self._trips += 1
                trace.add_event(
                    "breaker.open", consecutive=self._consecutive_failures
                )

    def _maybe_half_open(self) -> None:
        """OPEN → HALF_OPEN once the reset dwell has elapsed (lock held)."""
        if (
            self._state is BreakerState.OPEN
            and trace.clock() - self._opened_at >= self.config.reset_seconds
        ):
            self._state = BreakerState.HALF_OPEN
            trace.add_event("breaker.half_open")
