"""Quality evaluation: ROC50, average precision, the planted-family
sensitivity benchmark, and throughput metrics."""

from .ap import average_precision, mean_ap
from .benchmark_data import (
    ScoredRun,
    SensitivityBenchmark,
    build_benchmark,
    frame_interval,
)
from .calibration import (
    CalibrationReport,
    ScoreSample,
    empirical_exceedance,
    evalue_calibration,
    fit_lambda,
    sample_gapped_scores,
    sample_ungapped_scores,
)
from .metrics import LITERATURE_THROUGHPUT, ThroughputPoint, kaamnt_per_second
from .roc import mean_roc50, roc50, roc_n

__all__ = [
    "roc_n",
    "roc50",
    "mean_roc50",
    "average_precision",
    "mean_ap",
    "SensitivityBenchmark",
    "build_benchmark",
    "frame_interval",
    "ScoredRun",
    "kaamnt_per_second",
    "LITERATURE_THROUGHPUT",
    "ThroughputPoint",
    "ScoreSample",
    "CalibrationReport",
    "sample_gapped_scores",
    "sample_ungapped_scores",
    "fit_lambda",
    "empirical_exceedance",
    "evalue_calibration",
]
