"""Average precision — the paper's selectivity metric (§4.4, after
Chen 2003).

Per query, the 50 best alignments are marked true/false; for each true
positive, its *true-positive rank* (1 for the first TP, 2 for the second…)
is divided by its *list position*; the sum of those ratios divided by the
total number of true positives gives the query's AP.  Mean-AP averages
over queries.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["average_precision", "mean_ap"]


def average_precision(labels: Sequence[bool], top: int = 50) -> float:
    """AP of one ranked label list, restricted to the *top* hits.

    Returns 0.0 when no true positive appears in the window (a query that
    finds nothing scores nothing, as in the paper's protocol).
    """
    if top <= 0:
        raise ValueError("top must be positive")
    window = list(labels[:top])
    tp_rank = 0
    acc = 0.0
    for position, is_tp in enumerate(window, start=1):
        if is_tp:
            tp_rank += 1
            acc += tp_rank / position
    if tp_rank == 0:
        return 0.0
    return acc / tp_rank


def mean_ap(per_query_labels: Sequence[Sequence[bool]], top: int = 50) -> float:
    """Mean AP across queries (the paper's AP-Mean)."""
    if not per_query_labels:
        return 0.0
    return float(np.mean([average_precision(l, top) for l in per_query_labels]))
