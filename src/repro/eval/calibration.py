"""Empirical validation of the Karlin–Altschul statistics layer.

Both engines report E-values; the whole Table 6 comparison silently
assumes those E-values mean what they claim.  This module checks that
assumption empirically: scores of optimal local alignments between
*random* sequences follow an extreme-value (Gumbel) law with the
ungapped/gapped (λ, K) parameters — so the observed exceedance curve
``P(S ≥ x)`` should match ``1 - exp(-K·m·n·e^{-λx}) ≈ K·m·n·e^{-λx}``.

:func:`empirical_exceedance` samples alignment scores on background pairs;
:func:`fit_lambda` recovers λ from the tail slope;
:func:`evalue_calibration` packages the comparison for tests and the
statistics bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..extend.gapped import GapPenalties, smith_waterman
from ..extend.stats import KarlinParams
from ..seqs.generate import random_protein
from ..seqs.matrices import BLOSUM62, SubstitutionMatrix

__all__ = [
    "ScoreSample",
    "sample_gapped_scores",
    "sample_ungapped_scores",
    "fit_lambda",
    "empirical_exceedance",
    "evalue_calibration",
]


@dataclass(frozen=True)
class ScoreSample:
    """Scores of optimal local alignments between random pairs."""

    scores: np.ndarray
    m: int
    n: int

    def exceedance(self, thresholds: np.ndarray) -> np.ndarray:
        """Empirical ``P(S ≥ t)`` for each threshold."""
        s = np.sort(self.scores)
        return 1.0 - np.searchsorted(s, thresholds, side="left") / s.shape[0]


def sample_gapped_scores(
    rng: np.random.Generator,
    n_pairs: int = 200,
    m: int = 120,
    n: int = 120,
    matrix: SubstitutionMatrix = BLOSUM62,
    gaps: GapPenalties = GapPenalties(),
) -> ScoreSample:
    """Optimal gapped local scores of random pairs (Smith–Waterman)."""
    scores = np.empty(n_pairs, dtype=np.int64)
    for i in range(n_pairs):
        a = random_protein(rng, m)
        b = random_protein(rng, n)
        scores[i] = smith_waterman(a, b, matrix=matrix, gaps=gaps).score
    return ScoreSample(scores, m, n)


def sample_ungapped_scores(
    rng: np.random.Generator,
    n_pairs: int = 500,
    m: int = 200,
    n: int = 200,
    matrix: SubstitutionMatrix = BLOSUM62,
) -> ScoreSample:
    """Optimal ungapped local scores of random pairs.

    Exact maximum-scoring diagonal segment (Kadane over every diagonal),
    vectorised: the substitution matrix of each pair is scattered into a
    (diagonal, position) array and the running-max recurrence sweeps all
    diagonals at once.
    """
    sub = matrix.scores.astype(np.int64)
    scores = np.empty(n_pairs, dtype=np.int64)
    ii, jj = np.meshgrid(np.arange(m), np.arange(n), indexing="ij")
    diag_idx = (jj - ii + m - 1).ravel()
    pos_idx = np.minimum(ii, jj).ravel()
    depth = min(m, n)
    for p in range(n_pairs):
        a = random_protein(rng, m)
        b = random_protein(rng, n)
        cells = sub[a[:, None], b[None, :]].ravel()
        D = np.full((m + n - 1, depth), -(1 << 20), dtype=np.int64)
        D[diag_idx, pos_idx] = cells
        run = np.zeros(m + n - 1, dtype=np.int64)
        best = np.zeros(m + n - 1, dtype=np.int64)
        for t in range(depth):
            np.add(run, D[:, t], out=run)
            np.maximum(run, 0, out=run)
            np.maximum(best, run, out=best)
        scores[p] = int(best.max())
    return ScoreSample(scores, m, n)


def fit_lambda(sample: ScoreSample, tail_fraction: float = 0.5) -> float:
    """Estimate λ from the exceedance tail slope.

    ``ln P(S ≥ x) ≈ ln(Kmn) − λx`` in the tail, so a linear fit of log
    exceedance against score over the upper *tail_fraction* of observed
    scores yields −λ as the slope.
    """
    lo = float(np.quantile(sample.scores, 1 - tail_fraction))
    hi = float(sample.scores.max())
    if hi <= lo:
        raise ValueError("degenerate score sample")
    xs = np.arange(lo, hi)
    p = sample.exceedance(xs)
    keep = p > 0
    if keep.sum() < 3:
        raise ValueError("not enough tail mass to fit lambda")
    slope, _ = np.polyfit(xs[keep], np.log(p[keep]), 1)
    return float(-slope)


def empirical_exceedance(
    sample: ScoreSample, params: KarlinParams, thresholds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(empirical, predicted) exceedance curves at *thresholds*.

    Prediction uses the full Gumbel form
    ``1 − exp(−K·m·n·e^{−λx})`` (not the linearised tail).
    """
    from ..extend.stats import effective_search_space

    emp = sample.exceedance(thresholds)
    space = effective_search_space(sample.m, sample.n, params)
    mean_hits = params.k * space * np.exp(-params.lam * thresholds)
    pred = 1.0 - np.exp(-mean_hits)
    return emp, pred


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of one statistics-calibration run."""

    fitted_lambda: float
    published_lambda: float
    max_abs_error: float  # sup-norm between exceedance curves

    @property
    def lambda_relative_error(self) -> float:
        """|fitted − published| / published."""
        return abs(self.fitted_lambda - self.published_lambda) / self.published_lambda


def evalue_calibration(
    sample: ScoreSample, params: KarlinParams
) -> CalibrationReport:
    """Compare a score sample against published (λ, K)."""
    lam_hat = fit_lambda(sample)
    lo = float(np.quantile(sample.scores, 0.25))
    hi = float(sample.scores.max())
    thresholds = np.arange(lo, hi)
    emp, pred = empirical_exceedance(sample, params, thresholds)
    return CalibrationReport(
        fitted_lambda=lam_hat,
        published_lambda=params.lam,
        max_abs_error=float(np.abs(emp - pred).max()) if thresholds.size else 0.0,
    )
