"""The planted-family sensitivity benchmark (stand-in for Gertz et al.).

The paper evaluates sensitivity/selectivity by "aligning 102 queries
against the yeast genome" with human-curated family annotation as ground
truth.  That curation is not redistributable, so this module builds a
synthetic benchmark with *known* ground truth that exercises the same
machinery:

* ``n_families`` protein families are generated
  (:func:`repro.seqs.generate.make_family`); several members of each are
  reverse-translated and planted at recorded loci in a yeast-scale genome;
* *other* members of each family serve as the queries (so queries never
  match a planted copy exactly — detection requires surviving the mutation
  channel, like real homology search);
* an alignment counts as a true positive when its genomic footprint
  overlaps a planted locus of the query's own family.

The benchmark then scores any search engine (our pipeline, the BLAST-like
baseline, an accelerated run) with ROC50 and mean AP on identical inputs.
"""

from __future__ import annotations

from collections.abc import Callable
from collections.abc import Sequence as PySequence
from dataclasses import dataclass, field

import numpy as np

from ..core.results import Alignment, ComparisonReport
from ..seqs.generate import PlantedHomolog, make_family, mutate_protein, plant_homologs, random_genome
from ..seqs.sequence import Sequence, SequenceBank
from .ap import mean_ap
from .roc import mean_roc50

__all__ = ["frame_interval", "SensitivityBenchmark", "build_benchmark", "ScoredRun"]


def frame_interval(
    frame_name: str, aa_start: int, aa_end: int, genome_length: int
) -> tuple[int, int]:
    """Genomic footprint (forward-strand, half-open) of a frame alignment.

    *frame_name* is a translated-bank sequence name ending in
    ``|frame±K`` (see :func:`repro.seqs.translate.translated_bank`).
    """
    tag = frame_name.rsplit("|frame", 1)[1]
    frame = int(tag)
    if frame > 0:
        off = frame - 1
        return off + 3 * aa_start, off + 3 * aa_end
    off = -frame - 1
    rc_start = off + 3 * aa_start
    rc_end = off + 3 * aa_end
    return genome_length - rc_end, genome_length - rc_start


@dataclass
class ScoredRun:
    """Sensitivity scores of one engine on the benchmark."""

    name: str
    roc50: float
    ap_mean: float
    per_query_labels: list[list[bool]] = field(repr=False, default_factory=list)


@dataclass
class SensitivityBenchmark:
    """Queries + genome + ground truth, with scoring helpers."""

    queries: SequenceBank
    genome: Sequence
    #: Family id of each query, aligned with ``queries`` order.
    query_families: list[int]
    #: Planted ground-truth loci.
    truth: list[PlantedHomolog]

    def positives_for(self, family_id: int) -> int:
        """Number of planted copies a query of *family_id* can find."""
        return sum(1 for t in self.truth if t.family_id == family_id)

    def truth_hit(self, query_index: int, alignment: Alignment) -> int | None:
        """Index of the own-family planted locus the alignment covers.

        Returns ``None`` when the alignment's genomic footprint overlaps no
        plant of the query's family (a false positive).
        """
        fam = self.query_families[query_index]
        start, end = frame_interval(
            alignment.seq1_name, alignment.start1, alignment.end1, len(self.genome)
        )
        for i, t in enumerate(self.truth):
            if t.family_id == fam and start < t.genome_end and t.genome_start < end:
                return i
        return None

    def label_alignment(self, query_index: int, alignment: Alignment) -> bool:
        """True-positive test: footprint overlaps an own-family plant."""
        return self.truth_hit(query_index, alignment) is not None

    def score_report(
        self, name: str, report: ComparisonReport, max_hits: int = 100
    ) -> ScoredRun:
        """Score one engine's full report (all queries at once).

        Per query, its alignments are ranked by E-value (best first),
        truncated to *max_hits* ("the first 100 best hits"), and labelled
        against ground truth.  Repeat retrievals of an already-found
        planted locus are dropped from the ranked list (standard retrieval
        convention — they are neither new finds nor errors), which keeps
        per-query true positives bounded by the family's plant count.
        """
        labels: list[list[bool]] = []
        positives: list[int] = []
        for qi in range(len(self.queries)):
            seen: set[int] = set()
            q_labels: list[bool] = []
            for a in report.for_query(qi):
                if len(q_labels) >= max_hits:
                    break
                hit = self.truth_hit(qi, a)
                if hit is None:
                    q_labels.append(False)
                elif hit not in seen:
                    seen.add(hit)
                    q_labels.append(True)
                # duplicate coverage of a found locus: dropped from ranking
            labels.append(q_labels)
            positives.append(max(1, self.positives_for(self.query_families[qi])))
        return ScoredRun(
            name=name,
            roc50=mean_roc50(labels, positives),
            ap_mean=mean_ap(labels, top=50),
            per_query_labels=labels,
        )

    def score_engine(
        self,
        name: str,
        engine: Callable[[SequenceBank, Sequence], ComparisonReport],
        max_hits: int = 100,
    ) -> ScoredRun:
        """Run ``engine(queries, genome)`` and score its report."""
        return self.score_report(name, engine(self.queries, self.genome), max_hits)


def build_benchmark(
    seed: int = 42,
    n_families: int = 17,
    queries_per_family: int = 6,
    plants_per_family: int = 4,
    family_length: tuple[int, int] = (120, 400),
    genome_length: int = 1_200_000,
    query_identity: tuple[float, float] = (0.45, 0.85),
    plant_identity: tuple[float, float] = (0.45, 0.9),
    remote_fraction: float = 0.0,
    remote_identity: tuple[float, float] = (0.25, 0.35),
) -> SensitivityBenchmark:
    """Build the default 102-query benchmark (17 families × 6 queries).

    Queries and planted copies are *independent* mutations of each family
    ancestor, so query↔plant identity is roughly the product of the two
    channels — spanning the twilight zone where seed heuristics
    differentiate.

    ``remote_fraction`` makes that fraction of the families *remote*: both
    channels run at ``remote_identity``, putting the pairwise identity far
    below the pairwise-detection limit.  Real curated benchmarks (Gertz et
    al.) are full of such families — it is why even NCBI BLAST scores only
    ~0.48 ROC50 there — and including them is what calibrates absolute
    scores into the paper's regime.
    """
    rng = np.random.default_rng(seed)
    genome = random_genome(rng, genome_length, name="yeastlike")
    families = []
    query_seqs: list[Sequence] = []
    query_families: list[int] = []
    n_remote = int(round(n_families * remote_fraction))
    for f in range(n_families):
        length = int(rng.integers(family_length[0], family_length[1] + 1))
        q_range, p_range = (
            (remote_identity, remote_identity)
            if f < n_remote
            else (query_identity, plant_identity)
        )
        fam = make_family(
            rng, f, length, plants_per_family, identity_range=p_range
        )
        families.append(fam)
        lo, hi = q_range
        for q in range(queries_per_family):
            member = mutate_protein(
                rng, fam.ancestor, identity=float(rng.uniform(lo, hi))
            )
            query_seqs.append(Sequence(f"query_f{f:02d}_q{q}", member))
            query_families.append(f)
    genome, truth = plant_homologs(rng, genome, families)
    return SensitivityBenchmark(
        queries=SequenceBank(query_seqs),
        genome=genome,
        query_families=query_families,
        truth=truth,
    )
