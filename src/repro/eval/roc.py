"""ROC50 — the paper's sensitivity metric (§4.4).

For one query: rank its hits best-first and mark each true/false positive
against ground truth.  For each of the first 50 false positives, count the
true positives ranked above it; sum those counts and divide by ``50 × P``
where ``P`` is the number of true positives the query *could* find (its
family size in the benchmark).  When the ranked list runs out before 50
false positives, each missing false positive contributes the total number
of true positives retrieved (the Gertz et al. convention — a method that
returns only true positives is not penalised).

The final score averages per-query ROC50 values.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["roc_n", "roc50", "mean_roc50"]


def roc_n(labels: Sequence[bool], n_positives: int, n: int = 50) -> float:
    """ROC_n of one ranked label list.

    Parameters
    ----------
    labels:
        True/False per ranked hit, best score first.
    n_positives:
        ``P`` — ground-truth positives available to this query.
    n:
        Number of false positives to integrate over (50 in the paper).
    """
    if n_positives <= 0:
        raise ValueError("n_positives must be positive")
    if n <= 0:
        raise ValueError("n must be positive")
    tp_seen = 0
    fp_seen = 0
    total = 0
    for is_tp in labels:
        if is_tp:
            tp_seen += 1
        else:
            fp_seen += 1
            total += tp_seen
            if fp_seen == n:
                break
    if fp_seen < n:
        total += (n - fp_seen) * tp_seen
    return total / (n * n_positives)


def roc50(labels: Sequence[bool], n_positives: int) -> float:
    """ROC50 of one ranked label list (paper §4.4)."""
    return roc_n(labels, n_positives, n=50)


def mean_roc50(
    per_query_labels: Sequence[Sequence[bool]],
    per_query_positives: Sequence[int],
) -> float:
    """Average ROC50 across queries (the paper's reported number)."""
    if len(per_query_labels) != len(per_query_positives):
        raise ValueError("labels/positives length mismatch")
    if not per_query_labels:
        return 0.0
    scores = [
        roc50(labels, p)
        for labels, p in zip(per_query_labels, per_query_positives, strict=True)
    ]
    return float(np.mean(scores))
