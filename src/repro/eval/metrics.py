"""Throughput metrics — paper Table 5.

The paper compares tblastn accelerators by "the product of the number of
Kilo Amino Acids (Kaa) and the number of Mega nucleotides (Mnt) divided by
the processing time" — a search-space-per-second figure that normalises
across data sets.  :func:`kaamnt_per_second` computes it; the literature
values of Table 5 are tabulated for the bench to print alongside our own.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["kaamnt_per_second", "LITERATURE_THROUGHPUT", "ThroughputPoint"]


def kaamnt_per_second(
    bank_amino_acids: int, genome_nucleotides: int, seconds: float
) -> float:
    """Kaa × Mnt / s for one run."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return (bank_amino_acids / 1e3) * (genome_nucleotides / 1e6) / seconds


@dataclass(frozen=True)
class ThroughputPoint:
    """One implementation's throughput as reported in the paper."""

    name: str
    kaamnt_per_s: float
    note: str = ""


#: Table 5 of the paper, verbatim.
LITERATURE_THROUGHPUT: tuple[ThroughputPoint, ...] = (
    ThroughputPoint("DeCypher", 182.0, "TimeLogic benchmark, 4289 proteins vs 192 genomes"),
    ThroughputPoint("CLC", 2.0, "Smith-Waterman-sensitive; biased comparison"),
    ThroughputPoint("FLASH/FPGA", 451.0, "IRISA flash-index prototype"),
    ThroughputPoint("Systolic", 863.0, "NUDT peak, no gapped stage, 3072-PE fit"),
    ThroughputPoint("1/2 RASC-100", 620.0, "this paper, one FPGA of the blade"),
)
