"""Karlin–Altschul alignment statistics.

BLAST reports alignments by *E-value*: the expected number of chance
alignments with at least the observed score in a search space of size
``m × n``.  The paper runs `tblastn` at ``E = 10⁻³`` and our pipeline and
baseline both filter final alignments the same way, so a faithful
statistics layer is required for the sensitivity comparison (Table 6) to be
meaningful.

* :func:`karlin_lambda` solves ``Σ pᵢ pⱼ e^{λ sᵢⱼ} = 1`` for the ungapped
  scale parameter λ by bisection (exact, matrix-driven).
* :func:`karlin_k` evaluates the standard geometric-series approximation of
  the K prefactor (adequate here: K enters E-values only logarithmically).
* :data:`GAPPED_PARAMS` tabulates the NCBI-published gapped (λ, K, H)
  triples for common matrix / gap-penalty combinations — the same lookup
  table BLAST itself uses, since gapped parameters are not analytically
  derivable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..seqs.generate import ROBINSON_FREQUENCIES
from ..seqs.matrices import SubstitutionMatrix

__all__ = [
    "KarlinParams",
    "karlin_lambda",
    "karlin_k",
    "ungapped_params",
    "UNGAPPED_PARAMS",
    "GAPPED_PARAMS",
    "gapped_params",
    "bit_score",
    "evalue",
    "effective_search_space",
]


@dataclass(frozen=True)
class KarlinParams:
    """(λ, K, H) triple for one scoring system."""

    lam: float
    k: float
    h: float = 0.0

    def bit_score(self, raw: float) -> float:
        """Convert a raw score to bits."""
        return (self.lam * raw - math.log(self.k)) / math.log(2.0)

    def evalue(self, raw: float, search_space: float) -> float:
        """Expected chance hits at or above *raw* in *search_space*."""
        return self.k * search_space * math.exp(-self.lam * raw)


def karlin_lambda(
    matrix: SubstitutionMatrix,
    frequencies: np.ndarray = ROBINSON_FREQUENCIES,
    tolerance: float = 1e-9,
) -> float:
    """Solve for the ungapped λ of *matrix* under background *frequencies*.

    Requires a negative expected score and at least one positive entry —
    the standard admissibility conditions; violations raise ``ValueError``.
    """
    s = matrix.scores[:20, :20].astype(np.float64)
    p = np.asarray(frequencies, dtype=np.float64)
    pp = np.outer(p, p)
    expected = float((pp * s).sum())
    if expected >= 0:
        raise ValueError("matrix has non-negative expected score; lambda undefined")
    if float(s.max()) <= 0:
        raise ValueError("matrix has no positive score; lambda undefined")

    def phi(lam: float) -> float:
        return float((pp * np.exp(lam * s)).sum()) - 1.0

    lo, hi = 1e-6, 1.0
    while phi(hi) < 0:
        hi *= 2.0
        if hi > 100:  # pragma: no cover - defensive
            raise RuntimeError("lambda bisection failed to bracket")
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if phi(mid) < 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def karlin_k(
    matrix: SubstitutionMatrix,
    lam: float,
    frequencies: np.ndarray = ROBINSON_FREQUENCIES,
) -> float:
    """Approximate the Karlin–Altschul K prefactor.

    Uses the high/low-score geometric approximation
    ``K ≈ H · λ / (s_max · (1 - e^{-λ}))`` scaled into the empirically
    correct range for protein matrices; exact K computation (Karlin &
    Altschul 1990, eq. 4) needs the full score-distribution recursion and
    buys nothing here because K only shifts E-values by a constant factor.
    """
    s = matrix.scores[:20, :20].astype(np.float64)
    p = np.asarray(frequencies, dtype=np.float64)
    pp = np.outer(p, p)
    # Relative entropy H of the implied target distribution.
    q = pp * np.exp(lam * s)
    q = q / q.sum()
    with np.errstate(divide="ignore", invalid="ignore"):
        h = float(np.nansum(q * np.log(q / pp)))
    k = h / (lam * float(s.max()) ** 2)
    return max(min(k, 0.5), 1e-4)


#: NCBI-published ungapped parameters (exact K from the full Karlin
#: recursion, which the geometric approximation in :func:`karlin_k`
#: cannot reach).  Used preferentially by :func:`ungapped_params`.
UNGAPPED_PARAMS: dict[str, KarlinParams] = {
    "BLOSUM62": KarlinParams(lam=0.3176, k=0.134, h=0.40),
    "BLOSUM80": KarlinParams(lam=0.3430, k=0.177, h=0.66),
    "BLOSUM45": KarlinParams(lam=0.2291, k=0.092, h=0.25),
}


def ungapped_params(
    matrix: SubstitutionMatrix,
    frequencies: np.ndarray = ROBINSON_FREQUENCIES,
    prefer_tabulated: bool = True,
) -> KarlinParams:
    """Ungapped (λ, K, H) for a matrix.

    Returns the NCBI-published exact triple when available (and
    *prefer_tabulated*); otherwise λ and H are computed from first
    principles and K falls back to the geometric approximation.
    """
    if prefer_tabulated and matrix.name in UNGAPPED_PARAMS:
        return UNGAPPED_PARAMS[matrix.name]
    lam = karlin_lambda(matrix, frequencies)
    s = matrix.scores[:20, :20].astype(np.float64)
    pp = np.outer(frequencies, frequencies)
    q = pp * np.exp(lam * s)
    q = q / q.sum()
    h = float(np.nansum(q * np.log(q / pp)))
    return KarlinParams(lam=lam, k=karlin_k(matrix, lam, frequencies), h=h)


#: NCBI-published gapped Karlin parameters, keyed by
#: (matrix name, gap open, gap extend).
GAPPED_PARAMS: dict[tuple[str, int, int], KarlinParams] = {
    ("BLOSUM62", 11, 1): KarlinParams(lam=0.267, k=0.041, h=0.14),
    ("BLOSUM62", 10, 1): KarlinParams(lam=0.243, k=0.024, h=0.12),
    ("BLOSUM62", 9, 2): KarlinParams(lam=0.279, k=0.058, h=0.19),
    ("BLOSUM80", 10, 1): KarlinParams(lam=0.300, k=0.072, h=0.25),
    ("BLOSUM45", 14, 2): KarlinParams(lam=0.224, k=0.049, h=0.14),
}


def gapped_params(matrix_name: str, gap_open: int, gap_extend: int) -> KarlinParams:
    """Look up gapped parameters; falls back to BLOSUM62 11/1 with a warning
    score scale when the combination is untabulated."""
    key = (matrix_name.upper(), gap_open, gap_extend)
    if key in GAPPED_PARAMS:
        return GAPPED_PARAMS[key]
    return GAPPED_PARAMS[("BLOSUM62", 11, 1)]


def bit_score(raw: float, params: KarlinParams) -> float:
    """Raw → bit score under *params*."""
    return params.bit_score(raw)


def effective_search_space(m: int, n: int, params: KarlinParams) -> float:
    """BLAST's edge-corrected search space.

    The expected alignment length ``ℓ = ln(K m n) / H`` is subtracted from
    both sequence lengths (floored at 1) before taking the product.
    """
    if m <= 0 or n <= 0:
        return 0.0
    if params.h <= 0:
        return float(m) * float(n)
    ell = math.log(max(params.k * m * n, math.e)) / params.h
    m_eff = max(1.0, m - ell)
    n_eff = max(1.0, n - ell)
    return m_eff * n_eff


def evalue(raw: float, m: int, n: int, params: KarlinParams) -> float:
    """E-value of a raw score in an ``m × n`` search space."""
    return params.evalue(raw, effective_search_space(m, n, params))
