"""Step-2 kernel backend registry.

The batched engine (:class:`repro.extend.batched.BatchedUngappedEngine`)
owns batching, threshold filtering and emission order; the inner scoring
kernel — "given two bank buffers and flat anchor arrays, return one int32
score per pair" — is pluggable.  This module is the registry those kernels
plug into, mirroring how the paper swaps the software scoring loop for the
RASC-100 PE array without touching the surrounding dataflow:

* :func:`register_backend` — decorator registering a kernel factory under a
  name, with capability metadata (:class:`BackendInfo`): accumulator dtype,
  per-batch pair limit, selection priority and an availability probe.
* :func:`resolve_backend` — turns a configured name (or ``"auto"``) into a
  ready :class:`ResolvedBackend`.  ``"auto"`` walks registered backends in
  descending priority and picks the first whose probe, construction **and
  accuracy self-check** all pass; an explicit name that fails any of those
  raises :exc:`BackendUnavailable` instead of silently substituting.

Accuracy gate
-------------
Every resolution — auto or explicit — scores a small seeded workload and
compares bit-for-bit against :func:`repro.extend.ungapped.ungapped_score_reference`
(the scalar hardware oracle) under the *actual* config (matrix, window,
semantics).  A backend that would produce different scores can therefore
never be selected, which is what lets the engine treat every backend as
interchangeable for determinism purposes.

Kernel protocol
---------------
A kernel exposes ``prepare(buf0, buf1)`` (once per entry stream; may build
derived tables from the buffers) and ``score(anchors0, anchors1)`` (once
per batch; returns an int32 array that may be a view into scratch storage
valid only until the next ``score`` call — callers that keep scores copy
them, as the engine's threshold filter does).  ``score`` must raise
``IndexError("window exceeds bank buffer; increase pad")`` for anchors
whose flanked window leaves a buffer, exactly like the reference kernel.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..ungapped import UngappedConfig, ungapped_score_reference

__all__ = [
    "BackendInfo",
    "BackendUnavailable",
    "KernelBackend",
    "ResolvedBackend",
    "backend_names",
    "check_anchor_bounds",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "temporary_backend",
]


class KernelBackend(Protocol):
    """Structural type of a registered step-2 scoring kernel."""

    def prepare(self, buf0: np.ndarray, buf1: np.ndarray) -> None:
        """Bind the bank buffers for the coming batches (once per stream)."""
        ...

    def score(self, anchors0: np.ndarray, anchors1: np.ndarray) -> np.ndarray:
        """Score paired anchors; int32 result, valid until the next call."""
        ...


#: Availability probe: None means available, a string is the human-readable
#: reason the backend cannot serve this config.
ProbeFn = Callable[[UngappedConfig], "str | None"]
#: Kernel factory: build a fresh kernel for one config.
FactoryFn = Callable[[UngappedConfig], KernelBackend]


@dataclass(frozen=True)
class BackendInfo:
    """Capability metadata of one registered backend."""

    #: Registry key (what ``--step2-backend`` selects).
    name: str
    #: One-line description for docs / bench output.
    description: str
    #: Accumulator dtype the kernel scans with (scores are always int32 out).
    score_dtype: str
    #: ``"auto"`` preference: higher wins among available backends.
    priority: int
    #: Kernel-imposed per-batch pair cap (None: only ``pair_chunk`` applies).
    max_batch_pairs: int | None
    #: Builds a kernel for a config (may raise; treated as unavailable).
    factory: FactoryFn
    #: Config-time availability check, e.g. int16 overflow impossibility.
    probe: ProbeFn | None


@dataclass(frozen=True)
class ResolvedBackend:
    """A backend selected for a config: metadata plus a ready kernel."""

    info: BackendInfo
    kernel: KernelBackend


class BackendUnavailable(RuntimeError):
    """Requested backend missing, probe-failed, or accuracy-check-failed."""


#: Registered backends by name.  Module-level mutable state in a
#: worker-reachable module (RC101 scope): populated only at import time by
#: the ``register_backend`` decorators in this package, then treated as
#: read-only — fork-inherited copies cannot diverge.  Tests extend it only
#: through the self-cleaning :func:`temporary_backend` context manager.
_BACKENDS: dict[str, BackendInfo] = {}


def register_backend(
    name: str,
    *,
    description: str,
    score_dtype: str,
    priority: int,
    max_batch_pairs: int | None = None,
    probe: ProbeFn | None = None,
) -> Callable[[FactoryFn], FactoryFn]:
    """Decorator: register *factory* as the backend called *name*."""

    def decorate(factory: FactoryFn) -> FactoryFn:
        if name in _BACKENDS:
            raise ValueError(f"step-2 backend {name!r} is already registered")
        _BACKENDS[name] = BackendInfo(
            name=name,
            description=description,
            score_dtype=score_dtype,
            priority=priority,
            max_batch_pairs=max_batch_pairs,
            factory=factory,
            probe=probe,
        )
        return factory

    return decorate


def list_backends() -> list[BackendInfo]:
    """All registered backends, best ``"auto"`` candidate first."""
    return sorted(_BACKENDS.values(), key=lambda b: (-b.priority, b.name))


def backend_names() -> list[str]:
    """Registered names in :func:`list_backends` order."""
    return [info.name for info in list_backends()]


def get_backend(name: str) -> BackendInfo:
    """Metadata for *name*; raises :exc:`BackendUnavailable` if unknown."""
    info = _BACKENDS.get(name)
    if info is None:
        known = ", ".join(backend_names())
        raise BackendUnavailable(
            f"unknown step-2 backend {name!r}; registered: {known}"
        )
    return info


def check_anchor_bounds(
    buf0: np.ndarray,
    base0: np.ndarray,
    buf1: np.ndarray,
    base1: np.ndarray,
    window: int,
) -> None:
    """Reject windows leaving either bank buffer (shared backend contract).

    *base0*/*base1* are flank-subtracted window starts.  Raises the same
    ``IndexError`` as :func:`repro.extend.ungapped.ungapped_scores_paired`
    and :meth:`repro.seqs.sequence.SequenceBank.windows` — an out-of-buffer
    window is a caller error, never a silent wrap-around gather.
    """
    if base0.size == 0:
        return
    if int(base0.min()) < 0 or int(base0.max()) + window > buf0.shape[0]:
        raise IndexError("window exceeds bank buffer; increase pad")
    if int(base1.min()) < 0 or int(base1.max()) + window > buf1.shape[0]:
        raise IndexError("window exceeds bank buffer; increase pad")


#: Pairs in the accuracy self-check workload (kept tiny: resolution runs
#: once per entry stream, and the check is O(pairs × window) scalar work).
_SELF_CHECK_PAIRS = 4


def _self_check(kernel: KernelBackend, config: UngappedConfig) -> str | None:
    """Score a seeded workload and compare against the scalar oracle.

    Returns None on bit-identity, else the reason string.  The workload is
    derived from the config's window so short and long windows both get a
    genuine scan; residues stay in the canonical 0..19 range.
    """
    window = config.window
    flank = config.n
    rng = np.random.default_rng(20090 + window)
    size0 = flank + window + _SELF_CHECK_PAIRS + 4
    size1 = size0 + 3
    buf0 = rng.integers(0, 20, size0, dtype=np.uint8)
    buf1 = rng.integers(0, 20, size1, dtype=np.uint8)
    anchors0 = flank + rng.integers(
        0, _SELF_CHECK_PAIRS + 4, _SELF_CHECK_PAIRS
    ).astype(np.int64)
    anchors1 = flank + rng.integers(
        0, _SELF_CHECK_PAIRS + 4, _SELF_CHECK_PAIRS
    ).astype(np.int64)
    kernel.prepare(buf0, buf1)
    got = np.asarray(kernel.score(anchors0, anchors1))
    if got.dtype != np.int32 or got.shape != (_SELF_CHECK_PAIRS,):
        return (
            "accuracy self-check failed: expected int32 shape "
            f"({_SELF_CHECK_PAIRS},), got {got.dtype} {got.shape}"
        )
    for i in range(_SELF_CHECK_PAIRS):
        s0 = int(anchors0[i]) - flank
        s1 = int(anchors1[i]) - flank
        want = ungapped_score_reference(
            buf0[s0 : s0 + window],
            buf1[s1 : s1 + window],
            config.matrix,
            config.semantics,
        )
        if int(got[i]) != want:
            return (
                "accuracy self-check failed: pair "
                f"{i} scored {int(got[i])}, oracle says {want}"
            )
    return None


def _try_resolve(
    info: BackendInfo, config: UngappedConfig
) -> "ResolvedBackend | str":
    """Probe, build and self-check one backend; kernel or reason string."""
    if info.probe is not None:
        reason = info.probe(config)
        if reason is not None:
            return reason
    try:
        kernel = info.factory(config)
    except Exception as exc:  # noqa: BLE001 - any factory failure disables it
        return f"factory raised {type(exc).__name__}: {exc}"
    try:
        reason = _self_check(kernel, config)
    except Exception as exc:  # noqa: BLE001 - a crashing kernel is unavailable
        return f"accuracy self-check raised {type(exc).__name__}: {exc}"
    if reason is not None:
        return reason
    return ResolvedBackend(info=info, kernel=kernel)


def resolve_backend(name: str, config: UngappedConfig) -> ResolvedBackend:
    """Resolve *name* (a registry key or ``"auto"``) for *config*.

    Explicit names raise :exc:`BackendUnavailable` when the backend is
    unknown, fails its probe, or fails the accuracy gate; ``"auto"`` falls
    through to the next-priority backend instead and only raises when no
    registered backend survives.
    """
    if name != "auto":
        info = get_backend(name)
        outcome = _try_resolve(info, config)
        if isinstance(outcome, str):
            raise BackendUnavailable(
                f"step-2 backend {name!r} unavailable: {outcome}"
            )
        return outcome
    failures: list[str] = []
    for info in list_backends():
        outcome = _try_resolve(info, config)
        if isinstance(outcome, ResolvedBackend):
            return outcome
        failures.append(f"{info.name}: {outcome}")
    detail = "; ".join(failures) if failures else "registry is empty"
    raise BackendUnavailable(
        f"no step-2 backend available under 'auto': {detail}"
    )


@contextmanager
def temporary_backend(info: BackendInfo) -> Iterator[BackendInfo]:
    """Register *info* for a test's dynamic extent, then remove it."""
    if info.name in _BACKENDS:
        raise ValueError(f"step-2 backend {info.name!r} is already registered")
    _BACKENDS[info.name] = info
    try:
        yield info
    finally:
        _BACKENDS.pop(info.name, None)
