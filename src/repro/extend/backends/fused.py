"""``fused`` and ``int16`` backends — shifted-view fused scan kernel.

The reference paired kernel pays three gathers per window column (two
residues, one 2-D matrix cell) plus temporaries.  This kernel fuses the
column step into fewer, allocation-free passes:

* **Pre-scaled bank.**  ``prepare`` multiplies bank 0 once into an int16
  row-offset table (``code * stride``), so the per-column substitution
  lookup becomes *one* flat gather: ``sub_flat[scaled0[b0 + t] + buf1[b1 + t]]``.
* **Shifted views.**  Column ``t`` gathers through ``scaled0[t:]`` /
  ``buf1[t:]`` views instead of adding ``t`` to the anchor arrays — no
  index arithmetic pass at all.  The shared bounds check guarantees
  ``base.max() + window <= len(buf)``, so every shifted gather with
  ``t < window`` stays in range.
* **Preallocated scratch.**  All intermediates live in scratch buffers
  grown monotonically and reused across batches; the steady-state batch
  loop performs no allocation.

``fused`` scans with int32 accumulators.  ``int16`` additionally keeps the
running score and best in int16 — halving accumulator bandwidth — which is
sound only when ``window × max|substitution score|`` fits int16; its probe
asserts that overflow impossibility from the window length at config time
and refuses the config otherwise (BLOSUM62's bound is 16, so the default
window of 28 sits far inside the limit).
"""

from __future__ import annotations

import numpy as np

from ..ungapped import ScoreSemantics, UngappedConfig
from .registry import check_anchor_bounds, register_backend


def _probe_fused(config: UngappedConfig) -> "str | None":
    """Shared availability check: the scaled-bank table must fit int16."""
    scores = config.matrix.scores
    if scores.ndim != 2:
        return "substitution matrix must be 2-D"
    stride = int(scores.shape[1])
    # Any uint8 bank byte may be scaled, pad sentinels included.
    if 255 * stride > np.iinfo(np.int16).max:
        return (
            f"substitution matrix stride {stride} overflows the int16 "
            "scaled-bank table"
        )
    return None


def _probe_int16(config: UngappedConfig) -> "str | None":
    """``fused`` checks plus int16 accumulator overflow impossibility."""
    reason = _probe_fused(config)
    if reason is not None:
        return reason
    max_abs = int(np.abs(config.matrix.scores).max())
    peak = config.window * max_abs
    if peak > np.iinfo(np.int16).max:
        return (
            f"window {config.window} x max |score| {max_abs} can reach "
            f"{peak}, overflowing int16 accumulators"
        )
    return None


class FusedKernel:
    """Shifted-view fused scan over a pre-scaled bank-0 table."""

    def __init__(self, config: UngappedConfig, accum_dtype: np.dtype) -> None:
        self._config = config
        self._accum_dtype = np.dtype(accum_dtype)
        scores = config.matrix.scores
        self._stride = int(scores.shape[1])
        self._sub_flat = np.ascontiguousarray(scores, dtype=np.int16).reshape(-1)
        self._buf1: np.ndarray | None = None
        self._scaled0: np.ndarray | None = None
        self._capacity = 0
        self._base0 = np.empty(0, dtype=np.int64)
        self._base1 = np.empty(0, dtype=np.int64)
        self._x = np.empty(0, dtype=np.int16)
        self._y = np.empty(0, dtype=np.uint8)
        self._idx = np.empty(0, dtype=np.intp)
        self._cost = np.empty(0, dtype=np.int16)
        self._score = np.empty(0, dtype=self._accum_dtype)
        self._best = np.empty(0, dtype=self._accum_dtype)
        self._out = np.empty(0, dtype=np.int32)

    def prepare(self, buf0: np.ndarray, buf1: np.ndarray) -> None:
        """Bind the buffers and pre-scale bank 0 into row offsets."""
        self._buf1 = buf1
        # dtype= must go to the ufunc itself: under NEP 50,
        # ``np.multiply(uint8, 25)`` computes in uint8 and wraps at 255.
        self._scaled0 = np.multiply(buf0, self._stride, dtype=np.int16)

    def _ensure(self, n: int) -> None:
        """Grow the batch scratch buffers to hold *n* pairs."""
        if n <= self._capacity:
            return
        self._base0 = np.empty(n, dtype=np.int64)
        self._base1 = np.empty(n, dtype=np.int64)
        self._x = np.empty(n, dtype=np.int16)
        self._y = np.empty(n, dtype=np.uint8)
        self._idx = np.empty(n, dtype=np.intp)
        self._cost = np.empty(n, dtype=np.int16)
        self._score = np.empty(n, dtype=self._accum_dtype)
        self._best = np.empty(n, dtype=self._accum_dtype)
        self._out = np.empty(n, dtype=np.int32)
        self._capacity = n

    def score(self, anchors0: np.ndarray, anchors1: np.ndarray) -> np.ndarray:
        """Score paired anchors; returns a scratch view (copy to keep)."""
        cfg = self._config
        scaled0, buf1 = self._scaled0, self._buf1
        assert scaled0 is not None and buf1 is not None, "score() before prepare()"
        if anchors0.shape != anchors1.shape:
            raise ValueError("anchor arrays must have equal shapes")
        window = cfg.window
        n = int(anchors0.shape[0])
        self._ensure(n)
        base0 = self._base0[:n]
        base1 = self._base1[:n]
        np.subtract(anchors0, cfg.n, out=base0)
        np.subtract(anchors1, cfg.n, out=base1)
        # The scaled bank mirrors buf0 element-for-element, so bounds
        # checked against it cover every shifted view with t < window.
        check_anchor_bounds(scaled0, base0, buf1, base1, window)
        x = self._x[:n]
        y = self._y[:n]
        idx = self._idx[:n]
        cost = self._cost[:n]
        score = self._score[:n]
        sub_flat = self._sub_flat
        score[...] = 0
        kadane = cfg.semantics is ScoreSemantics.KADANE
        if kadane:
            best = self._best[:n]
            best[...] = 0
        for t in range(window):
            np.take(scaled0[t:], base0, out=x)
            np.take(buf1[t:], base1, out=y)
            # int16 + uint8 promotes to int16 (values stay < stride²), the
            # unsafe cast just widens to the take index dtype in-pass.
            np.add(x, y, out=idx, casting="unsafe")
            np.take(sub_flat, idx, out=cost)
            if kadane:
                np.add(score, cost, out=score)
                np.maximum(score, 0, out=score)
                np.maximum(best, score, out=best)
            else:
                np.maximum(cost, 0, out=cost)
                np.add(score, cost, out=score)
        out = self._out[:n]
        np.copyto(out, best if kadane else score, casting="same_kind")
        return out


@register_backend(
    "fused",
    description="shifted-view fused scan (flat int16 cost table, int32 accumulators)",
    score_dtype="int32",
    priority=50,
    probe=_probe_fused,
)
def make_fused(config: UngappedConfig) -> FusedKernel:
    """Build the fused kernel with int32 accumulators."""
    return FusedKernel(config, np.dtype(np.int32))


@register_backend(
    "int16",
    description="fused scan with int16 accumulators (overflow-checked at config time)",
    score_dtype="int16",
    priority=40,
    probe=_probe_int16,
)
def make_int16(config: UngappedConfig) -> FusedKernel:
    """Build the fused kernel with int16 accumulators (bounded scores)."""
    return FusedKernel(config, np.dtype(np.int16))
