"""Step-2 kernel backend registry and the built-in backends.

Importing this package registers every built-in backend (the modules'
``register_backend`` decorators run at import time):

====== ======== =========================================================
name   priority kernel
====== ======== =========================================================
fused  50       shifted-view fused scan, int32 accumulators
int16  40       fused scan with int16 accumulators (overflow-probed)
batched 30      reference paired kernel (``ungapped_scores_paired``)
per_key 20      window-matrix gather formulation of the per-key path
scalar 10       pair-at-a-time Python loop over the hardware oracle
====== ======== =========================================================

``resolve_backend("auto", config)`` picks the highest-priority backend
whose probe and accuracy self-check pass; see
:mod:`repro.extend.backends.registry` for the selection and gating rules
and for how to register a new backend.
"""

from __future__ import annotations

from .registry import (
    BackendInfo,
    BackendUnavailable,
    KernelBackend,
    ResolvedBackend,
    backend_names,
    check_anchor_bounds,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    temporary_backend,
)

# Import for the registration side effect: each module's decorators add its
# backends to the registry.
from . import batched as _batched  # noqa: E402,F401
from . import fused as _fused  # noqa: E402,F401
from . import per_key as _per_key  # noqa: E402,F401
from . import scalar as _scalar  # noqa: E402,F401

__all__ = [
    "BackendInfo",
    "BackendUnavailable",
    "KernelBackend",
    "ResolvedBackend",
    "backend_names",
    "check_anchor_bounds",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "temporary_backend",
]
