"""``per_key`` backend — window-matrix gather kernel.

The numpy formulation the original per-key path
(:meth:`~repro.extend.ungapped.UngappedExtender.extend_entry`) builds on:
materialise both ``(pairs, window)`` residue matrices up front, then scan
their columns.  Registered so the historical mid-fidelity shape stays one
switch away and on the bench chart; the gathers make it memory-bound, which
is exactly what the ``fused`` backend removes.
"""

from __future__ import annotations

import numpy as np

from ..ungapped import ScoreSemantics, UngappedConfig
from .registry import check_anchor_bounds, register_backend


class WindowGatherKernel:
    """Scans explicit window matrices gathered from the bank buffers."""

    def __init__(self, config: UngappedConfig) -> None:
        self._config = config
        self._sub = config.matrix.scores.astype(np.int32)
        self._buf0: np.ndarray | None = None
        self._buf1: np.ndarray | None = None
        # The window width is fixed by the config, so the gather span and
        # the accumulator scratch live for the kernel's lifetime.
        self._span = np.arange(config.window, dtype=np.int64)
        self._score = np.empty(0, dtype=np.int32)
        self._best = np.empty(0, dtype=np.int32)

    def prepare(self, buf0: np.ndarray, buf1: np.ndarray) -> None:
        """Bind the bank buffers for the coming batches."""
        self._buf0 = buf0
        self._buf1 = buf1

    def _ensure(self, n: int) -> None:
        """Grow the accumulator scratch monotonically."""
        if n > self._score.shape[0]:
            self._score = np.empty(n, dtype=np.int32)
            self._best = np.empty(n, dtype=np.int32)

    def score(self, anchors0: np.ndarray, anchors1: np.ndarray) -> np.ndarray:
        """Score paired anchors via materialised window matrices."""
        cfg = self._config
        buf0, buf1 = self._buf0, self._buf1
        assert buf0 is not None and buf1 is not None, "score() before prepare()"
        if anchors0.shape != anchors1.shape:
            raise ValueError("anchor arrays must have equal shapes")
        window = cfg.window
        base0 = np.asarray(anchors0, dtype=np.int64) - cfg.n
        base1 = np.asarray(anchors1, dtype=np.int64) - cfg.n
        check_anchor_bounds(buf0, base0, buf1, base1, window)
        # The two gathers below ARE this backend: the historical per-key
        # formulation materialises both (pairs, window) matrices, and the
        # fused backend exists precisely to delete these copies — so the
        # hidden-copy findings are by design here (RC201), while the
        # accumulators still reuse monotone scratch like every kernel.
        w0 = buf0[base0[:, None] + self._span]  # noqa: RC201
        w1 = buf1[base1[:, None] + self._span]  # noqa: RC201
        n = base0.shape[0]
        sub = self._sub
        self._ensure(n)
        score = self._score[:n]
        score[:] = 0
        if cfg.semantics is ScoreSemantics.KADANE:
            best = self._best[:n]
            best[:] = 0
            for t in range(window):
                np.add(score, sub[w0[:, t], w1[:, t]], out=score)
                np.maximum(score, 0, out=score)
                np.maximum(best, score, out=best)
            return best
        for t in range(window):
            cost = sub[w0[:, t], w1[:, t]]
            np.add(score, np.maximum(cost, 0), out=score)
        return score


@register_backend(
    "per_key",
    description="window-matrix gather kernel (the per-key path's formulation)",
    score_dtype="int32",
    priority=20,
    # Both window matrices live at once: cap the batch so they stay a few MB.
    max_batch_pairs=1 << 16,
)
def make_per_key(config: UngappedConfig) -> WindowGatherKernel:
    """Build the window-gather kernel."""
    return WindowGatherKernel(config)
