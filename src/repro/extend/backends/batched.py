"""``batched`` backend — the reference paired kernel, registered.

A thin adapter around
:func:`~repro.extend.ungapped.ungapped_scores_paired`: per window column,
gather a residue from each buffer and index the 2-D substitution matrix.
This module is the **one sanctioned call site** of the raw paired kernel
outside its defining module (repro-check rule RC106) — everything else
selects a backend through :func:`~repro.extend.backends.resolve_backend`.
"""

from __future__ import annotations

import numpy as np

from ..ungapped import UngappedConfig, ungapped_scores_paired
from .registry import register_backend


class PairedKernel:
    """Delegates to the contract-checked reference paired kernel."""

    def __init__(self, config: UngappedConfig) -> None:
        self._config = config
        self._buf0: np.ndarray | None = None
        self._buf1: np.ndarray | None = None

    def prepare(self, buf0: np.ndarray, buf1: np.ndarray) -> None:
        """Bind the bank buffers for the coming batches."""
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0: np.ndarray, anchors1: np.ndarray) -> np.ndarray:
        """Score paired anchors with the reference paired kernel."""
        cfg = self._config
        buf0, buf1 = self._buf0, self._buf1
        assert buf0 is not None and buf1 is not None, "score() before prepare()"
        return ungapped_scores_paired(
            buf0,
            anchors0,
            buf1,
            anchors1,
            cfg.n,
            cfg.window,
            cfg.matrix,
            cfg.semantics,
        )


@register_backend(
    "batched",
    description="reference paired kernel (2-D matrix lookup per column)",
    score_dtype="int32",
    priority=30,
)
def make_batched(config: UngappedConfig) -> PairedKernel:
    """Build the reference paired kernel adapter."""
    return PairedKernel(config)
