"""``scalar`` backend — pair-at-a-time loop over the hardware oracle.

One Python-level call to
:func:`~repro.extend.ungapped.ungapped_score_reference` per pair: the
slowest registered backend by orders of magnitude, kept registered so the
full accuracy ladder (scalar → per_key → batched → fused) is selectable
through one switch and the bench sweep can chart it.
"""

from __future__ import annotations

import numpy as np

from ..ungapped import UngappedConfig, ungapped_score_reference
from .registry import check_anchor_bounds, register_backend


class ScalarKernel:
    """Scores each pair with the scalar PE recurrence (the oracle itself)."""

    def __init__(self, config: UngappedConfig) -> None:
        self._config = config
        self._buf0: np.ndarray | None = None
        self._buf1: np.ndarray | None = None
        self._out = np.empty(0, dtype=np.int32)

    def prepare(self, buf0: np.ndarray, buf1: np.ndarray) -> None:
        """Bind the bank buffers for the coming batches."""
        self._buf0 = buf0
        self._buf1 = buf1

    def _ensure(self, n: int) -> None:
        """Grow the output scratch monotonically (no per-batch allocation)."""
        if n > self._out.shape[0]:
            self._out = np.empty(n, dtype=np.int32)

    def score(self, anchors0: np.ndarray, anchors1: np.ndarray) -> np.ndarray:
        """Score paired anchors one at a time with the reference recurrence."""
        cfg = self._config
        buf0, buf1 = self._buf0, self._buf1
        assert buf0 is not None and buf1 is not None, "score() before prepare()"
        if anchors0.shape != anchors1.shape:
            raise ValueError("anchor arrays must have equal shapes")
        window = cfg.window
        base0 = np.asarray(anchors0, dtype=np.int64) - cfg.n
        base1 = np.asarray(anchors1, dtype=np.int64) - cfg.n
        check_anchor_bounds(buf0, base0, buf1, base1, window)
        n = base0.shape[0]
        self._ensure(n)
        out = self._out[:n]
        for i in range(base0.shape[0]):
            s0 = int(base0[i])
            s1 = int(base1[i])
            out[i] = ungapped_score_reference(
                buf0[s0 : s0 + window],
                buf1[s1 : s1 + window],
                cfg.matrix,
                cfg.semantics,
            )
        return out


@register_backend(
    "scalar",
    description="pair-at-a-time Python loop over the hardware oracle",
    score_dtype="python-int",
    priority=10,
    max_batch_pairs=1 << 12,
)
def make_scalar(config: UngappedConfig) -> ScalarKernel:
    """Build the scalar oracle kernel."""
    return ScalarKernel(config)
