"""Extension kernels: vectorised ungapped window scoring (step 2), gapped
X-drop / Smith-Waterman (step 3), and Karlin-Altschul statistics."""

from .backends import (
    BackendInfo,
    BackendUnavailable,
    backend_names,
    list_backends,
    register_backend,
    resolve_backend,
)
from .batched import (
    BatchedUngappedEngine,
    BatchTelemetry,
    EntryBlock,
    iter_pair_batches,
)
from .gapped import (
    NEG_INF,
    GappedExtension,
    GapPenalties,
    SWAlignment,
    smith_waterman,
    xdrop_gapped_extend,
)
from .stats import (
    GAPPED_PARAMS,
    KarlinParams,
    bit_score,
    effective_search_space,
    evalue,
    gapped_params,
    karlin_k,
    karlin_lambda,
    ungapped_params,
)
from .ungapped import (
    ScoreSemantics,
    UngappedConfig,
    UngappedExtender,
    UngappedHits,
    UngappedStats,
    ungapped_score_reference,
    ungapped_scores,
    ungapped_scores_paired,
    ungapped_xdrop,
)

__all__ = [
    "BackendInfo",
    "BackendUnavailable",
    "backend_names",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "BatchedUngappedEngine",
    "BatchTelemetry",
    "EntryBlock",
    "iter_pair_batches",
    "ScoreSemantics",
    "UngappedConfig",
    "UngappedExtender",
    "UngappedHits",
    "UngappedStats",
    "ungapped_score_reference",
    "ungapped_scores",
    "ungapped_scores_paired",
    "ungapped_xdrop",
    "GapPenalties",
    "GappedExtension",
    "SWAlignment",
    "smith_waterman",
    "xdrop_gapped_extend",
    "NEG_INF",
    "KarlinParams",
    "karlin_lambda",
    "karlin_k",
    "ungapped_params",
    "GAPPED_PARAMS",
    "gapped_params",
    "bit_score",
    "evalue",
    "effective_search_space",
]
