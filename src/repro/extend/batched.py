"""Step 2 — batched scoring engine.

The per-key path (:meth:`~repro.extend.ungapped.UngappedExtender.run_per_key`)
pays one Python-level kernel invocation per shared index key; with realistic
index lists (mean ``K`` of a few) that fixed cost dwarfs the handful of
window cells each key actually scores.  The hardware never pays it: the PE
array is fed a continuous stream of pairs regardless of which index entry
they came from.  This module is the software image of that stream:

* :func:`iter_pair_batches` expands ``IL0[k] × IL1[k]`` cross products from
  *many* entries into flat anchor arrays, cut into batches bounded by a
  pair budget (the analogue of filling the PE array's input FIFO);
* :class:`BatchedUngappedEngine` drives those batches through
  :func:`~repro.extend.ungapped.ungapped_scores_paired` — one running-max
  scan over the whole batch — and concatenates the survivors in exactly the
  order the per-key path would have emitted them.

Degenerate cases are handled identically to the per-key path: an empty
shared key set yields an empty, dtype-correct result; a single entry whose
cross product exceeds the budget is split along its ``offsets0`` rows; an
anchor whose window would leave the bank buffer raises ``IndexError`` (the
same error :meth:`~repro.seqs.sequence.SequenceBank.windows` raises).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from ..analysis.contracts import contracted
from ..index.kmer import TwoBankIndex
from ..obs import metrics as obsmetrics
from .ungapped import (
    BankBuffer,
    UngappedConfig,
    UngappedHits,
    UngappedStats,
    ungapped_scores_paired,
)

__all__ = ["BatchTelemetry", "BatchedUngappedEngine", "iter_pair_batches"]

#: An entry's two index lists, as produced by ``TwoBankIndex.entries()`` or
#: reconstructed from a shard payload: ``(offsets0, offsets1)``.
EntryLists = tuple[np.ndarray, np.ndarray]


@dataclass
class BatchTelemetry:
    """Batch shape record of one engine run (profile / bench input)."""

    batches: int = 0
    pair_counts: list[int] = field(default_factory=list)

    def note(self, pairs: int) -> None:
        """Record one kernel invocation of *pairs* pairs."""
        self.batches += 1
        self.pair_counts.append(int(pairs))

    @property
    def max_batch_pairs(self) -> int:
        """Largest batch scored (0 if no batch ran)."""
        return max(self.pair_counts, default=0)

    @property
    def mean_batch_pairs(self) -> float:
        """Mean batch size (0.0 if no batch ran)."""
        if not self.pair_counts:
            return 0.0
        return float(np.mean(self.pair_counts))


def iter_pair_batches(
    entries: Iterable[EntryLists], batch_pairs: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield flat ``(anchors0, anchors1)`` batches of ≤ *batch_pairs* pairs.

    Entries are consumed in order; each contributes its full ``K0 × K1``
    cross product in offsets0-major order, so the concatenation of all
    batches enumerates pairs exactly as the per-key path does.  An entry
    larger than the budget is emitted in row slices of ``offsets0`` (never
    silently as one oversized batch), each slice at most *batch_pairs*
    pairs where ``K1`` permits.
    """
    budget = max(1, int(batch_pairs))
    acc0: list[np.ndarray] = []
    acc1: list[np.ndarray] = []
    acc_pairs = 0

    def drain() -> tuple[np.ndarray, np.ndarray]:
        nonlocal acc_pairs
        batch = np.concatenate(acc0), np.concatenate(acc1)
        acc0.clear()
        acc1.clear()
        acc_pairs = 0
        return batch

    for off0, off1 in entries:
        k0 = int(off0.shape[0])
        k1 = int(off1.shape[0])
        if k0 == 0 or k1 == 0:
            continue
        if k0 * k1 > budget:
            # Giant entry: flush what's pending, then slice its rows so no
            # single kernel call exceeds the budget (one row minimum).
            if acc0:
                yield drain()
            rows = max(1, budget // k1)
            for lo in range(0, k0, rows):
                sl = off0[lo : lo + rows]
                yield np.repeat(sl, k1), np.tile(off1, sl.shape[0])
            continue
        acc0.append(np.repeat(off0, k1))
        acc1.append(np.tile(off1, k0))
        acc_pairs += k0 * k1
        if acc_pairs >= budget:
            yield drain()
    if acc0:
        yield drain()


class BatchedUngappedEngine:
    """Step-2 engine scoring many index entries per kernel invocation.

    Produces bit-identical hits, scores and emission order to the per-key
    path; :attr:`telemetry` records the batch shapes of the last run.
    """

    def __init__(self, config: UngappedConfig | None = None) -> None:
        self.config = config or UngappedConfig()
        #: Batch shapes of the most recent run.
        self.telemetry = BatchTelemetry()

    def run(self, index: TwoBankIndex) -> UngappedHits:
        """Run step 2 over every shared entry of *index*."""
        stats = UngappedStats()

        def stream() -> Iterator[EntryLists]:
            for entry in index.entries():
                stats.entries += 1
                stats.pairs += entry.pair_count
                yield entry.offsets0, entry.offsets1

        return self.run_stream(
            index.index0.bank.buffer, index.index1.bank.buffer, stream(), stats
        )

    @contracted
    def run_stream(
        self,
        buf0: BankBuffer,
        buf1: BankBuffer,
        entries: Iterable[EntryLists],
        stats: UngappedStats | None = None,
    ) -> UngappedHits:
        """Run step 2 over an explicit entry stream against raw bank buffers.

        The sharded executor calls this form in worker processes, where only
        the shared-memory buffers and the shard's entry lists exist — no
        :class:`~repro.index.kmer.TwoBankIndex` is reconstructed.  When
        *stats* is None, entry/pair counts are accumulated here; callers
        whose stream already counts them pass their own block.
        """
        cfg = self.config
        self.telemetry = BatchTelemetry()
        own_stats = stats is None
        if own_stats:
            stats = UngappedStats()

            def counted() -> Iterator[EntryLists]:
                for off0, off1 in entries:
                    stats.entries += 1
                    stats.pairs += int(off0.shape[0]) * int(off1.shape[0])
                    yield off0, off1

            source: Iterable[EntryLists] = counted()
        else:
            source = entries
        out0: list[np.ndarray] = []
        out1: list[np.ndarray] = []
        out_s: list[np.ndarray] = []
        # The registry (and histogram-family lookup) is resolved once per
        # run, not per batch — the loop body is the step-2 hot path.
        registry = obsmetrics.active()
        batch_hist = (
            registry.histogram("step2_batch_pairs") if registry is not None else None
        )
        for p0, p1 in iter_pair_batches(source, cfg.pair_chunk):
            self.telemetry.note(p0.shape[0])
            if batch_hist is not None:
                batch_hist.observe(p0.shape[0])
            scores = ungapped_scores_paired(
                buf0, p0, buf1, p1, cfg.n, cfg.window, cfg.matrix, cfg.semantics
            )
            keep = scores >= cfg.threshold
            out0.append(p0[keep])
            out1.append(p1[keep])
            out_s.append(scores[keep])
        stats.cells = stats.pairs * cfg.window
        offsets0 = np.concatenate(out0) if out0 else np.empty(0, dtype=np.int64)
        offsets1 = np.concatenate(out1) if out1 else np.empty(0, dtype=np.int64)
        scores_all = (
            np.concatenate(out_s).astype(np.int32)
            if out_s
            else np.empty(0, dtype=np.int32)
        )
        stats.hits = int(scores_all.shape[0])
        return UngappedHits(offsets0, offsets1, scores_all, stats)
