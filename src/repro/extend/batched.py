"""Step 2 — batched scoring engine.

The per-key path (:meth:`~repro.extend.ungapped.UngappedExtender.run_per_key`)
pays one Python-level kernel invocation per shared index key; with realistic
index lists (mean ``K`` of a few) that fixed cost dwarfs the handful of
window cells each key actually scores.  The hardware never pays it: the PE
array is fed a continuous stream of pairs regardless of which index entry
they came from.  This module is the software image of that stream:

* :func:`iter_pair_batches` expands ``IL0[k] × IL1[k]`` cross products from
  *many* entries into flat anchor arrays, cut into batches bounded by a
  pair budget (the analogue of filling the PE array's input FIFO).  Raw
  index lists are accumulated and expanded once per batch with a handful of
  vectorised passes; an entry larger than the budget is split lazily along
  its ``offsets0`` rows (and along ``offsets1`` when a single row exceeds
  the budget) without ever materialising its full cross product.
* :class:`EntryBlock` is the flat CSR shard payload form
  (:meth:`~repro.index.kmer.TwoBankIndex.shard_arrays`); the engine batches
  it by ``searchsorted`` over cumulative pair counts — no per-entry Python
  loop at all.
* :class:`BatchedUngappedEngine` drives the batches through a scoring
  kernel selected from the backend registry
  (:mod:`repro.extend.backends`, ``config.backend``) and concatenates the
  survivors in exactly the order the per-key path would have emitted them.
  The engine owns batching, threshold filtering and emission order, so
  every registered backend inherits the bit-identity guarantee
  structurally.

Degenerate cases are handled identically to the per-key path: an empty
shared key set yields an empty, dtype-correct result; an anchor whose
window would leave the bank buffer raises ``IndexError`` (the same error
:meth:`~repro.seqs.sequence.SequenceBank.windows` raises).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from ..analysis import allocsan
from ..analysis.contracts import contracted
from ..index.kmer import TwoBankIndex
from ..obs import metrics as obsmetrics
from .backends import resolve_backend
from .ungapped import (
    BankBuffer,
    UngappedConfig,
    UngappedHits,
    UngappedStats,
)

__all__ = [
    "BatchTelemetry",
    "BatchedUngappedEngine",
    "EntryBlock",
    "iter_pair_batches",
]

#: An entry's two index lists, as produced by ``TwoBankIndex.entries()`` or
#: reconstructed from a shard payload: ``(offsets0, offsets1)``.
EntryLists = tuple[np.ndarray, np.ndarray]


@dataclass(frozen=True)
class EntryBlock:
    """A contiguous run of entries in flat CSR form (the shard payload).

    ``counts0[i]``/``counts1[i]`` are entry *i*'s index-list lengths;
    ``offsets0``/``offsets1`` are the concatenated lists.  Exactly the
    tuple :meth:`~repro.index.kmer.TwoBankIndex.shard_arrays` returns, as
    one object the engine can batch without re-segmenting per entry.
    """

    offsets0: np.ndarray
    counts0: np.ndarray
    offsets1: np.ndarray
    counts1: np.ndarray

    @property
    def n_entries(self) -> int:
        """Number of entries in the block."""
        return int(self.counts0.shape[0])

    def pair_counts(self) -> np.ndarray:
        """K0×K1 per entry (int64)."""
        return self.counts0.astype(np.int64, copy=False) * self.counts1.astype(
            np.int64, copy=False
        )


@dataclass
class BatchTelemetry:
    """Batch shape record of one engine run (profile / bench input)."""

    batches: int = 0
    pair_counts: list[int] = field(default_factory=list)
    #: Registry name of the kernel that scored the run ("" before any run).
    backend: str = ""
    #: Batches emitted by splitting an entry whose cross product exceeded
    #: the pair budget (row slices and column slices both count).
    oversized_splits: int = 0

    def note(self, pairs: int) -> None:
        """Record one kernel invocation of *pairs* pairs."""
        self.batches += 1
        self.pair_counts.append(int(pairs))

    @property
    def max_batch_pairs(self) -> int:
        """Largest batch scored (0 if no batch ran)."""
        return max(self.pair_counts, default=0)

    @property
    def mean_batch_pairs(self) -> float:
        """Mean batch size (0.0 if no batch ran)."""
        if not self.pair_counts:
            return 0.0
        return float(np.mean(self.pair_counts))


def _expand_entries(
    flat0: np.ndarray,
    counts0: np.ndarray,
    flat1: np.ndarray,
    counts1: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Cross-product expansion of a run of entries, fully vectorised.

    Emits the exact enumeration order of the per-key path — entries in
    sequence, ``offsets0``-major within an entry — in a handful of numpy
    passes over the output length instead of a Python loop per entry.
    """
    c0 = counts0.astype(np.int64, copy=False)
    c1 = counts1.astype(np.int64, copy=False)
    # Each bank-0 offset becomes K1 consecutive pairs (its entry's K1).
    row_rep = np.repeat(c1, c0)
    anchors0 = np.repeat(flat0, row_rep)
    total = int(anchors0.shape[0])
    # Position of each pair within its bank-0 row, then within flat1.
    row_starts = np.concatenate(([0], np.cumsum(row_rep, dtype=np.int64)[:-1]))
    pos = np.arange(total, dtype=np.int64) - np.repeat(row_starts, row_rep)
    entry_starts1 = np.concatenate(([0], np.cumsum(c1, dtype=np.int64)[:-1]))
    anchors1 = flat1[np.repeat(np.repeat(entry_starts1, c0), row_rep) + pos]
    return anchors0, anchors1


def _split_oversized(
    off0: np.ndarray,
    off1: np.ndarray,
    budget: int,
    telemetry: BatchTelemetry | None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Slice one oversized entry's cross product lazily.

    Rows of ``offsets0`` are grouped so each slice stays within *budget*
    where ``K1`` permits; a single row wider than the budget is further
    cut along ``offsets1`` into column slices, so no batch ever exceeds
    the budget.  Only the slice being yielded is ever materialised.
    """
    k0 = int(off0.shape[0])
    k1 = int(off1.shape[0])
    if k1 > budget:
        for i in range(k0):
            for lo in range(0, k1, budget):
                cols = off1[lo : lo + budget]
                if telemetry is not None:
                    telemetry.oversized_splits += 1
                yield np.full(cols.shape[0], off0[i], dtype=np.int64), cols
        return
    rows = max(1, budget // k1)
    for lo in range(0, k0, rows):
        sl = off0[lo : lo + rows]
        if telemetry is not None:
            telemetry.oversized_splits += 1
        yield np.repeat(sl, k1), np.tile(off1, sl.shape[0])


def iter_pair_batches(
    entries: Iterable[EntryLists],
    batch_pairs: int,
    telemetry: BatchTelemetry | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield flat ``(anchors0, anchors1)`` batches of ≤ *batch_pairs* pairs.

    Entries are consumed in order; each contributes its full ``K0 × K1``
    cross product in offsets0-major order, so the concatenation of all
    batches enumerates pairs exactly as the per-key path does.  Pending
    entries are kept as raw index lists and expanded only when a batch
    drains; an entry larger than the budget is emitted via
    :func:`_split_oversized` (never silently as one oversized batch).
    """
    budget = max(1, int(batch_pairs))
    pend0: list[np.ndarray] = []
    pend1: list[np.ndarray] = []
    pend_c0: list[int] = []
    pend_c1: list[int] = []
    acc_pairs = 0

    def drain() -> tuple[np.ndarray, np.ndarray]:
        nonlocal acc_pairs
        batch = _expand_entries(
            np.concatenate(pend0),
            np.array(pend_c0, dtype=np.int64),
            np.concatenate(pend1),
            np.array(pend_c1, dtype=np.int64),
        )
        pend0.clear()
        pend1.clear()
        pend_c0.clear()
        pend_c1.clear()
        acc_pairs = 0
        return batch

    for off0, off1 in entries:
        k0 = int(off0.shape[0])
        k1 = int(off1.shape[0])
        if k0 == 0 or k1 == 0:
            continue
        if k0 * k1 > budget:
            # Giant entry: flush what's pending, then slice it.
            if pend0:
                yield drain()
            yield from _split_oversized(off0, off1, budget, telemetry)
            continue
        pend0.append(off0)
        pend1.append(off1)
        pend_c0.append(k0)
        pend_c1.append(k1)
        acc_pairs += k0 * k1
        if acc_pairs >= budget:
            yield drain()
    if pend0:
        yield drain()


def _iter_block_batches(
    block: EntryBlock,
    batch_pairs: int,
    telemetry: BatchTelemetry | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Batch an :class:`EntryBlock` with the same boundaries as the
    accumulate-and-drain stream path.

    Batch ends fall on the first entry where the running pair count
    reaches the budget (found by ``searchsorted`` on the cumulative pair
    counts), segmented around giant entries, which are sliced via
    :func:`_split_oversized` exactly like the stream path.
    """
    budget = max(1, int(batch_pairs))
    n = block.n_entries
    if n == 0:
        return
    c0 = block.counts0.astype(np.int64, copy=False)
    c1 = block.counts1.astype(np.int64, copy=False)
    pc = c0 * c1
    starts0 = np.concatenate(([0], np.cumsum(c0, dtype=np.int64)))
    starts1 = np.concatenate(([0], np.cumsum(c1, dtype=np.int64)))
    cum = np.cumsum(pc, dtype=np.int64)
    giants = np.flatnonzero(pc > budget)
    gi = 0
    i = 0
    while i < n:
        if gi < giants.shape[0] and int(giants[gi]) == i:
            off0 = block.offsets0[starts0[i] : starts0[i + 1]]
            off1 = block.offsets1[starts1[i] : starts1[i + 1]]
            yield from _split_oversized(off0, off1, budget, telemetry)
            i += 1
            gi += 1
            continue
        seg_end = int(giants[gi]) if gi < giants.shape[0] else n
        base = int(cum[i - 1]) if i > 0 else 0
        # First entry index at which the running count reaches the budget.
        j = int(np.searchsorted(cum[i:seg_end], base + budget, side="left"))
        end = i + j + 1 if i + j < seg_end else seg_end
        if int(cum[end - 1]) - base > 0:
            yield _expand_entries(
                block.offsets0[starts0[i] : starts0[end]],
                c0[i:end],
                block.offsets1[starts1[i] : starts1[end]],
                c1[i:end],
            )
        i = end


class BatchedUngappedEngine:
    """Step-2 engine scoring many index entries per kernel invocation.

    The inner scoring kernel is selected from the backend registry by
    ``config.backend`` (``"auto"`` picks the best available; see
    :mod:`repro.extend.backends`).  Every backend produces bit-identical
    hits, scores and emission order to the per-key path — the registry's
    accuracy gate enforces the scores, and the engine owns enumeration
    order and threshold filtering.  :attr:`telemetry` records the batch
    shapes and kernel of the last run.
    """

    def __init__(self, config: UngappedConfig | None = None) -> None:
        self.config = config or UngappedConfig()
        #: Batch shapes and backend of the most recent run.
        self.telemetry = BatchTelemetry()

    def run(self, index: TwoBankIndex) -> UngappedHits:
        """Run step 2 over every shared entry of *index*."""
        n = index.n_shared_keys
        block = EntryBlock(*index.shard_arrays(0, n))
        stats = UngappedStats(entries=n, pairs=index.total_pairs)
        return self.run_stream(
            index.index0.bank.buffer, index.index1.bank.buffer, block, stats
        )

    @contracted
    def run_stream(
        self,
        buf0: BankBuffer,
        buf1: BankBuffer,
        entries: Iterable[EntryLists] | EntryBlock,
        stats: UngappedStats | None = None,
    ) -> UngappedHits:
        """Run step 2 over an entry stream or block against raw buffers.

        The sharded executor calls this form in worker processes, where
        only the shared-memory buffers and the shard's
        :class:`EntryBlock` payload exist — no
        :class:`~repro.index.kmer.TwoBankIndex` is reconstructed.  When
        *stats* is None, entry/pair counts are accumulated here; callers
        whose counts are already known pass their own block.
        """
        cfg = self.config
        resolved = resolve_backend(cfg.backend, cfg)
        self.telemetry = BatchTelemetry(backend=resolved.info.name)
        own_stats = stats is None
        if own_stats:
            stats = UngappedStats()
        budget = cfg.pair_chunk
        if resolved.info.max_batch_pairs is not None:
            budget = min(budget, resolved.info.max_batch_pairs)
        if isinstance(entries, EntryBlock):
            if own_stats:
                stats.entries = entries.n_entries
                stats.pairs = int(entries.pair_counts().sum())
            batches: Iterator[tuple[np.ndarray, np.ndarray]] = (
                _iter_block_batches(entries, budget, self.telemetry)
            )
        else:
            source: Iterable[EntryLists] = entries
            if own_stats:

                def counted() -> Iterator[EntryLists]:
                    for off0, off1 in entries:
                        stats.entries += 1
                        stats.pairs += int(off0.shape[0]) * int(off1.shape[0])
                        yield off0, off1

                source = counted()
            batches = iter_pair_batches(source, budget, self.telemetry)
        kernel = resolved.kernel
        kernel.prepare(buf0, buf1)
        out0: list[np.ndarray] = []
        out1: list[np.ndarray] = []
        out_s: list[np.ndarray] = []
        # The registry (and histogram-family lookup) is resolved once per
        # run, not per batch — the loop body is the step-2 hot path.  The
        # backend name rides as a metric label so per-backend batch-shape
        # series stay separable after merging.
        registry = obsmetrics.active()
        batch_hist = (
            registry.histogram("step2_batch_pairs", backend=resolved.info.name)
            if registry is not None
            else None
        )
        # Allocation-sanitizer scopes (no-ops unless a recorder is active):
        # the per-kernel scope is the zero-churn claim the static RC203
        # rule proves about the code, measured about the run.
        kernel_scope = f"kernel.{resolved.info.name}.score"
        with allocsan.measure("step2.engine.run_stream"):
            for p0, p1 in batches:
                self.telemetry.note(p0.shape[0])
                if batch_hist is not None:
                    batch_hist.observe(p0.shape[0])
                with allocsan.measure(kernel_scope):
                    scores = kernel.score(p0, p1)
                # Boolean selection copies, so a backend returning a scratch
                # view stays safe past the next score() call.
                keep = scores >= cfg.threshold
                out0.append(p0[keep])
                out1.append(p1[keep])
                out_s.append(scores[keep])
            stats.cells = stats.pairs * cfg.window
            offsets0 = (
                np.concatenate(out0) if out0 else np.empty(0, dtype=np.int64)
            )
            offsets1 = (
                np.concatenate(out1) if out1 else np.empty(0, dtype=np.int64)
            )
            scores_all = (
                np.concatenate(out_s).astype(np.int32)
                if out_s
                else np.empty(0, dtype=np.int32)
            )
        stats.hits = int(scores_all.shape[0])
        return UngappedHits(offsets0, offsets1, scores_all, stats)
