"""Step 3 — gapped extension.

Pairs surviving the ungapped filter are re-examined with gaps allowed.  Two
engines are provided:

* :func:`xdrop_gapped_extend` — BLAST's gapped X-drop extension with affine
  gap penalties, run left and right from the seed anchor.  Dynamic
  programming rows keep an *active window* of columns; cells falling more
  than ``x_drop`` below the running best are killed, so cost tracks the
  alignment's true extent rather than the sequence lengths.  This is the
  engine the host runs in the accelerated pipeline.
* :func:`smith_waterman` — full (optionally banded) affine-gap local
  alignment with traceback, used as the ground-truth oracle in tests and
  for the CLC-style "sensitive" comparator of Table 5.

Both score with the shared substitution matrices; gap sentinels in bank
buffers carry :data:`~repro.seqs.matrices.GAP_SCORE` so extensions cannot
cross sequence boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..seqs.matrices import BLOSUM62, SubstitutionMatrix

__all__ = [
    "GapPenalties",
    "GappedExtension",
    "xdrop_gapped_extend",
    "smith_waterman",
    "SWAlignment",
    "NEG_INF",
]

#: Effectively -infinity for int64 DP without overflow on addition.
NEG_INF = -(1 << 40)


@dataclass(frozen=True)
class GapPenalties:
    """Affine gap penalties (positive magnitudes, BLAST convention 11/1).

    A gap of length ``g`` costs ``open + g * extend``.
    """

    open: int = 11
    extend: int = 1

    def __post_init__(self) -> None:
        if self.open < 0 or self.extend < 0:
            raise ValueError("gap penalties are positive magnitudes")


def _xdrop_half(
    a: np.ndarray,
    b: np.ndarray,
    sub: np.ndarray,
    gaps: GapPenalties,
    x_drop: int,
) -> tuple[int, int, int, int]:
    """One direction of gapped X-drop DP.

    Aligns prefixes of *a* (rows) against prefixes of *b* (columns),
    anchored at (0, 0) with score 0; returns ``(best, best_i, best_j, cells)`` —
    the maximum extension score and how many residues of each sequence it
    consumed.  Diagonal and vertical moves are vectorised per row; the
    horizontal-gap state needs a left-to-right scan, done in Python over
    the (pruned) active window only.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    m, n = len(a), len(b)
    if m == 0 or n == 0:
        return 0, 0, 0, 0
    go, ge = gaps.open + gaps.extend, gaps.extend
    best = 0
    best_i = best_j = 0
    cells = 0
    H_prev = np.full(n + 1, NEG_INF, dtype=np.int64)
    F_prev = np.full(n + 1, NEG_INF, dtype=np.int64)
    H_prev[0] = 0
    H_prev[1:] = -(go + ge * np.arange(n, dtype=np.int64))
    H_prev[1:][H_prev[1:] < -x_drop] = NEG_INF
    alive = np.flatnonzero(H_prev > NEG_INF)
    lo, hi = int(alive[0]), int(alive[-1])
    for i in range(1, m + 1):
        H = np.full(n + 1, NEG_INF, dtype=np.int64)
        F = np.full(n + 1, NEG_INF, dtype=np.int64)
        hi_new = min(hi + 1, n)
        if lo == 0:
            h0 = -(go + ge * (i - 1))
            if h0 >= best - x_drop:
                H[0] = h0
        j_first = max(lo, 1)
        if j_first > hi_new:
            break
        js = np.arange(j_first, hi_new + 1, dtype=np.int64)
        cells += js.shape[0]
        F[js] = np.maximum(H_prev[js] - go, F_prev[js] - ge)
        diag = H_prev[js - 1] + sub[int(a[i - 1]), b[js - 1]]
        cand = np.maximum(diag, F[js])
        cutoff = best - x_drop
        e_run = NEG_INF
        h_left = H[js[0] - 1]
        row_best = NEG_INF
        row_best_j = -1
        for idx in range(js.shape[0]):
            e_run = max(e_run - ge, h_left - go)
            h = cand[idx]
            if e_run > h:
                h = e_run
            if h < cutoff:
                h = NEG_INF
            H[js[idx]] = h
            h_left = h
            if h > row_best:
                row_best = h
                row_best_j = int(js[idx])
        if row_best > best:
            best = int(row_best)
            best_i = i
            best_j = row_best_j
        window = H[lo : hi_new + 1]
        alive_rel = np.flatnonzero(window > NEG_INF)
        if alive_rel.size == 0:
            break
        lo, hi = lo + int(alive_rel[0]), lo + int(alive_rel[-1])
        H_prev, F_prev = H, F
    return best, best_i, best_j, cells


@dataclass(frozen=True)
class GappedExtension:
    """Result of a gapped X-drop extension (endpoints, no traceback)."""

    score: int
    start0: int
    end0: int
    start1: int
    end1: int
    #: Number of DP cells evaluated (cost-model input).
    cells: int = 0

    @property
    def length0(self) -> int:
        """Extent on sequence 0."""
        return self.end0 - self.start0

    @property
    def length1(self) -> int:
        """Extent on sequence 1."""
        return self.end1 - self.start1


def xdrop_gapped_extend(
    buf0: np.ndarray,
    anchor0: int,
    buf1: np.ndarray,
    anchor1: int,
    matrix: SubstitutionMatrix = BLOSUM62,
    gaps: GapPenalties = GapPenalties(),
    x_drop: int = 38,
    max_extent: int = 4096,
) -> GappedExtension:
    """Gapped X-drop extension around an anchor pair.

    Extends right from ``(anchor0, anchor1)`` and left from
    ``(anchor0 - 1, anchor1 - 1)``; the total score is the sum of the two
    half extensions (the anchor itself is scored by the right half's first
    diagonal move).  ``max_extent`` caps the DP extent per direction as a
    safety bound; BLAST-scale alignments sit far below it.
    """
    sub = matrix.scores.astype(np.int64)
    r0 = buf0[anchor0 : anchor0 + max_extent]
    r1 = buf1[anchor1 : anchor1 + max_extent]
    sr, er0, er1, cr = _xdrop_half(r0, r1, sub, gaps, x_drop)
    l0 = np.ascontiguousarray(buf0[max(0, anchor0 - max_extent) : anchor0][::-1])
    l1 = np.ascontiguousarray(buf1[max(0, anchor1 - max_extent) : anchor1][::-1])
    sl, el0, el1, cl = _xdrop_half(l0, l1, sub, gaps, x_drop)
    return GappedExtension(
        score=sr + sl,
        start0=anchor0 - el0,
        end0=anchor0 + er0,
        start1=anchor1 - el1,
        end1=anchor1 + er1,
        cells=cr + cl,
    )


@dataclass(frozen=True)
class SWAlignment:
    """A local alignment with traceback strings."""

    score: int
    start0: int
    end0: int
    start1: int
    end1: int
    aligned0: str
    aligned1: str

    def identity(self) -> float:
        """Fraction of aligned (non-gap) columns with identical residues."""
        pairs = [
            (x, y) for x, y in zip(self.aligned0, self.aligned1, strict=True) if x != "-" and y != "-"
        ]
        if not pairs:
            return 0.0
        return sum(1 for x, y in pairs if x == y) / len(pairs)

    @property
    def n_gaps(self) -> int:
        """Total gapped columns."""
        return self.aligned0.count("-") + self.aligned1.count("-")


def smith_waterman(
    a: np.ndarray,
    b: np.ndarray,
    matrix: SubstitutionMatrix = BLOSUM62,
    gaps: GapPenalties = GapPenalties(),
    band: int | None = None,
) -> SWAlignment:
    """Full affine-gap Smith–Waterman with traceback.

    ``band`` restricts the DP to ``|i - j| ≤ band`` when given.  The matrix
    is kept whole (O(m·n) memory) because this function's role is oracle
    and report rendering, not bulk search.
    """
    from ..seqs.alphabet import AMINO

    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    m, n = len(a), len(b)
    go, ge = gaps.open + gaps.extend, gaps.extend
    sub = matrix.scores.astype(np.int64)
    H = np.zeros((m + 1, n + 1), dtype=np.int64)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    for i in range(1, m + 1):
        j_lo, j_hi = 1, n
        if band is not None:
            j_lo = max(1, i - band)
            j_hi = min(n, i + band)
        if j_lo > j_hi:
            continue
        js = np.arange(j_lo, j_hi + 1, dtype=np.int64)
        F[i, js] = np.maximum(H[i - 1, js] - go, F[i - 1, js] - ge)
        diag = H[i - 1, js - 1] + sub[int(a[i - 1]), b[js - 1]]
        base = np.maximum.reduce([diag, F[i, js], np.zeros_like(diag)])
        e_run = NEG_INF
        h_left = int(H[i, j_lo - 1])
        for idx in range(js.shape[0]):
            j = int(js[idx])
            e_run = max(e_run - ge, h_left - go)
            E[i, j] = e_run
            h = int(base[idx])
            if e_run > h:
                h = e_run
            H[i, j] = h
            h_left = h
    end = np.unravel_index(int(np.argmax(H)), H.shape)
    score = int(H[end])
    i, j = int(end[0]), int(end[1])
    out0: list[str] = []
    out1: list[str] = []
    letters = AMINO.letters
    while i > 0 and j > 0 and H[i, j] > 0:
        h = int(H[i, j])
        if h == H[i - 1, j - 1] + sub[int(a[i - 1]), int(b[j - 1])]:
            out0.append(letters[int(a[i - 1])])
            out1.append(letters[int(b[j - 1])])
            i -= 1
            j -= 1
        elif h == E[i, j]:
            # Gap in `a`: consume columns leftward until the gap-open cell.
            while True:
                out0.append("-")
                out1.append(letters[int(b[j - 1])])
                j -= 1
                if int(E[i, j + 1]) == int(H[i, j]) - go or j == 0:
                    break
        elif h == F[i, j]:
            # Gap in `b`: consume rows upward until the gap-open cell.
            while True:
                out0.append(letters[int(a[i - 1])])
                out1.append("-")
                i -= 1
                if int(F[i + 1, j]) == int(H[i, j]) - go or i == 0:
                    break
        else:  # pragma: no cover - defensive
            break
    return SWAlignment(
        score=score,
        start0=i,
        end0=int(end[0]),
        start1=j,
        end1=int(end[1]),
        aligned0="".join(reversed(out0)),
        aligned1="".join(reversed(out1)),
    )
