"""Step 2 — ungapped extension.

For every seed pair the paper scores a fixed window of ``W + 2N`` residues
(the seed plus ``N`` flanking residues on each side) with a running maximum
of substitution costs, and forwards the pair to gapped extension when the
maximum exceeds a threshold.  This file contains:

* :func:`ungapped_score_reference` — the scalar loop exactly as the PE
  hardware computes it (one residue pair per clock cycle).  This is the
  oracle the cycle-accurate simulator and the vectorised kernel are both
  tested against.
* :func:`ungapped_scores` — the vectorised kernel: all ``K0 × K1`` pairs of
  one index entry scored at once; the scan over the window (length ~28) is
  the only Python-level loop, everything across pairs is NumPy.
* :class:`UngappedExtender` — drives the kernel over a
  :class:`~repro.index.kmer.TwoBankIndex`, chunking entries to bound
  memory, and accumulates the operation counts the cost models consume.
* :func:`ungapped_xdrop` — BLAST's unbounded diagonal X-drop extension,
  used by the NCBI-style baseline (it extends until the score falls X below
  the running best instead of using a fixed window).

Score semantics
---------------
The paper's pseudocode reads ``score = max(score, score + Sub[..])`` which
collapses to "sum of positive costs" and ignores residue order; the prose
and the standard algorithm both point at the local running score
``score = max(0, score + Sub[..])``.  Both are implemented behind
:class:`ScoreSemantics`; ``KADANE`` is the default and
``bench_ablation_semantics`` quantifies the difference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Annotated

import numpy as np

from ..analysis.contracts import ArraySpec, contracted
from ..index.kmer import SeedEntry, TwoBankIndex
from ..seqs.matrices import BLOSUM62, SubstitutionMatrix
from ..seqs.sequence import SequenceBank

__all__ = [
    "ScoreSemantics",
    "BankBuffer",
    "AnchorArray",
    "ScoreArray",
    "ungapped_score_reference",
    "ungapped_scores",
    "ungapped_scores_paired",
    "UngappedConfig",
    "UngappedHits",
    "UngappedStats",
    "UngappedExtender",
    "ungapped_xdrop",
]

#: 1-D uint8 bank buffer: residue codes with pad/gap sentinels.  Checked at
#: runtime under ``REPRO_CONTRACTS=1`` (see :mod:`repro.analysis.contracts`).
BankBuffer = Annotated[np.ndarray, ArraySpec(dtype=np.uint8, ndim=1)]
#: Flat seed-anchor offsets; the two vectors of one kernel call must agree
#: on the named ``pairs`` dimension.
AnchorArray = Annotated[np.ndarray, ArraySpec(dtype=np.int64, shape=("pairs",))]
#: Per-pair window scores, parallel to the anchor vectors.
ScoreArray = Annotated[np.ndarray, ArraySpec(dtype=np.int32, shape=("pairs",))]
#: ``(K, L)`` uint8 window matrices; the two sides of one outer-product
#: call must agree on the named window ``width`` dimension.
WindowMatrix0 = Annotated[np.ndarray, ArraySpec(dtype=np.uint8, shape=("k0", "width"))]
WindowMatrix1 = Annotated[np.ndarray, ArraySpec(dtype=np.uint8, shape=("k1", "width"))]


class ScoreSemantics(enum.Enum):
    """Window-scoring recurrence variant."""

    #: ``score = max(0, score + sub)`` — standard local running score.
    KADANE = "kadane"
    #: ``score = max(score, score + sub)`` — the paper's pseudocode as
    #: printed (sum of positive costs).
    PAPER_LITERAL = "paper-literal"


def ungapped_score_reference(
    s0: np.ndarray,
    s1: np.ndarray,
    matrix: SubstitutionMatrix = BLOSUM62,
    semantics: ScoreSemantics = ScoreSemantics.KADANE,
) -> int:
    """Score one window pair with the PE's sequential recurrence.

    ``s0`` and ``s1`` are equal-length code vectors (the ``W + 2N`` window).
    This mirrors the hardware datapath one cycle at a time and is kept
    deliberately scalar.
    """
    if len(s0) != len(s1):
        raise ValueError("windows must have equal length")
    score = 0
    best = 0
    for a, b in zip(s0, s1, strict=True):
        cost = int(matrix.scores[int(a), int(b)])
        if semantics is ScoreSemantics.KADANE:
            score = max(0, score + cost)
        else:
            score = max(score, score + cost)
        best = max(best, score)
    return best


@contracted
def ungapped_scores(
    windows0: WindowMatrix0,
    windows1: WindowMatrix1,
    matrix: SubstitutionMatrix = BLOSUM62,
    semantics: ScoreSemantics = ScoreSemantics.KADANE,
) -> Annotated[np.ndarray, ArraySpec(dtype=np.int32, shape=("k0", "k1"))]:
    """Score the full cross product of two window sets.

    Parameters
    ----------
    windows0:
        ``(K0, L)`` uint8 windows from bank 0.
    windows1:
        ``(K1, L)`` uint8 windows from bank 1.

    Returns
    -------
    ``(K0, K1)`` int32 array of maximum window scores.
    """
    w0 = np.asarray(windows0, dtype=np.uint8)
    w1 = np.asarray(windows1, dtype=np.uint8)
    if w0.ndim != 2 or w1.ndim != 2 or w0.shape[1] != w1.shape[1]:
        raise ValueError("windows must be 2-D with equal widths")
    k0, L = w0.shape
    k1 = w1.shape[0]
    sub = matrix.scores.astype(np.int32)
    score = np.zeros((k0, k1), dtype=np.int32)
    best = np.zeros((k0, k1), dtype=np.int32)
    if semantics is ScoreSemantics.KADANE:
        for t in range(L):
            np.add(score, sub[w0[:, t][:, None], w1[:, t][None, :]], out=score)
            np.maximum(score, 0, out=score)
            np.maximum(best, score, out=best)
    else:
        for t in range(L):
            cost = sub[w0[:, t][:, None], w1[:, t][None, :]]
            np.add(score, np.maximum(cost, 0), out=score)
        best = score
    return best


@contracted
def ungapped_scores_paired(
    buf0: BankBuffer,
    anchors0: AnchorArray,
    buf1: BankBuffer,
    anchors1: AnchorArray,
    flank: int,
    window: int,
    matrix: SubstitutionMatrix = BLOSUM62,
    semantics: ScoreSemantics = ScoreSemantics.KADANE,
) -> ScoreArray:
    """Score *paired* windows: one score per (anchors0[i], anchors1[i]).

    Unlike :func:`ungapped_scores` (a ``K0 × K1`` outer product for one
    index entry), this kernel takes pre-expanded pair lists spanning many
    entries at once, which removes the per-entry Python overhead that
    dominates when index lists are short (the common case: mean K0 of a
    few).  Residues are gathered straight from the bank buffers column by
    column — no window matrices are materialised.
    """
    a0 = np.asarray(anchors0, dtype=np.int64) - flank
    a1 = np.asarray(anchors1, dtype=np.int64) - flank
    if a0.shape != a1.shape:
        raise ValueError("anchor arrays must have equal shapes")
    # Same contract as SequenceBank.windows: an out-of-buffer window is a
    # caller error, never a silent wrap-around gather.
    if a0.size:
        if int(a0.min()) < 0 or int(a0.max()) + window > buf0.shape[0]:
            raise IndexError("window exceeds bank buffer; increase pad")
        if int(a1.min()) < 0 or int(a1.max()) + window > buf1.shape[0]:
            raise IndexError("window exceeds bank buffer; increase pad")
    # Reference-kernel exemption: this is the mid-fidelity oracle the
    # backends are gated against, kept deliberately allocation-simple for
    # auditability.  The fused backend is the RC201/RC203-clean production
    # formulation of exactly this loop; suppressing here keeps the oracle
    # readable while the rules still police every registered kernel.
    sub = matrix.scores.astype(np.int32)  # noqa: RC201
    score = np.zeros(a0.shape[0], dtype=np.int32)  # noqa: RC203
    best = np.zeros(a0.shape[0], dtype=np.int32)  # noqa: RC203
    if semantics is ScoreSemantics.KADANE:
        for t in range(window):
            np.add(score, sub[buf0[a0 + t], buf1[a1 + t]], out=score)  # noqa: RC201
            np.maximum(score, 0, out=score)
            np.maximum(best, score, out=best)
    else:
        for t in range(window):
            cost = sub[buf0[a0 + t], buf1[a1 + t]]  # noqa: RC201
            np.add(score, np.maximum(cost, 0), out=score)
        best = score
    return best


@dataclass(frozen=True)
class UngappedConfig:
    """Step-2 parameters.

    Attributes
    ----------
    w:
        Seed span in residues (the paper's ``W``; window = ``w + 2n``).
    n:
        Flank width on each side of the seed (the paper's ``N``).
    threshold:
        Minimum window score for a pair to survive to gapped extension.
    matrix:
        Substitution matrix.
    semantics:
        Recurrence variant; see :class:`ScoreSemantics`.
    pair_chunk:
        Upper bound on ``K0 × K1`` scored per kernel call (memory control).
    backend:
        Scoring-kernel registry name, or ``"auto"`` to pick the best
        available (see :mod:`repro.extend.backends`).  Every backend is
        bit-identical by construction, so this is purely a speed knob.
    """

    w: int = 4
    n: int = 12
    threshold: int = 45
    matrix: SubstitutionMatrix = BLOSUM62
    semantics: ScoreSemantics = ScoreSemantics.KADANE
    pair_chunk: int = 1 << 20
    backend: str = "auto"

    @property
    def window(self) -> int:
        """Window width ``W + 2N``."""
        return self.w + 2 * self.n


@dataclass
class UngappedStats:
    """Operation counts accumulated by step 2 (cost-model inputs)."""

    entries: int = 0
    pairs: int = 0
    cells: int = 0  # pairs × window width — one hardware clock cycle each
    hits: int = 0

    def merge(self, other: UngappedStats) -> None:
        """Accumulate another stats block in place."""
        self.entries += other.entries
        self.pairs += other.pairs
        self.cells += other.cells
        self.hits += other.hits


@dataclass(frozen=True)
class UngappedHits:
    """Pairs surviving step 2: parallel offset/score arrays.

    ``offsets0[i]`` / ``offsets1[i]`` are seed-anchor global offsets in the
    two banks, ``scores[i]`` the window score.
    """

    offsets0: np.ndarray
    offsets1: np.ndarray
    scores: np.ndarray
    stats: UngappedStats = field(default_factory=UngappedStats)

    def __len__(self) -> int:
        return int(self.offsets0.shape[0])

    @staticmethod
    def concatenate(parts: list[UngappedHits]) -> UngappedHits:
        """Merge chunked results, summing stats."""
        stats = UngappedStats()
        for p in parts:
            stats.merge(p.stats)
        if not parts:
            e = np.empty(0, dtype=np.int64)
            return UngappedHits(e, e, np.empty(0, dtype=np.int32), stats)
        return UngappedHits(
            np.concatenate([p.offsets0 for p in parts]),
            np.concatenate([p.offsets1 for p in parts]),
            np.concatenate([p.scores for p in parts]),
            stats,
        )


class UngappedExtender:
    """Runs step 2 over a two-bank index with the vectorised kernel."""

    def __init__(self, config: UngappedConfig | None = None) -> None:
        self.config = config or UngappedConfig()

    @contracted
    def windows_for(
        self,
        bank: SequenceBank,
        offsets: Annotated[np.ndarray, ArraySpec(dtype=np.int64, shape=("k",))],
    ) -> Annotated[np.ndarray, ArraySpec(dtype=np.uint8, shape=("k", None))]:
        """Extract scoring windows centred on seed anchors."""
        cfg = self.config
        return bank.windows(offsets, left=cfg.n, width=cfg.window)

    def extend_entry(
        self, bank0: SequenceBank, bank1: SequenceBank, entry: SeedEntry
    ) -> UngappedHits:
        """Score every pair of one index entry; keep pairs above threshold."""
        cfg = self.config
        off0, off1 = entry.offsets0, entry.offsets1
        k0, k1 = off0.shape[0], off1.shape[0]
        stats = UngappedStats(entries=1, pairs=k0 * k1, cells=k0 * k1 * cfg.window)
        w1 = self.windows_for(bank1, off1)
        rows_per_chunk = max(1, cfg.pair_chunk // max(1, k1))
        parts0: list[np.ndarray] = []
        parts1: list[np.ndarray] = []
        parts_s: list[np.ndarray] = []
        for lo in range(0, k0, rows_per_chunk):
            hi = min(lo + rows_per_chunk, k0)
            w0 = self.windows_for(bank0, off0[lo:hi])
            scores = ungapped_scores(w0, w1, cfg.matrix, cfg.semantics)
            ii, jj = np.nonzero(scores >= cfg.threshold)
            parts0.append(off0[lo:hi][ii])
            parts1.append(off1[jj])
            parts_s.append(scores[ii, jj])
        offsets0 = np.concatenate(parts0) if parts0 else np.empty(0, dtype=np.int64)
        offsets1 = np.concatenate(parts1) if parts1 else np.empty(0, dtype=np.int64)
        scores = np.concatenate(parts_s) if parts_s else np.empty(0, dtype=np.int32)
        stats.hits = int(scores.shape[0])
        return UngappedHits(offsets0, offsets1, scores.astype(np.int32), stats)

    def run_per_key(self, index: TwoBankIndex) -> UngappedHits:
        """Per-key reference path: score one index entry at a time.

        Each shared key costs one :func:`ungapped_scores` call on its
        ``K0 × K1`` cross product.  Kept as the mid-fidelity oracle between
        :func:`ungapped_score_reference` and the batched engine (and as the
        baseline the scaling bench measures the batched speedup against);
        hit order is identical to the batched path — entries in ascending
        key order, pairs offsets0-major within an entry.
        """
        parts = [self.extend_entry(index.index0.bank, index.index1.bank, e)
                 for e in index.entries()]
        return UngappedHits.concatenate(parts)

    def run(self, index: TwoBankIndex) -> UngappedHits:
        """Run step 2 over every shared index entry.

        Pairs from all entries are expanded into flat anchor arrays and
        scored in large batches with :func:`ungapped_scores_paired` by the
        batched engine (:class:`repro.extend.batched.BatchedUngappedEngine`);
        this is algebraically identical to per-entry scoring but ~10-20×
        faster on realistic workloads whose index lists are short.
        """
        from .batched import BatchedUngappedEngine

        return BatchedUngappedEngine(self.config).run(index)


def ungapped_xdrop(
    buf0: np.ndarray,
    pos0: int,
    buf1: np.ndarray,
    pos1: int,
    length: int,
    matrix: SubstitutionMatrix = BLOSUM62,
    x_drop: int = 16,
) -> tuple[int, int, int]:
    """BLAST-style unbounded ungapped X-drop extension along a diagonal.

    Extends a hit of *length* residues anchored at (*pos0*, *pos1*) left and
    right until the running score drops *x_drop* below the best seen.

    Returns ``(score, start_delta, end_delta)`` where the extended segment
    covers ``[pos0 - start_delta, pos0 + length + end_delta)`` on sequence 0
    (same deltas on sequence 1).  Gap sentinels in the buffers terminate the
    extension naturally via their large negative scores.
    """
    sub = matrix.scores
    score = 0
    for k in range(length):
        score += int(sub[int(buf0[pos0 + k]), int(buf1[pos1 + k])])
    best = score
    # Right extension.
    end_delta = 0
    run = score
    k = 0
    limit = min(len(buf0) - (pos0 + length), len(buf1) - (pos1 + length))
    while k < limit:
        run += int(sub[int(buf0[pos0 + length + k]), int(buf1[pos1 + length + k])])
        k += 1
        if run > best:
            best = run
            end_delta = k
        elif best - run > x_drop:
            break
    # Left extension (from the best right-extended score).
    start_delta = 0
    run = best
    k = 0
    limit = min(pos0, pos1)
    while k < limit:
        run += int(sub[int(buf0[pos0 - 1 - k]), int(buf1[pos1 - 1 - k])])
        k += 1
        if run > best:
            best = run
            start_delta = k
        elif best - run > x_drop:
            break
    return best, start_delta, end_delta
