"""Index diagnostics and accelerator capacity planning.

The whole performance story of the paper hangs on index-list statistics:
``K0`` distributions set PE-array occupancy, ``K0·K1`` products set step-2
work, and skew sets partition balance.  This module computes those
diagnostics for a built index — used by the CLI (``repro-psc index info``),
the benches, and capacity-planning code that wants to answer "how many PEs
does this workload keep busy?" before touching a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kmer import BankIndex, TwoBankIndex

__all__ = ["IndexStats", "index_stats", "occupancy_curve", "JointStats", "joint_stats"]


@dataclass(frozen=True)
class IndexStats:
    """List-length distribution summary of one bank index."""

    n_anchors: int
    n_keys: int
    key_space: int
    mean_length: float
    max_length: int
    p50_length: float
    p99_length: float
    load_factor: float  # fraction of the key space in use
    gini: float  # inequality of anchor mass across keys (0 = uniform)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return (
            f"anchors={self.n_anchors:,} keys={self.n_keys:,}"
            f"/{self.key_space:,} (load {self.load_factor:.1%})\n"
            f"list length: mean={self.mean_length:.2f} p50={self.p50_length:.0f} "
            f"p99={self.p99_length:.0f} max={self.max_length}\n"
            f"anchor-mass gini={self.gini:.3f}"
        )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample."""
    v = np.sort(values.astype(np.float64))
    n = v.shape[0]
    if n == 0 or v.sum() == 0:
        return 0.0
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def index_stats(index: BankIndex) -> IndexStats:
    """Compute the distribution summary of one bank index."""
    lengths = index.list_lengths().astype(np.float64)
    if lengths.size == 0:
        return IndexStats(0, 0, index.model.key_space, 0.0, 0, 0.0, 0.0, 0.0, 0.0)
    return IndexStats(
        n_anchors=index.n_anchors,
        n_keys=int(lengths.shape[0]),
        key_space=index.model.key_space,
        mean_length=float(lengths.mean()),
        max_length=int(lengths.max()),
        p50_length=float(np.percentile(lengths, 50)),
        p99_length=float(np.percentile(lengths, 99)),
        load_factor=lengths.shape[0] / index.model.key_space,
        gini=_gini(lengths),
    )


@dataclass(frozen=True)
class JointStats:
    """Step-2 workload summary of a joint (two-bank) index."""

    shared_keys: int
    total_pairs: int
    mean_k0: float
    mean_k1: float
    #: Fraction of pairs concentrated in the heaviest 1 % of entries.
    top1pct_pair_share: float

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"shared keys={self.shared_keys:,} pairs={self.total_pairs:,} "
            f"mean K0={self.mean_k0:.1f} mean K1={self.mean_k1:.1f} "
            f"top-1% share={self.top1pct_pair_share:.1%}"
        )


def joint_stats(index: TwoBankIndex) -> JointStats:
    """Compute the step-2 workload summary of a joint index."""
    k0s, k1s = index.list_length_pairs()
    if k0s.size == 0:
        return JointStats(0, 0, 0.0, 0.0, 0.0)
    pairs = (k0s * k1s).astype(np.float64)
    order = np.sort(pairs)[::-1]
    top = max(1, int(np.ceil(0.01 * order.shape[0])))
    return JointStats(
        shared_keys=int(k0s.shape[0]),
        total_pairs=int(pairs.sum()),
        mean_k0=float(k0s.mean()),
        mean_k1=float(k1s.mean()),
        top1pct_pair_share=float(order[:top].sum() / pairs.sum()),
    )


def occupancy_curve(
    index: TwoBankIndex,
    pe_counts: tuple[int, ...] = (32, 64, 128, 192, 256),
    window: int = 28,
) -> list[tuple[int, float, float]]:
    """(PEs, utilisation, modelled ms at 100 MHz) per array size.

    The capacity-planning question in one call: where does *this*
    workload stop profiting from a bigger array?
    """
    # Imported lazily: repro.psc depends on repro.index at import time.
    from ..psc.schedule import PscArrayConfig, schedule_cycles

    k0s, k1s = index.list_length_pairs()
    out = []
    for pes in pe_counts:
        cfg = PscArrayConfig(n_pes=pes, window=window)
        b = schedule_cycles(k0s, k1s, cfg)
        out.append((pes, b.utilization, cfg.seconds(b.total_cycles) * 1e3))
    return out
