"""Subset seeds for protein indexing.

The paper does not use BLAST's two-hit 3-mer heuristic; it indexes with
"only one seed of 4 amino acids, but based on the subset seed approach"
(Peterlongo, Noé, Lavenier et al., PBC-07).  A *subset seed* assigns each
seed position a partition of the amino-acid alphabet into groups; two
windows share a key when, at every position, both residues fall in the same
group.  Coarser positions trade selectivity for sensitivity while shrinking
the key space — which is precisely why the approach "is very efficient for
indexing the protein sequences".

This module provides:

* :class:`Partition` — a named grouping of the 20 canonical residues
  (exact, Murphy-10, Murphy-8, Murphy-4 reduced alphabets are bundled);
* :class:`SubsetSeedModel` — a seed pattern such as ``"#11#"`` (exact,
  Murphy-10, Murphy-10, exact), implementing the
  :class:`repro.index.kmer.SeedModel` protocol so it plugs directly into
  :class:`~repro.index.kmer.BankIndex`;
* :data:`DEFAULT_SUBSET_SEED` — the weight-4 pattern used throughout the
  reproduction as the stand-in for the paper's (unpublished) seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Partition",
    "EXACT",
    "MURPHY10",
    "MURPHY8",
    "MURPHY4",
    "SubsetSeedModel",
    "DEFAULT_SUBSET_SEED",
    "PARTITIONS",
]


@dataclass(frozen=True)
class Partition:
    """A partition of the canonical amino acids into match groups.

    Parameters
    ----------
    symbol:
        One-character pattern symbol used in seed strings.
    groups:
        Iterable of strings; each string lists the residues of one group.
        Residues absent from every group are *invalid* at this position
        (ambiguity codes always are).
    """

    symbol: str
    groups: tuple[str, ...]

    def digit_map(self) -> np.ndarray:
        """25-entry residue-code → group-id map (-1 = invalid)."""
        from ..seqs.alphabet import AMINO

        m = np.full(25, -1, dtype=np.int32)
        for gid, letters in enumerate(self.groups):
            for ch in letters:
                m[int(AMINO.encode(ch)[0])] = gid
        return m

    @property
    def n_groups(self) -> int:
        """Number of groups (radix contributed by this position)."""
        return len(self.groups)


#: Exact-match position: 20 singleton groups.
EXACT = Partition("#", tuple("ARNDCQEGHILKMFPSTWYV"))

#: Murphy et al. (2000) 10-letter reduced alphabet.
MURPHY10 = Partition(
    "1", ("LVIM", "C", "A", "G", "ST", "P", "FYW", "EDNQ", "KR", "H")
)

#: Murphy 8-letter reduced alphabet.
MURPHY8 = Partition("8", ("LVIMC", "AG", "ST", "P", "FYW", "EDNQ", "KR", "H"))

#: Murphy 4-letter reduced alphabet.
MURPHY4 = Partition("4", ("LVIMC", "AGSTP", "FYW", "EDNQKRH"))

PARTITIONS = {p.symbol: p for p in (EXACT, MURPHY10, MURPHY8, MURPHY4)}


class SubsetSeedModel:
    """A subset seed: one :class:`Partition` per seed position.

    Implements the :class:`repro.index.kmer.SeedModel` protocol (``span``,
    ``key_space``, ``position_maps``, ``radices``) so indexing code is
    agnostic to the seed family.
    """

    def __init__(self, partitions: list[Partition], name: str | None = None) -> None:
        if not partitions:
            raise ValueError("a subset seed needs at least one position")
        self._partitions = tuple(partitions)
        self.name = name or "".join(p.symbol for p in partitions)
        self._maps = np.stack([p.digit_map() for p in partitions])
        sizes = np.array([p.n_groups for p in partitions], dtype=np.int64)
        # Mixed-radix weights: last position varies fastest.
        weights = np.ones(len(partitions), dtype=np.int64)
        for i in range(len(partitions) - 2, -1, -1):
            weights[i] = weights[i + 1] * sizes[i + 1]
        self._weights = weights
        self._key_space = int(weights[0] * sizes[0])

    @classmethod
    def from_pattern(cls, pattern: str) -> SubsetSeedModel:
        """Build from a pattern string, e.g. ``"#11#"``."""
        try:
            parts = [PARTITIONS[ch] for ch in pattern]
        except KeyError as exc:
            raise KeyError(
                f"unknown seed symbol {exc.args[0]!r}; known: {sorted(PARTITIONS)}"
            ) from None
        return cls(parts, name=pattern)

    @property
    def partitions(self) -> tuple[Partition, ...]:
        """Per-position partitions."""
        return self._partitions

    @property
    def span(self) -> int:
        return len(self._partitions)

    @property
    def key_space(self) -> int:
        return self._key_space

    def position_maps(self) -> np.ndarray:
        return self._maps

    def radices(self) -> np.ndarray:
        return self._weights

    def weight(self) -> float:
        """Seed weight: sum over positions of log20(group count).

        The standard selectivity measure — an exact W-mer has weight W.
        """
        sizes = np.array([p.n_groups for p in self._partitions], dtype=np.float64)
        return float(np.sum(np.log(sizes) / np.log(20.0)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SubsetSeedModel({self.name!r}, key_space={self.key_space})"


#: Weight-≈3.3 seed of span 4 (exact, Murphy-10, Murphy-10, exact): the
#: reproduction's stand-in for the paper's W=4 subset seed.  Coarse inner
#: positions boost sensitivity to conservative substitutions; exact outer
#: positions keep index lists short.
DEFAULT_SUBSET_SEED = SubsetSeedModel.from_pattern("#11#")
