"""Step-1 indexing: contiguous W-mer and subset-seed two-bank indexes, plus
BLAST neighbourhood-word tables for the baseline."""

from .kmer import BankIndex, ContiguousSeedModel, SeedEntry, SeedModel, TwoBankIndex, extract_keys
from .neighborhood import NeighborhoodTable, word_digits
from .persist import load_index, save_index
from .stats import IndexStats, JointStats, index_stats, joint_stats, occupancy_curve
from .subset_seed import (
    DEFAULT_SUBSET_SEED,
    EXACT,
    MURPHY10,
    MURPHY4,
    MURPHY8,
    PARTITIONS,
    Partition,
    SubsetSeedModel,
)

__all__ = [
    "SeedModel",
    "ContiguousSeedModel",
    "BankIndex",
    "TwoBankIndex",
    "SeedEntry",
    "extract_keys",
    "SubsetSeedModel",
    "Partition",
    "DEFAULT_SUBSET_SEED",
    "EXACT",
    "MURPHY10",
    "MURPHY8",
    "MURPHY4",
    "PARTITIONS",
    "NeighborhoodTable",
    "word_digits",
    "save_index",
    "load_index",
    "IndexStats",
    "JointStats",
    "index_stats",
    "joint_stats",
    "occupancy_curve",
]
