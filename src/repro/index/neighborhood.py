"""BLAST-style neighbourhood words (baseline substrate).

NCBI blastp/tblastn seed differently from the paper's algorithm: a query
position *hits* a subject word ``v`` when the query's own word ``w`` scores
``score(w, v) ≥ T`` under the substitution matrix — the set of such ``v`` is
the *neighbourhood* of ``w``.  With W=3 and T=11 (the BLAST defaults for
BLOSUM62) each word has a few dozen neighbours.

The baseline in :mod:`repro.baseline.tblastn` uses this module to build the
query-word lookup table; computing all ``20^W × 20^W`` word-pair scores is
done blockwise with NumPy so table construction stays fast even for the full
8 000-word space.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..seqs.matrices import BLOSUM62, SubstitutionMatrix

__all__ = ["word_digits", "all_word_scores_blocked", "NeighborhoodTable"]


def word_digits(w: int) -> np.ndarray:
    """``(20**w, w)`` array of residue codes for every canonical word."""
    n = 20 ** w
    idx = np.arange(n, dtype=np.int64)
    digits = np.empty((n, w), dtype=np.uint8)
    for i in range(w - 1, -1, -1):
        digits[:, i] = idx % 20
        idx //= 20
    return digits


def all_word_scores_blocked(
    matrix: SubstitutionMatrix, w: int, block: int = 512
) -> Iterator[tuple[range, np.ndarray]]:
    """Yield ``(row_range, scores_block)`` for the full word-pair score matrix.

    ``scores_block[i, j] = sum_k matrix[word(row)[k], word(j)[k]]`` — int16,
    computed a block of rows at a time to bound memory to
    ``block × 20**w × 2`` bytes.
    """
    digits = word_digits(w)
    n = digits.shape[0]
    sub = matrix.scores.astype(np.int16)
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        acc = np.zeros((hi - lo, n), dtype=np.int16)
        for k in range(w):
            acc += sub[digits[lo:hi, k][:, None], digits[:, k][None, :]]
        yield range(lo, hi), acc


class NeighborhoodTable:
    """Word → neighbour-word lists at threshold ``T`` (CSR layout).

    ``neighbors_of(word)`` returns every word whose pairing with *word*
    scores at least ``T``.  The table is symmetric because substitution
    matrices are.
    """

    def __init__(
        self,
        matrix: SubstitutionMatrix = BLOSUM62,
        w: int = 3,
        threshold: int = 11,
        block: int = 512,
    ) -> None:
        self.matrix = matrix
        self.w = w
        self.threshold = int(threshold)
        n = 20 ** w
        counts = np.zeros(n, dtype=np.int64)
        chunks: list[np.ndarray] = []
        for rows, scores in all_word_scores_blocked(matrix, w, block):
            hits = scores >= threshold
            counts[rows.start : rows.stop] = hits.sum(axis=1)
            chunks.append(np.flatnonzero(hits.ravel()) % n)
        self._indptr = np.concatenate(([0], np.cumsum(counts)))
        self._neighbors = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        ).astype(np.int32)

    @property
    def n_words(self) -> int:
        """Size of the word space (``20**w``)."""
        return 20 ** self.w

    def neighbors_of(self, word: int) -> np.ndarray:
        """Neighbour words of *word* (including itself when self-score ≥ T)."""
        return self._neighbors[self._indptr[word] : self._indptr[word + 1]]

    def neighbor_counts(self) -> np.ndarray:
        """Number of neighbours per word."""
        return np.diff(self._indptr)

    def mean_neighbors(self) -> float:
        """Average neighbourhood size — BLAST's seeding density statistic."""
        return float(self.neighbor_counts().mean())

    def memory_bytes(self) -> int:
        """Table footprint."""
        return int(self._neighbors.nbytes + self._indptr.nbytes)
