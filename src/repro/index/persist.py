"""Index persistence.

The paper's own lineage (the FLASH/FPGA prototype, ref. [9]) stores
pre-built genome indexes on dedicated hardware precisely because indexing
a chromosome-scale bank is worth amortising across many comparisons.
This module persists a :class:`~repro.index.kmer.BankIndex` — bank buffer,
offset tables, CSR structure and seed-model identity — to a single
``.npz`` file and reloads it without re-sorting.

Only the bundled seed-model families (contiguous W-mers and pattern-based
subset seeds) round-trip; custom models raise at save time.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..seqs.alphabet import AMINO, DNA, Alphabet
from ..seqs.sequence import Sequence, SequenceBank
from .kmer import BankIndex, ContiguousSeedModel, SeedModel
from .subset_seed import SubsetSeedModel

__all__ = ["save_index", "load_index", "FORMAT_VERSION"]

FORMAT_VERSION = 1

_ALPHABETS: dict[str, Alphabet] = {"amino": AMINO, "dna": DNA}


def _model_tag(model: SeedModel) -> str:
    if isinstance(model, ContiguousSeedModel):
        return f"contiguous:{model.w}"
    if isinstance(model, SubsetSeedModel):
        return f"subset:{model.name}"
    raise TypeError(
        f"cannot persist seed model of type {type(model).__name__}; "
        "use ContiguousSeedModel or a pattern-based SubsetSeedModel"
    )


def _model_from_tag(tag: str) -> SeedModel:
    kind, _, arg = tag.partition(":")
    if kind == "contiguous":
        return ContiguousSeedModel(int(arg))
    if kind == "subset":
        return SubsetSeedModel.from_pattern(arg)
    raise ValueError(f"unknown seed-model tag {tag!r}")


def save_index(index: BankIndex, path: str | Path) -> None:
    """Persist a bank index (bank content included) to ``path`` (.npz)."""
    bank = index.bank
    names = np.array(list(bank.names), dtype=np.str_)
    descriptions = np.array([bank[i].description for i in range(len(bank))],
                            dtype=np.str_)
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        model_tag=np.str_(_model_tag(index.model)),
        alphabet=np.str_(bank.alphabet.name),
        pad=np.int64(bank.pad),
        buffer=bank.buffer,
        starts=bank.starts,
        lengths=bank.lengths,
        names=names,
        descriptions=descriptions,
        offsets=index._offsets,
        unique_keys=index._unique_keys,
        indptr=index._indptr,
    )


def load_index(path: str | Path) -> BankIndex:
    """Reload a persisted index; no re-sorting is performed."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"index file format {version} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        alphabet = _ALPHABETS[str(data["alphabet"])]
        model = _model_from_tag(str(data["model_tag"]))
        pad = int(data["pad"])
        buffer = data["buffer"]
        starts = data["starts"]
        lengths = data["lengths"]
        names = [str(n) for n in data["names"]]
        descriptions = [str(d) for d in data["descriptions"]]
        seqs = [
            Sequence(
                name,
                buffer[starts[i] : starts[i] + lengths[i]].copy(),
                alphabet,
                descriptions[i],
            )
            for i, name in enumerate(names)
        ]
        bank = SequenceBank(seqs, alphabet, pad=pad)
        index = BankIndex.__new__(BankIndex)
        index._bank = bank
        index._model = model
        index._offsets = data["offsets"].copy()
        index._unique_keys = data["unique_keys"].copy()
        index._indptr = data["indptr"].copy()
        return index
