"""Step 1 — two-bank seed indexing.

The paper indexes **both** banks by words of ``W`` amino acids: for each of
the ``alpha**W`` possible words ``k``, an *index list* ``IL[k]`` holds the
sequence offsets where the word occurs.  Step 2 then walks entries present
in both tables and scores every ``IL0[k] × IL1[k]`` pair.

Implementation notes
--------------------
* Index lists store **global offsets** into the bank's contiguous buffer
  (see :class:`repro.seqs.sequence.SequenceBank`) — identical to the paper's
  "sequence offsets", and the coordinate the hardware input controllers DMA
  to the accelerator.
* The table is stored CSR-style (``unique_keys`` / ``indptr`` /
  ``offsets``): a dense ``20**W`` table (160 000 entries at W=4) would also
  be fine, but the CSR form is what generalises to subset seeds whose key
  spaces differ.
* Key extraction is fully vectorised: each seed position contributes a
  digit via a 25-entry per-position map; windows containing ambiguity codes
  or padding are discarded, which automatically excludes windows straddling
  sequence boundaries.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..seqs.sequence import SequenceBank

__all__ = ["SeedModel", "ContiguousSeedModel", "BankIndex", "TwoBankIndex", "SeedEntry"]


class SeedModel(Protocol):
    """Strategy mapping length-``span`` windows to integer seed keys."""

    @property
    def span(self) -> int:
        """Window width in residues."""
        ...

    @property
    def key_space(self) -> int:
        """Number of distinct keys (exclusive upper bound)."""
        ...

    def position_maps(self) -> np.ndarray:
        """``(span, 25)`` int32 array: residue code → digit, or -1 invalid."""
        ...

    def radices(self) -> np.ndarray:
        """``(span,)`` int64 mixed-radix weights for combining digits."""
        ...


@dataclass(frozen=True)
class ContiguousSeedModel:
    """Plain contiguous W-mer seeds over the 20 canonical residues.

    The paper's baseline indexing scheme; key space ``20**w``.
    """

    w: int = 4

    @property
    def span(self) -> int:
        return self.w

    @property
    def key_space(self) -> int:
        return 20 ** self.w

    def position_maps(self) -> np.ndarray:
        m = np.full((self.w, 25), -1, dtype=np.int32)
        m[:, :20] = np.arange(20)
        return m

    def radices(self) -> np.ndarray:
        return (20 ** np.arange(self.w, dtype=np.int64))[::-1].copy()

    def key_of(self, codes: np.ndarray) -> int:
        """Key of a single window (scalar convenience; -1 if invalid)."""
        keys, valid = extract_keys(np.asarray(codes, dtype=np.uint8), self)
        if keys.shape[0] == 0 or not valid[0]:
            return -1
        return int(keys[0])


def extract_keys(buffer: np.ndarray, model: SeedModel) -> tuple[np.ndarray, np.ndarray]:
    """Compute seed keys at every anchor of *buffer*.

    Returns ``(keys, valid)`` of length ``len(buffer) - span + 1``; ``keys``
    is only meaningful where ``valid`` is True.
    """
    buffer = np.asarray(buffer, dtype=np.uint8)
    span = model.span
    n = buffer.shape[0] - span + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    maps = model.position_maps()
    radices = model.radices()
    keys = np.zeros(n, dtype=np.int64)
    valid = np.ones(n, dtype=bool)
    for i in range(span):
        digits = maps[i][buffer[i : i + n]]
        valid &= digits >= 0
        keys += np.where(digits >= 0, digits.astype(np.int64), 0) * radices[i]
    return keys, valid


class BankIndex:
    """CSR index of one bank: seed key → sorted global offsets.

    Equivalent to the paper's table ``T`` with its per-entry index lists
    ``IL[k]``.
    """

    def __init__(self, bank: SequenceBank, model: SeedModel) -> None:
        self._bank = bank
        self._model = model
        keys, valid = extract_keys(bank.buffer, model)
        anchors = np.flatnonzero(valid).astype(np.int64)
        k = keys[anchors]
        order = np.argsort(k, kind="stable")
        k_sorted = k[order]
        self._offsets = anchors[order]
        if k_sorted.size:
            boundaries = np.flatnonzero(np.diff(k_sorted)) + 1
            self._unique_keys = k_sorted[np.concatenate(([0], boundaries))]
            self._indptr = np.concatenate(([0], boundaries, [k_sorted.size])).astype(np.int64)
        else:
            self._unique_keys = np.empty(0, dtype=np.int64)
            self._indptr = np.zeros(1, dtype=np.int64)

    @property
    def bank(self) -> SequenceBank:
        """The indexed bank."""
        return self._bank

    @property
    def model(self) -> SeedModel:
        """The seed model used to build the index."""
        return self._model

    @property
    def unique_keys(self) -> np.ndarray:
        """Sorted array of keys that occur at least once."""
        return self._unique_keys

    @property
    def n_anchors(self) -> int:
        """Total number of indexed seed anchors."""
        return int(self._offsets.shape[0])

    def list_for(self, key: int) -> np.ndarray:
        """Index list ``IL[key]`` — global offsets, or empty array."""
        i = np.searchsorted(self._unique_keys, key)
        if i >= self._unique_keys.size or self._unique_keys[i] != key:
            return np.empty(0, dtype=np.int64)
        return self._offsets[self._indptr[i] : self._indptr[i + 1]]

    def list_lengths(self) -> np.ndarray:
        """Length of every non-empty index list, aligned with unique_keys."""
        return np.diff(self._indptr)

    def slice(self, i: int) -> np.ndarray:
        """Index list of the *i*-th non-empty entry."""
        return self._offsets[self._indptr[i] : self._indptr[i + 1]]

    def memory_bytes(self) -> int:
        """Approximate index memory footprint (offsets + structure)."""
        return int(
            self._offsets.nbytes + self._unique_keys.nbytes + self._indptr.nbytes
        )


def _gather_ranges(
    values: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate ``values[starts[i] : starts[i] + counts[i]]`` for all i.

    The ranges-to-indices trick: each output position gets its source index
    as ``repeat(starts - output_starts, counts) + arange(total)`` — a fixed
    number of numpy passes regardless of how many ranges there are.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_starts = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)[:-1]))
    idx = np.repeat(starts - out_starts, counts) + np.arange(total, dtype=np.int64)
    return values[idx]


@dataclass(frozen=True)
class SeedEntry:
    """One unit of step-2 work: a shared key with both index lists."""

    key: int
    offsets0: np.ndarray
    offsets1: np.ndarray

    @property
    def pair_count(self) -> int:
        """Number of ungapped extensions this entry generates (K0 × K1)."""
        return int(self.offsets0.shape[0]) * int(self.offsets1.shape[0])


class TwoBankIndex:
    """Joint index of two banks; iterates the step-2 work list.

    Matches the paper's structure: tables ``T0``/``T1`` built once, then the
    nested loop over entries ``k`` present in both enumerates every pair of
    ``IL0[k] × IL1[k]``.
    """

    def __init__(self, index0: BankIndex, index1: BankIndex) -> None:
        if index0.model is not index1.model and (
            index0.model.span != index1.model.span
            or index0.model.key_space != index1.model.key_space
        ):
            raise ValueError("both banks must be indexed with the same seed model")
        self.index0 = index0
        self.index1 = index1
        _, self._i0, self._i1 = np.intersect1d(
            index0.unique_keys, index1.unique_keys, assume_unique=True, return_indices=True
        )

    @classmethod
    def build(
        cls, bank0: SequenceBank, bank1: SequenceBank, model: SeedModel
    ) -> TwoBankIndex:
        """Index both banks and join them."""
        return cls(BankIndex(bank0, model), BankIndex(bank1, model))

    @property
    def n_shared_keys(self) -> int:
        """Number of keys occurring in both banks."""
        return int(self._i0.shape[0])

    def shared_keys(self) -> np.ndarray:
        """The shared keys, ascending."""
        return self.index0.unique_keys[self._i0]

    def pair_counts(self) -> np.ndarray:
        """K0×K1 per shared key — the step-2 workload histogram.

        This array drives both the software cost model and the PE-array
        occupancy model (see :mod:`repro.psc.schedule`).
        """
        l0 = self.index0.list_lengths()[self._i0]
        l1 = self.index1.list_lengths()[self._i1]
        return l0 * l1

    def list_length_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """(K0, K1) arrays aligned with :meth:`shared_keys`."""
        return (
            self.index0.list_lengths()[self._i0],
            self.index1.list_lengths()[self._i1],
        )

    @property
    def total_pairs(self) -> int:
        """Total ungapped extensions in step 2."""
        return int(self.pair_counts().sum())

    def entries(self) -> Iterator[SeedEntry]:
        """Iterate the step-2 work list in key order."""
        idx0, idx1 = self.index0, self.index1
        for j in range(self._i0.shape[0]):
            yield SeedEntry(
                int(idx0.unique_keys[self._i0[j]]),
                idx0.slice(int(self._i0[j])),
                idx1.slice(int(self._i1[j])),
            )

    def shard_arrays(
        self, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat work-list payload for the entry range ``[lo, hi)``.

        Returns ``(offsets0, counts0, offsets1, counts1)``: the
        concatenated ``IL0``/``IL1`` lists of the range's entries plus the
        per-entry list lengths needed to re-segment them.  This is what the
        sharded executor ships to a worker process — a few small arrays
        instead of the banks or the index object — and mirrors the byte
        stream the paper's host DMAs to an FPGA for its share of the keys.
        """
        if not 0 <= lo <= hi <= self._i0.shape[0]:
            raise IndexError(f"entry range [{lo}, {hi}) out of bounds")
        i0 = self._i0[lo:hi]
        i1 = self._i1[lo:hi]
        counts0 = self.index0.list_lengths()[i0]
        counts1 = self.index1.list_lengths()[i1]
        offsets0 = _gather_ranges(
            self.index0._offsets, self.index0._indptr[i0], counts0
        )
        offsets1 = _gather_ranges(
            self.index1._offsets, self.index1._indptr[i1], counts1
        )
        return offsets0, counts0, offsets1, counts1

    def entry(self, j: int) -> SeedEntry:
        """The *j*-th shared entry."""
        return SeedEntry(
            int(self.index0.unique_keys[self._i0[j]]),
            self.index0.slice(int(self._i0[j])),
            self.index1.slice(int(self._i1[j])),
        )
