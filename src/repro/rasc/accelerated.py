"""End-to-end accelerated pipeline: Altix host + RASC-100 (paper §4).

:class:`AcceleratedPipeline` mirrors the paper's deployment exactly:

* **step 1** (indexing, plus 6-frame translation) runs on the host —
  functionally real, time modelled from measured counts via
  :class:`~repro.rasc.host.HostCostModel`;
* **step 2** is deported to the PSC operator on the RASC-100 — hits are
  the accelerator model's actual outputs, time comes from the cycle
  schedule at 100 MHz plus NUMAlink transfers;
* **step 3** (gapped extension) runs on the host over the accelerator's
  hits, again functionally real with modelled time.

The dual-FPGA mode reproduces the paper's pthread experiment: the protein
bank is split residue-balanced across both FPGAs, each half is compared
against the full subject bank, results merge on the host, and the two DMA
streams contend on the shared NUMAlink.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import PipelineConfig
from ..core.partition import split_bank
from ..core.pipeline import SeedComparisonPipeline, gapped_stage
from ..core.results import ComparisonReport
from ..obs import trace
from ..psc.schedule import PscArrayConfig
from ..seqs.sequence import Sequence, SequenceBank
from ..seqs.translate import translated_bank
from ..util.reporting import fractions
from .host import HostCostModel, HostStepSeconds
from .platform import AcceleratorRun, Rasc100

__all__ = ["AcceleratedPipeline", "AcceleratedResult"]


@dataclass(frozen=True)
class AcceleratedResult:
    """Report plus the modelled timing decomposition."""

    report: ComparisonReport
    host_seconds: HostStepSeconds  # step 1 & 3 modelled host time
    accel_seconds: float  # step-2 accelerator wall (compute + I/O)
    accel_runs: tuple[AcceleratorRun, ...]

    @property
    def total_seconds(self) -> float:
        """Modelled end-to-end time (paper Table 2 accounting: steps
        sequential on one core, step 2 on the accelerator)."""
        return self.host_seconds.step1 + self.accel_seconds + self.host_seconds.step3

    def step_fractions(self) -> tuple[float, ...]:
        """Per-step share of total time (paper Table 7 shape)."""
        return fractions(
            (self.host_seconds.step1, self.accel_seconds, self.host_seconds.step3)
        )


class AcceleratedPipeline:
    """Host + RASC-100 deployment of the seed comparison pipeline."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        psc_config: PscArrayConfig | None = None,
        platform: Rasc100 | None = None,
        host: HostCostModel | None = None,
        model: str = "behavioral",
    ) -> None:
        self.config = config or PipelineConfig()
        self.psc_config = psc_config or PscArrayConfig(
            window=self.config.window,
            threshold=self.config.ungapped_threshold,
            matrix=self.config.matrix,
            semantics=self.config.semantics,
        )
        if self.psc_config.window != self.config.window:
            raise ValueError(
                "PSC window must equal the pipeline window "
                f"({self.psc_config.window} != {self.config.window})"
            )
        self.platform = platform or Rasc100()
        self.host = host or HostCostModel()
        self.model = model
        self.platform.load_bitstream(self.psc_config, fpga_id=0, model=model)

    # ------------------------------------------------------------------
    def run(
        self, proteins: SequenceBank, subject: SequenceBank | Sequence
    ) -> AcceleratedResult:
        """Single-FPGA comparison of a protein bank against a subject.

        *subject* may be a DNA genome (translated on the host) or an
        already-translated protein bank.
        """
        with trace.span("pipeline", mode="accel"):
            bank1, nucleotides = self._subject_bank(subject)
            sw = SeedComparisonPipeline(self.config)
            index = sw.index_banks(proteins, bank1)
            accel = self.platform.run_step2(index, self.config.flank, fpga_id=0)
            profile = sw.profile
            with trace.span("step3.gapped"):
                report = gapped_stage(
                    proteins, bank1, accel.hits, self.config, profile
                )
        host_seconds = self.host.steps(
            step1_residues=profile.step1.operations,
            step2_cells=0,
            step3_cells=profile.step3.operations,
            nucleotides=nucleotides,
        )
        return AcceleratedResult(
            report=report,
            host_seconds=host_seconds,
            accel_seconds=accel.wall_seconds,
            accel_runs=(accel,),
        )

    def run_dual(
        self, proteins: SequenceBank, subject: SequenceBank | Sequence
    ) -> AcceleratedResult:
        """Dual-FPGA comparison: protein bank split across both FPGAs."""
        self.platform.load_bitstream(self.psc_config, fpga_id=1, model=self.model)
        with trace.span("pipeline", mode="accel-dual"):
            bank1, nucleotides = self._subject_bank(subject)
            halves = split_bank(proteins, 2)
            indexes = []
            step1_residues = 0
            for half in halves:
                sw = SeedComparisonPipeline(self.config)
                indexes.append(sw.index_banks(half, bank1))
                step1_residues += sw.profile.step1.operations
            runs, accel_wall = self.platform.run_step2_dual(
                indexes, self.config.flank
            )
            reports = []
            step3_cells = 0
            with trace.span("step3.gapped"):
                for half, _index, run in zip(halves, indexes, runs, strict=True):
                    profile_sink = SeedComparisonPipeline(self.config).profile
                    reports.append(
                        gapped_stage(half, bank1, run.hits, self.config, profile_sink)
                    )
                    step3_cells += profile_sink.step3.operations
            report = ComparisonReport.merged(reports)
        host_seconds = self.host.steps(
            step1_residues=step1_residues,
            step2_cells=0,
            step3_cells=step3_cells,
            nucleotides=nucleotides,
        )
        return AcceleratedResult(
            report=report,
            host_seconds=host_seconds,
            accel_seconds=accel_wall,
            accel_runs=tuple(runs),
        )

    # ------------------------------------------------------------------
    def _subject_bank(
        self, subject: SequenceBank | Sequence
    ) -> tuple[SequenceBank, int]:
        if isinstance(subject, SequenceBank):
            return subject, 0
        bank1 = translated_bank(subject, pad=max(64, self.config.flank + 8))
        return bank1, len(subject)
