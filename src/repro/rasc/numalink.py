"""NUMAlink interconnect model.

The RASC-100 blade connects to the Altix host through NUMAlink-4 via two
TIO ASICs.  For performance purposes the link is a latency/bandwidth pipe
(:class:`repro.hwsim.dma.LinkModel`); this module adds the RASC-specific
topology: both FPGAs share the blade's host connection, so concurrent
transfers serialise — the effect behind the paper's 2-FPGA result-path
troubles (§4.1, Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hwsim.dma import LinkModel

__all__ = ["NumalinkFabric", "TransferPlan"]

#: NUMAlink-4 peak per direction.
NUMALINK_BANDWIDTH = 3.2e9
#: Per-DMA-transfer initiation latency (driver + TIO round trip).
NUMALINK_LATENCY = 1.5e-6


@dataclass(frozen=True)
class TransferPlan:
    """Aggregate I/O of one accelerator run."""

    bytes_in: int
    bytes_out: int

    def total(self) -> int:
        """Total bytes over the link."""
        return self.bytes_in + self.bytes_out


@dataclass
class NumalinkFabric:
    """The blade's shared host link.

    ``serialise(plans)`` returns per-FPGA I/O seconds under the sharing
    model: each direction of the link is a single resource, so concurrent
    streams see the *sum* of demands divided by the bandwidth (fair
    sharing), plus per-run initiation latency.
    """

    link: LinkModel = field(
        default_factory=lambda: LinkModel(NUMALINK_BANDWIDTH, NUMALINK_LATENCY)
    )

    def io_seconds(self, plan: TransferPlan, n_transfers: int = 2) -> float:
        """I/O time of a single run with exclusive link use."""
        return (
            self.link.latency_s * n_transfers
            + plan.bytes_in / self.link.bandwidth_bytes_per_s
            + plan.bytes_out / self.link.bandwidth_bytes_per_s
        )

    def shared_io_seconds(
        self, plans: list[TransferPlan], n_transfers: int = 2
    ) -> list[float]:
        """Per-run I/O seconds when runs share the link concurrently.

        Each direction is fair-shared: a run's effective bandwidth is
        ``bandwidth / n_concurrent``.  This is the first-order model of the
        contention the paper works around by raising the threshold.
        """
        n = max(1, len(plans))
        bw = self.link.bandwidth_bytes_per_s / n
        return [
            self.link.latency_s * n_transfers + p.bytes_in / bw + p.bytes_out / bw
            for p in plans
        ]

    def record(self, plan: TransferPlan) -> None:
        """Account a completed run's traffic."""
        self.link.record_in(plan.bytes_in)
        self.link.record_out(plan.bytes_out)
