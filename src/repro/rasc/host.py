"""Altix 350 host cost model.

Python wall-clock says nothing about the paper's 1.6 GHz Itanium2, so host
step times are modelled as ``operation count × per-operation cost``.  The
operation counts are *measured* from real runs of this implementation
(residues indexed, window cells scored, DP cells computed — see
:class:`repro.core.profile.PipelineProfile`); only the per-operation
constants below are calibrated, once, against the paper's published 30K
anchors:

======================  ===========================  ====================
constant                anchored on                   paper value
======================  ===========================  ====================
``index_ns_per_residue``  Table 7 step-1 share of the   ~220 s for ~450 M
                          30K RASC-192 run              residues indexed
``ungapped_ns_per_cell``  Table 4 sequential step 2,    73,492 s
                          30K bank
``gapped_ns_per_cell``    Table 7 step-3 share of the   ~2,090 s
                          30K RASC-192 run
======================  ===========================  ====================

Every *relative* result (speedup trends across bank sizes and PE counts,
profile shifts, crossovers) then follows from measured counts, not from
the calibration; the benches recalibrate at run time from their own
extrapolated counts and print the constants they used.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..util.reporting import fractions

__all__ = ["HostCostModel", "HostStepSeconds"]


@dataclass(frozen=True)
class HostStepSeconds:
    """Modelled host seconds per pipeline step."""

    step1: float
    step2: float
    step3: float

    @property
    def total(self) -> float:
        """Sum over steps."""
        return self.step1 + self.step2 + self.step3

    def fractions(self) -> tuple[float, ...]:
        """Per-step shares (Table 1 / Table 7 shape)."""
        return fractions((self.step1, self.step2, self.step3))


@dataclass(frozen=True)
class HostCostModel:
    """Per-operation costs of the modelled host CPU.

    Defaults correspond to the calibration described in the module
    docstring; use :meth:`calibrated` to re-derive them from fresh
    (count, seconds) anchors.
    """

    name: str = "Altix 350 / Itanium2 1.6 GHz"
    #: Indexing cost per residue (seed extraction + sort + table build).
    index_ns_per_residue: float = 480.0
    #: Ungapped window scoring cost per cell (ROM lookup + add + max).
    ungapped_ns_per_cell: float = 6.0
    #: Gapped X-drop DP cost per cell (3-state affine recurrence).
    gapped_ns_per_cell: float = 36.0
    #: 6-frame translation cost per nucleotide.
    translate_ns_per_nt: float = 25.0

    def step1_seconds(self, residues: int, nucleotides: int = 0) -> float:
        """Modelled indexing (+ optional translation) time."""
        return (
            residues * self.index_ns_per_residue
            + nucleotides * self.translate_ns_per_nt
        ) * 1e-9

    def step2_seconds(self, cells: int) -> float:
        """Modelled sequential ungapped-extension time."""
        return cells * self.ungapped_ns_per_cell * 1e-9

    def step3_seconds(self, cells: int) -> float:
        """Modelled gapped-extension time."""
        return cells * self.gapped_ns_per_cell * 1e-9

    def steps(
        self,
        step1_residues: int,
        step2_cells: int,
        step3_cells: int,
        nucleotides: int = 0,
    ) -> HostStepSeconds:
        """Bundle all three step times from operation counts."""
        return HostStepSeconds(
            step1=self.step1_seconds(step1_residues, nucleotides),
            step2=self.step2_seconds(step2_cells),
            step3=self.step3_seconds(step3_cells),
        )

    @classmethod
    def calibrated(
        cls,
        step1_anchor: tuple[int, float] | None = None,
        step2_anchor: tuple[int, float] | None = None,
        step3_anchor: tuple[int, float] | None = None,
        **kwargs,
    ) -> HostCostModel:
        """Build a model whose constants hit the given (count, seconds)
        anchors; unanchored constants keep their defaults."""
        model = cls(**kwargs)
        updates = {}
        if step1_anchor is not None:
            count, seconds = step1_anchor
            updates["index_ns_per_residue"] = seconds / count * 1e9
        if step2_anchor is not None:
            count, seconds = step2_anchor
            updates["ungapped_ns_per_cell"] = seconds / count * 1e9
        if step3_anchor is not None:
            count, seconds = step3_anchor
            updates["gapped_ns_per_cell"] = seconds / count * 1e9
        return replace(model, **updates) if updates else model
