"""SGI RASC-100 platform model: FPGAs behind SGI core services (ADR
registers, DMA), the shared NUMAlink fabric, the Altix host cost model and
the end-to-end accelerated pipeline."""

from .accelerated import AcceleratedPipeline, AcceleratedResult
from .adr import AdrBlock, AdrError
from .cluster import BladeSpec, ClusterModel, ClusterProjection
from .dual_design import DualDesignPipeline, DualDesignResult, HostDispatch
from .host import HostCostModel, HostStepSeconds
from .numalink import NUMALINK_BANDWIDTH, NUMALINK_LATENCY, NumalinkFabric, TransferPlan
from .platform import RESULT_RECORD_BYTES, AcceleratorRun, FpgaUnit, Rasc100

__all__ = [
    "Rasc100",
    "FpgaUnit",
    "AcceleratorRun",
    "RESULT_RECORD_BYTES",
    "AdrBlock",
    "DualDesignPipeline",
    "DualDesignResult",
    "HostDispatch",
    "BladeSpec",
    "ClusterModel",
    "ClusterProjection",
    "AdrError",
    "NumalinkFabric",
    "TransferPlan",
    "NUMALINK_BANDWIDTH",
    "NUMALINK_LATENCY",
    "HostCostModel",
    "HostStepSeconds",
    "AcceleratedPipeline",
    "AcceleratedResult",
]
