"""Dual-design deployment: PSC on FPGA 0, GXP on FPGA 1.

The paper's closing proposal: "The RASC-100 architecture would perfectly
support this double activity since it allows two different designs to run
concurrently on its two FPGAs."  This module deploys exactly that —
step 2 on the PSC operator, step 3 pre-scoring on the gapped-extension
operator — and models the pipelined timing: step-2 result records stream
straight into the GXP work FIFO, so the two accelerators overlap and the
blade's step-2+3 wall time is ``max(PSC, GXP) + pipeline drain``.

The host keeps step 1 (indexing), final E-value filtering and traceback
of reported alignments; :class:`HostDispatch` additionally models
spreading that host work over multi-core CPUs (the paper's final open
question about core/FPGA work dispatch).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import PipelineConfig
from ..core.pipeline import SeedComparisonPipeline, gapped_stage
from ..core.results import ComparisonReport
from ..psc.gapped_operator import GxpConfig, GxpOperator, GxpResult
from ..psc.schedule import PscArrayConfig
from ..seqs.sequence import Sequence, SequenceBank
from .host import HostCostModel
from .platform import Rasc100

__all__ = ["DualDesignPipeline", "DualDesignResult", "HostDispatch"]


@dataclass(frozen=True)
class HostDispatch:
    """Multi-core host model (Amdahl) for the steps left on the CPU.

    ``parallel_fraction`` is the parallelisable share of steps 1 and 3
    (index building parallelises over sequences; traceback over hits);
    the remainder is serial coordination.
    """

    n_cores: int = 1
    parallel_fraction: float = 0.9

    def seconds(self, serial_seconds: float) -> float:
        """Amdahl-scaled time of a nominally serial host phase."""
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        f = self.parallel_fraction
        return serial_seconds * ((1 - f) + f / self.n_cores)


@dataclass(frozen=True)
class DualDesignResult:
    """Report plus the dual-design timing decomposition."""

    report: ComparisonReport
    gxp: GxpResult
    step1_seconds: float
    psc_seconds: float
    gxp_seconds: float
    host_step3_seconds: float

    @property
    def accel_seconds(self) -> float:
        """Overlapped accelerator time (PSC ∥ GXP)."""
        return max(self.psc_seconds, self.gxp_seconds)

    @property
    def total_seconds(self) -> float:
        """End-to-end modelled time."""
        return self.step1_seconds + self.accel_seconds + self.host_step3_seconds


class DualDesignPipeline:
    """Both FPGAs busy: PSC (step 2) + GXP (step 3 pre-scoring)."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        psc_config: PscArrayConfig | None = None,
        gxp_config: GxpConfig | None = None,
        host: HostCostModel | None = None,
        dispatch: HostDispatch | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.psc_config = psc_config or PscArrayConfig(
            window=self.config.window,
            threshold=self.config.ungapped_threshold,
            matrix=self.config.matrix,
        )
        self.gxp_config = gxp_config or GxpConfig(matrix=self.config.matrix,
                                                  gaps=self.config.gaps)
        self.host = host or HostCostModel()
        self.dispatch = dispatch or HostDispatch()
        self.platform = Rasc100()
        self.platform.load_bitstream(self.psc_config, fpga_id=0)
        self.gxp = GxpOperator(self.gxp_config)

    def run(
        self, proteins: SequenceBank, subject: SequenceBank | Sequence
    ) -> DualDesignResult:
        """Full comparison with both accelerators engaged.

        The GXP pre-scores every step-2 hit; the host then runs the exact
        gapped stage only for hits whose banded pre-score clears the
        pipeline's report threshold — cutting host step-3 work to the
        reported fraction.
        """
        if isinstance(subject, Sequence):
            from ..seqs.translate import translated_bank

            bank1 = translated_bank(subject, pad=max(64, self.config.flank + 8))
            nucleotides = len(subject)
        else:
            bank1, nucleotides = subject, 0
        sw = SeedComparisonPipeline(self.config)
        index = sw.index_banks(proteins, bank1)
        accel = self.platform.run_step2(index, self.config.flank, fpga_id=0)
        gxp_result = self.gxp.run(proteins, bank1, accel.hits)
        # Host finishing pass: exact X-drop + statistics for GXP survivors.
        from ..extend.stats import gapped_params

        params = gapped_params(
            self.config.matrix.name, self.config.gaps.open, self.config.gaps.extend
        )
        import math

        min_raw = (
            math.log(params.k * proteins.total_residues * bank1.total_residues
                     / self.config.max_evalue)
            / params.lam
            if len(accel.hits)
            else 0.0
        )
        keep = gxp_result.scores >= min_raw
        from ..extend.ungapped import UngappedHits

        surviving = UngappedHits(
            accel.hits.offsets0[keep],
            accel.hits.offsets1[keep],
            accel.hits.scores[keep],
            accel.hits.stats,
        )
        profile = sw.profile
        report = gapped_stage(proteins, bank1, surviving, self.config, profile)
        host_steps = self.host.steps(
            step1_residues=profile.step1.operations,
            step2_cells=0,
            step3_cells=profile.step3.operations,
            nucleotides=nucleotides,
        )
        return DualDesignResult(
            report=report,
            gxp=gxp_result,
            step1_seconds=self.dispatch.seconds(host_steps.step1),
            psc_seconds=accel.wall_seconds,
            gxp_seconds=self.gxp_config.seconds(gxp_result.total_cycles),
            host_step3_seconds=self.dispatch.seconds(host_steps.step3),
        )
