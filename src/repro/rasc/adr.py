"""Algorithm-Defined Registers (ADR).

SGI's RASC core services expose a small register file through which the
host configures and supervises the user design.  The PSC bitstream defines
registers for the scoring window, threshold, entry counts and a
start/done/result-count status block; the platform model programs them the
same way the real driver would, and tests assert that mis-programming
(e.g. starting without configuration) is caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AdrBlock", "AdrError"]


class AdrError(RuntimeError):
    """Raised on invalid register access or protocol misuse."""


#: Registers defined by the PSC bitstream, with reset values.
_PSC_REGISTERS = {
    "WINDOW": 0,  # scoring window L = W + 2N
    "THRESHOLD": 0,  # result-management threshold
    "N_ENTRIES": 0,  # entries in the staged workload
    "CONTROL": 0,  # bit 0: start; bit 1: abort
    "STATUS": 0,  # bit 0: busy; bit 1: done
    "RESULT_COUNT": 0,  # results produced by the last run
    "CYCLE_COUNT": 0,  # cycles consumed by the last run
}


@dataclass
class AdrBlock:
    """A named register file with read/write accounting."""

    registers: dict[str, int] = field(
        default_factory=lambda: dict(_PSC_REGISTERS)
    )
    reads: int = 0
    writes: int = 0

    def read(self, name: str) -> int:
        """Read a register by name."""
        if name not in self.registers:
            raise AdrError(f"unknown ADR register {name!r}")
        self.reads += 1
        return self.registers[name]

    def write(self, name: str, value: int) -> None:
        """Write a register by name (read-only registers are enforced)."""
        if name not in self.registers:
            raise AdrError(f"unknown ADR register {name!r}")
        if name in ("STATUS", "RESULT_COUNT", "CYCLE_COUNT"):
            raise AdrError(f"ADR register {name!r} is read-only from the host")
        self.writes += 1
        self.registers[name] = int(value)

    def _hw_set(self, name: str, value: int) -> None:
        """Hardware-side update (no host accounting)."""
        self.registers[name] = int(value)

    def configured(self) -> bool:
        """True once the mandatory parameters have been programmed."""
        return self.registers["WINDOW"] > 0 and self.registers["N_ENTRIES"] >= 0
