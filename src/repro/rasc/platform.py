"""The SGI RASC-100 platform model (paper Figure 3).

One blade carries two Xilinx Virtex-4 FPGAs, each reachable through a TIO
module over the shared NUMAlink connection, a board SRAM, and a loader that
configures FPGAs with bitstreams.  SGI core services (DMA engines, ADR
registers) wrap whatever user design is loaded — here, the PSC operator.

:class:`Rasc100` exposes the operations the paper's host code performs:
load a bitstream, stage a step-2 workload, run it, and collect results —
with full timing accounting (compute cycles at the design clock, DMA
transfer time over the shared link, with input streaming overlapped with
compute as in the real double-buffered design).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..extend.ungapped import UngappedHits
from ..hwsim.memory import Sram
from ..index.kmer import TwoBankIndex
from ..obs import metrics as obsmetrics
from ..obs import trace
from ..psc.behavioral import PscBehavioral
from ..psc.operator import PscOperator, PscRunResult
from ..psc.schedule import PscArrayConfig, ScheduleBreakdown, schedule_cycles
from ..psc.workload import build_jobs, job_stream_bytes
from .adr import AdrBlock, AdrError
from .numalink import NumalinkFabric, TransferPlan

__all__ = ["Rasc100", "FpgaUnit", "AcceleratorRun", "RESULT_RECORD_BYTES"]

#: Bytes per result record on the host link (2 offsets + score, padded).
RESULT_RECORD_BYTES = 12
#: Board SRAM per FPGA (16 MB as 8-byte words).
SRAM_WORDS = 2 * 1024 * 1024


@dataclass(frozen=True)
class AcceleratorRun:
    """Timing and results of one step-2 run on one FPGA."""

    hits: UngappedHits
    breakdown: ScheduleBreakdown
    compute_seconds: float
    io_seconds: float
    plan: TransferPlan

    @property
    def wall_seconds(self) -> float:
        """Run wall time: input stream overlaps compute, results tail off."""
        return self.compute_seconds + self.io_seconds


class FpgaUnit:
    """One Virtex-4 FPGA behind SGI core services."""

    def __init__(self, fpga_id: int) -> None:
        self.fpga_id = fpga_id
        self.adr = AdrBlock()
        self.sram = Sram(SRAM_WORDS, name=f"fpga{fpga_id}-sram")
        self.config: PscArrayConfig | None = None
        self.model: str = "behavioral"
        self._behavioral: PscBehavioral | None = None
        self._cycle: PscOperator | None = None

    def load_bitstream(self, config: PscArrayConfig, model: str = "behavioral") -> None:
        """Configure the FPGA with a PSC bitstream.

        ``model`` selects simulation fidelity: ``"behavioral"`` (fast,
        cycle-exact timing) or ``"cycle"`` (per-clock PE datapaths).
        """
        if model not in ("behavioral", "cycle"):
            raise ValueError(f"unknown model {model!r}")
        self.config = config
        self.model = model
        self._behavioral = PscBehavioral(config)
        self._cycle = PscOperator(config) if model == "cycle" else None
        self.adr.write("WINDOW", config.window)
        self.adr.write("THRESHOLD", config.threshold)

    def _require_loaded(self) -> PscArrayConfig:
        if self.config is None:
            raise AdrError(f"FPGA {self.fpga_id}: no bitstream loaded")
        return self.config

    def execute(self, index: TwoBankIndex, flank: int) -> PscRunResult:
        """Run step 2 for *index*; returns the raw PSC run result."""
        config = self._require_loaded()
        self.adr.write("N_ENTRIES", index.n_shared_keys)
        self.adr.write("CONTROL", 1)
        self.adr._hw_set("STATUS", 1)
        if self.model == "cycle":
            assert self._cycle is not None
            result = self._cycle.run(build_jobs(index, flank, config.window))
        else:
            assert self._behavioral is not None
            result = self._behavioral.run_index(index, flank)
        self.adr._hw_set("STATUS", 2)
        self.adr._hw_set("RESULT_COUNT", len(result))
        self.adr._hw_set("CYCLE_COUNT", result.breakdown.total_cycles)
        return result


class Rasc100:
    """The two-FPGA RASC-100 blade with its shared host link."""

    N_FPGAS = 2

    def __init__(self, fabric: NumalinkFabric | None = None) -> None:
        self.fabric = fabric or NumalinkFabric()
        self.fpgas = [FpgaUnit(i) for i in range(self.N_FPGAS)]
        #: Bitstream loads performed (the loader module's counter).
        self.loads = 0

    def load_bitstream(
        self, config: PscArrayConfig, fpga_id: int = 0, model: str = "behavioral"
    ) -> None:
        """Program one FPGA (via the board's loader module)."""
        self.fpgas[fpga_id].load_bitstream(config, model)
        self.loads += 1

    def _plan_for(self, index: TwoBankIndex, result_count: int, window: int) -> TransferPlan:
        in_bytes, per_result = job_stream_bytes(index, window)
        return TransferPlan(bytes_in=in_bytes, bytes_out=result_count * per_result)

    def run_step2(
        self, index: TwoBankIndex, flank: int, fpga_id: int = 0
    ) -> AcceleratorRun:
        """Run one step-2 workload on one FPGA with exclusive link use."""
        with trace.span("rasc.step2", fpga=fpga_id) as sp:
            unit = self.fpgas[fpga_id]
            config = unit._require_loaded()
            result = unit.execute(index, flank)
            plan = self._plan_for(index, len(result), config.window)
            self.fabric.record(plan)
            compute = config.seconds(result.breakdown.total_cycles)
            io = self.fabric.io_seconds(plan)
            # Input streaming overlaps compute (double-buffered DMA); only the
            # slower of the two binds, plus the result tail.
            in_s = plan.bytes_in / self.fabric.link.bandwidth_bytes_per_s
            out_s = plan.bytes_out / self.fabric.link.bandwidth_bytes_per_s
            overlapped = max(compute, in_s) + out_s + 2 * self.fabric.link.latency_s
            hits = self._hits_from(result, index, config)
            run = AcceleratorRun(
                hits=hits,
                breakdown=result.breakdown,
                compute_seconds=compute,
                io_seconds=overlapped - compute if overlapped > compute else 0.0,
                plan=plan,
            )
            if sp is not None:
                sp.set_attrs(hits=len(hits), model=unit.model)
            self._publish_run(run, fpga_id)
        return run

    def run_step2_dual(
        self,
        indexes: list[TwoBankIndex],
        flank: int,
    ) -> tuple[list[AcceleratorRun], float]:
        """Run two step-2 workloads concurrently, one per FPGA.

        Returns per-FPGA runs and the blade wall time under the shared-link
        model: compute proceeds in parallel, but both FPGAs' DMA streams
        fair-share the single NUMAlink connection.
        """
        if len(indexes) != self.N_FPGAS:
            raise ValueError(f"expected {self.N_FPGAS} workloads")
        runs: list[AcceleratorRun] = []
        plans: list[TransferPlan] = []
        computes: list[float] = []
        for fpga_id, index in enumerate(indexes):
            with trace.span("rasc.step2", fpga=fpga_id, concurrency="dual"):
                unit = self.fpgas[fpga_id]
                config = unit._require_loaded()
                result = unit.execute(index, flank)
                plan = self._plan_for(index, len(result), config.window)
                self.fabric.record(plan)
                compute = config.seconds(result.breakdown.total_cycles)
                computes.append(compute)
                plans.append(plan)
                run = AcceleratorRun(
                    hits=self._hits_from(result, index, config),
                    breakdown=result.breakdown,
                    compute_seconds=compute,
                    io_seconds=0.0,
                    plan=plan,
                )
                self._publish_run(run, fpga_id)
                runs.append(run)
        wall = max(
            max(c, io_in) + io_out
            for c, io_in, io_out in zip(
                computes,
                [
                    p.bytes_in / (self.fabric.link.bandwidth_bytes_per_s / 2)
                    for p in plans
                ],
                [
                    p.bytes_out / (self.fabric.link.bandwidth_bytes_per_s / 2)
                    + 2 * self.fabric.link.latency_s
                    for p in plans
                ],
                strict=True,
            )
        )
        return runs, wall

    def run_step2_many(
        self, indexes: list[TwoBankIndex], flank: int
    ) -> tuple[list[AcceleratorRun], float]:
        """Schedule N step-2 shards round-robin over the blade's two FPGAs.

        The hardware image of :class:`~repro.core.executor.ShardedStep2Executor`
        with ``workers = N``: shard *i* queues on FPGA ``i % 2``, each FPGA
        drains its queue sequentially (input DMA overlapping compute per
        shard), and while both FPGAs are active the two DMA streams
        fair-share the NUMAlink as in :meth:`run_step2_dual`.  Returns the
        per-shard runs in submission order plus the blade wall time (max
        over the two FPGA queues).
        """
        if not indexes:
            return [], 0.0
        share = min(self.N_FPGAS, len(indexes))
        bw = self.fabric.link.bandwidth_bytes_per_s / share
        runs: list[AcceleratorRun] = []
        queue_walls = [0.0] * self.N_FPGAS
        for i, index in enumerate(indexes):
            fpga_id = i % self.N_FPGAS
            with trace.span("rasc.step2", fpga=fpga_id, shard=i):
                unit = self.fpgas[fpga_id]
                config = unit._require_loaded()
                result = unit.execute(index, flank)
                plan = self._plan_for(index, len(result), config.window)
                self.fabric.record(plan)
                compute = config.seconds(result.breakdown.total_cycles)
                in_s = plan.bytes_in / bw
                out_s = plan.bytes_out / bw + 2 * self.fabric.link.latency_s
                queue_walls[fpga_id] += max(compute, in_s) + out_s
                run = AcceleratorRun(
                    hits=self._hits_from(result, index, config),
                    breakdown=result.breakdown,
                    compute_seconds=compute,
                    io_seconds=max(compute, in_s) + out_s - compute,
                    plan=plan,
                )
                self._publish_run(run, fpga_id)
                runs.append(run)
        return runs, max(queue_walls)

    def _publish_run(self, run: AcceleratorRun, fpga_id: int) -> None:
        """Per-FPGA timing counters for one step-2 run.

        DMA byte/transfer counters are published by the link model itself
        (``fabric.record`` → ``LinkModel.record_in/out``); modelled seconds
        here are *simulated* hardware time, deliberately distinct from the
        host wall-clock seconds the span records.
        """
        registry = obsmetrics.active()
        if registry is None:
            return
        config = self.fpgas[fpga_id].config
        registry.counter("rasc_compute_seconds_total", fpga=fpga_id).inc(
            run.compute_seconds
        )
        registry.counter("rasc_io_seconds_total", fpga=fpga_id).inc(run.io_seconds)
        registry.counter("rasc_result_records_total", fpga=fpga_id).inc(
            len(run.hits)
        )
        if config is not None and run.compute_seconds > 0:
            pairs = run.breakdown.busy_pe_cycles // config.window
            registry.gauge("rasc_pairs_per_second_per_pe", fpga=fpga_id).set_max(
                pairs / run.wall_seconds / config.n_pes
            )

    @staticmethod
    def _hits_from(
        result: PscRunResult, index: TwoBankIndex, config: PscArrayConfig
    ) -> UngappedHits:
        from ..extend.ungapped import UngappedStats

        stats = UngappedStats(
            entries=index.n_shared_keys,
            pairs=index.total_pairs,
            cells=index.total_pairs * config.window,
            hits=len(result),
        )
        return UngappedHits(result.offsets0, result.offsets1, result.scores, stats)

    # -- statistics-only timing (paper-scale projections) -----------------
    def modeled_step2_seconds(
        self,
        k0s: np.ndarray,
        k1s: np.ndarray,
        expected_hits: int,
        config: PscArrayConfig,
        n_concurrent: int = 1,
        pair_overhead_cycles: float = 0.0,
    ) -> tuple[float, ScheduleBreakdown]:
        """Step-2 seconds from index statistics alone (no functional run).

        Used by the paper-scale benches: ``k0s``/``k1s`` are (possibly
        analytically scaled) per-entry list lengths, *expected_hits* the
        projected result count.  ``n_concurrent`` > 1 applies the shared
        fair-share link model.

        ``pair_overhead_cycles`` (κ) models the deployed design's
        per-unit-of-work cost beyond the ideal one-residue-per-clock
        schedule: SRAM-port sharing between IL0 loads, IL1 streaming and
        result writes, result-management scans, and host-driver gaps all
        scale with the *useful* work done, so the derating is
        ``κ × busy_pe_cycles / n_pes`` extra cycles.  A single κ ≈ 2.9,
        calibrated once on the paper's 30K/192-PE step-2 anchor,
        reproduces the paper's full Table 4 grid (4 bank sizes × 3 PE
        counts) to within a few percent at the saturated end — in
        particular the PE-count-independent ~28 % efficiency plateau —
        because the overhead is amortised over the array exactly like the
        useful work.
        """
        if pair_overhead_cycles < 0:
            raise ValueError("pair_overhead_cycles must be >= 0")
        breakdown = schedule_cycles(k0s, k1s, config)
        effective_cycles = (
            breakdown.total_cycles
            + pair_overhead_cycles * breakdown.busy_pe_cycles / config.n_pes
        )
        compute = config.seconds(effective_cycles)
        in_bytes = int((k0s.sum() + k1s.sum()) * (config.window + 4))
        out_bytes = expected_hits * RESULT_RECORD_BYTES
        bw = self.fabric.link.bandwidth_bytes_per_s / n_concurrent
        wall = max(compute, in_bytes / bw) + out_bytes / bw + 2 * self.fabric.link.latency_s
        return wall, breakdown
