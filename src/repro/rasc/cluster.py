"""Reconfigurable-supercomputing cluster model.

The paper closes on "the next platforms involved in reconfigurable super
computing": many multi-core hosts, each with reconfigurable resources,
and the open question of dispatching work between cores and FPGAs.  This
module scales the validated single-blade models out to a cluster:

* the protein bank is partitioned across blades (residue-balanced LPT,
  like the 2-FPGA experiment within a blade);
* each blade runs the accelerated pipeline on its shard — both its FPGAs
  on step 2 (or a PSC+GXP dual design), its host cores on steps 1 and 3;
* the cluster wall time is the slowest blade plus a merge term
  proportional to total reported alignments.

All timing reuses the per-blade models; nothing new is calibrated.  This
is a *model*, not a scheduler: it answers sizing questions ("how many
blades before indexing dominates?") with the same statistics that drive
Tables 2-4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..psc.schedule import PscArrayConfig, schedule_cycles
from .dual_design import HostDispatch
from .host import HostCostModel

__all__ = ["BladeSpec", "ClusterModel", "ClusterProjection"]


@dataclass(frozen=True)
class BladeSpec:
    """One node: host cores + FPGAs with PE arrays."""

    n_fpgas: int = 2
    pes_per_fpga: int = 192
    host_cores: int = 4
    parallel_fraction: float = 0.9

    def dispatch(self) -> HostDispatch:
        """The blade's host-dispatch model."""
        return HostDispatch(self.host_cores, self.parallel_fraction)


@dataclass(frozen=True)
class ClusterProjection:
    """Projected cluster execution of one workload."""

    n_blades: int
    per_blade_seconds: list[float]
    merge_seconds: float

    @property
    def wall_seconds(self) -> float:
        """Slowest blade plus the merge."""
        return max(self.per_blade_seconds) + self.merge_seconds


class ClusterModel:
    """Scale-out projection built on the blade-level cost models."""

    #: Seconds to merge one million reported alignments on the front end.
    MERGE_S_PER_M_ALIGNMENTS = 2.0

    def __init__(
        self,
        blade: BladeSpec,
        host: HostCostModel,
        window: int = 28,
        pair_overhead_cycles: float = 0.0,
    ) -> None:
        self.blade = blade
        self.host = host
        self.window = window
        self.pair_overhead_cycles = pair_overhead_cycles

    def blade_seconds(
        self,
        k0s: np.ndarray,
        k1s: np.ndarray,
        step1_residues: int,
        step3_cells: int,
    ) -> float:
        """Modelled end-to-end time of one blade's shard."""
        dispatch = self.blade.dispatch()
        step1 = dispatch.seconds(self.host.step1_seconds(step1_residues))
        step3 = dispatch.seconds(self.host.step3_seconds(step3_cells))
        # Step 2 split across the blade's FPGAs by binomial K0 thinning.
        rng = np.random.default_rng(k0s.shape[0] + 1)
        shards = []
        remaining = k0s.copy()
        for f in range(self.blade.n_fpgas - 1):
            take = rng.binomial(remaining, 1.0 / (self.blade.n_fpgas - f))
            shards.append(take)
            remaining = remaining - take
        shards.append(remaining)
        cfg = PscArrayConfig(n_pes=self.blade.pes_per_fpga, window=self.window)
        step2 = 0.0
        for shard in shards:
            keep = shard > 0
            b = schedule_cycles(shard[keep], k1s[keep], cfg)
            cycles = b.total_cycles + self.pair_overhead_cycles * b.busy_pe_cycles / cfg.n_pes
            step2 = max(step2, cfg.seconds(cycles))
        return step1 + step2 + step3

    def project(
        self,
        n_blades: int,
        k0s: np.ndarray,
        k1s: np.ndarray,
        bank_residues: int,
        genome_residues: int,
        step3_cells: int,
        n_alignments: int,
        rng_seed: int = 5,
    ) -> ClusterProjection:
        """Project the workload across *n_blades*.

        The bank shard each blade receives thins every K0 binomially
        (1/n of the bank each); subject-side work (K1, step-1 genome
        residues) is replicated on every blade, which is the paper's own
        deployment shape (each process compares its shard against the
        full genome).
        """
        if n_blades < 1:
            raise ValueError("n_blades must be >= 1")
        rng = np.random.default_rng(rng_seed)
        per_blade = []
        remaining = k0s.copy()
        for b in range(n_blades):
            if b == n_blades - 1:
                shard = remaining
            else:
                shard = rng.binomial(remaining, 1.0 / (n_blades - b))
                remaining = remaining - shard
            keep = shard > 0
            per_blade.append(
                self.blade_seconds(
                    shard[keep],
                    k1s[keep],
                    # Each blade indexes its bank shard plus the full
                    # (replicated) genome side.
                    bank_residues // n_blades + genome_residues,
                    step3_cells // n_blades,
                )
            )
        merge = n_alignments / 1e6 * self.MERGE_S_PER_M_ALIGNMENTS
        return ClusterProjection(
            n_blades=n_blades, per_blade_seconds=per_blade, merge_seconds=merge
        )
