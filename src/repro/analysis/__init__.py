"""Correctness tooling: the ``repro-check`` AST lint (RC rules) and the
opt-in runtime ndarray contracts (``REPRO_CONTRACTS=1``).

The parallel step-2 engine's headline guarantee — a bit-identical merge for
any worker count — is an invariant of the *code*, not of any test input.
This package machine-checks the code properties that guarantee rests on:
seeded randomness, explicit hot-path dtypes, no mutable defaults, monotonic
timing, and fully annotated public hot-path APIs.
"""

from .checker import CheckResult, check_paths, collect_files
from .contracts import (
    ArraySpec,
    ContractError,
    check_array,
    contracted,
    contracts_enabled,
)
from .rules import REGISTRY, FileContext, Rule, Violation, register

__all__ = [
    "ArraySpec",
    "CheckResult",
    "ContractError",
    "FileContext",
    "REGISTRY",
    "Rule",
    "Violation",
    "check_array",
    "check_paths",
    "collect_files",
    "contracted",
    "contracts_enabled",
    "register",
]
