"""Correctness tooling: the ``repro-check`` AST lint (RC rules) and the
opt-in runtime ndarray contracts (``REPRO_CONTRACTS=1``).

The parallel step-2 engine's headline guarantee — a bit-identical merge for
any worker count — is an invariant of the *code*, not of any test input.
This package machine-checks the code properties that guarantee rests on:
seeded randomness, explicit hot-path dtypes, no mutable defaults, monotonic
timing, and fully annotated public hot-path APIs (RC001–RC005), plus
cross-module project rules over a call-graph/taint substrate (RC100–RC104:
nondeterministic order reaching the merge, fork-unsafe module state,
shared-memory lifecycle, unordered float reductions, ad-hoc retry loops).
The runtime counterpart is the determinism sanitizer
(:mod:`repro.analysis.determinism`, ``REPRO_DETSAN=1``): per-stage digest
manifests and the ``repro-check --verify-determinism`` two-run harness.
"""

from .baseline import Baseline, load_baseline, write_baseline
from .checker import CheckResult, check_paths, collect_files
from .contracts import (
    ArraySpec,
    ContractError,
    check_array,
    contracted,
    contracts_enabled,
)
from .determinism import (
    DetsanRecorder,
    detsan_enabled,
    diff_manifests,
    verify_pipeline_determinism,
)
from .rules import REGISTRY, FileContext, ProjectRule, Rule, Violation, register

__all__ = [
    "ArraySpec",
    "Baseline",
    "CheckResult",
    "ContractError",
    "DetsanRecorder",
    "FileContext",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "Violation",
    "check_array",
    "check_paths",
    "collect_files",
    "contracted",
    "contracts_enabled",
    "detsan_enabled",
    "diff_manifests",
    "load_baseline",
    "register",
    "verify_pipeline_determinism",
    "write_baseline",
]
