"""RC300-series rules: thread/lock/signal discipline over the serve stack.

==========  ==============================================================
RC300       A thread-shared mutable field (instance attribute of a
            published object, or a mutable module global) is accessed
            with *inconsistent locksets* — the intersection of the locks
            held across all its accesses is empty while at least two
            thread roots can reach it and at least one access is a write.
            This is the static shape of PR 8's drain race: the dispatcher
            wrote the busy flag outside the dequeue lock that drain's
            idle check sampled under.
RC301       The lock-order graph (lock A held while acquiring lock B,
            locally or through a callee) contains a cycle — two threads
            taking the locks in opposite orders can deadlock.
RC302       A ``signal.signal`` handler does more than set a flag and
            kick a thread: attribute/global mutation, lock acquisition,
            or any call outside a small async-signal-safe allowlist.
            This encodes the invariant ``serve/server.py`` documents by
            hand ("the signal handler only sets a flag and kicks the
            shutdown thread").
RC303       An ``Event.wait``/``Condition.wait`` result is discarded with
            no predicate re-check loop — a lost or spurious wakeup then
            silently corrupts the protocol.  ``Condition.wait`` must sit
            lexically inside a ``while``; a discarded ``Event.wait`` is
            fine inside a loop, or on a module-level event that is never
            ``set()`` anywhere (the sanctioned interruptible-sleep
            idiom), but a fresh ``threading.Event().wait(t)`` per sleep
            is always wrong.
RC304       A process pool is forked while a lock is held (directly, or
            through a callee that reaches a fork point) — the child
            inherits the lock in a possibly-locked state and deadlocks
            on first acquire.  Extends RC101's fork discipline from
            module globals to instance state.
==========  ==============================================================

All five consume :mod:`repro.analysis.locks` — the thread-root model and
the interprocedural lockset fixpoint — via ``ProjectAnalyses.locks``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from .graph import FunctionInfo, ProjectGraph, dotted_name
from .locks import FORK_CONSTRUCTORS, LockAnalysis, find_lock_cycle
from .rules import ProjectRule, Violation, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flows import ProjectAnalyses

__all__ = [
    "InconsistentLocksetRule",
    "LockOrderCycleRule",
    "SignalHandlerPurityRule",
    "UncheckedWaitRule",
    "ForkWhileLockedRule",
]

#: Method leaves a signal handler may call: event flag-set, thread kick,
#: logging (CPython's logging is re-entrant enough for a one-line notice,
#: and the serve drain handler depends on it), and cheap predicates.
_SIGNAL_SAFE_LEAVES: frozenset[str] = frozenset(
    {
        "set",
        "is_set",
        "start",
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
        "log",
    }
)

#: Full dotted calls a signal handler may make.
_SIGNAL_SAFE_CALLS: frozenset[str] = frozenset(
    {
        "threading.Thread",
        "os.kill",
        "os.write",
        "os.getpid",
        "os._exit",
        "callable",
        "isinstance",
        "len",
        "str",
        "int",
        "getattr",
    }
)


def _module_path(graph: ProjectGraph, module: str) -> Path:
    return graph.modules[module].ctx.path


@register
class InconsistentLocksetRule(ProjectRule):
    """RC300 — shared mutable state needs one consistently-held lock."""

    code = "RC300"
    summary = (
        "a thread-shared mutable field (published instance attribute or "
        "mutable module global) is written with an empty lockset "
        "intersection across its accesses while reachable from two or "
        "more thread roots; every access must hold one common lock"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        analysis: LockAnalysis = project.locks
        model, threads = analysis.model, analysis.threads
        graph = analysis.model.graph
        worker_labels = {r.label for r in threads.roots if r.kind == "worker"}
        confined = self._confined_methods(analysis)
        fields = model.field_accesses()
        for fname in sorted(fields):
            accesses = fields[fname]
            prefix, _, _attr = fname.rpartition(".")
            scope, _, cls = prefix.rpartition(".")
            owner = graph.modules.get(scope)
            if owner is not None and cls in owner.classes:
                # Instance field: only flag classes the thread model can
                # actually prove are published to more than one thread,
                # and only through methods invoked on shared receivers —
                # a method called exclusively on thread-confined
                # instances (``health.merge(...)`` on a per-run local)
                # mutates state no second thread can see.
                if prefix not in threads.shared_classes:
                    continue
                accesses = [a for a in accesses if a.func not in confined]
                if not accesses:
                    continue
            roots: set[str] = set()
            for access in accesses:
                roots |= model.runs_on(access.func)
            spawned = roots - {"main"} - worker_labels
            if not spawned:
                continue
            writes = [a for a in accesses if a.write]
            if not writes:
                continue
            guard = None
            for access in accesses:
                held = model.effective_held(access)
                guard = held if guard is None else guard & held
            if guard:
                continue
            witness = min(
                writes,
                key=lambda a: (model.field_path(a), getattr(a.node, "lineno", 0)),
            )
            labels = ", ".join(sorted(roots - worker_labels))
            yield self.violation_at(
                model.field_path(witness),
                witness.node,
                f"shared field `{fname}` is written without a consistently-"
                f"held lock while reachable from thread roots [{labels}]; "
                "guard every access with one common lock (or make the "
                "field a synchronisation primitive)",
            )

    def _confined_methods(self, analysis: LockAnalysis) -> set[str]:
        """Methods every resolved call site invokes on a confined receiver.

        The static analogue of Eraser's initialization-phase exemption:
        ``RunHealth`` is thread-shared (published as ``pool.last_health``),
        but ``merge()`` only ever runs on per-run locals rooted in
        thread-confined owners, so its ``self`` writes need no lock.
        Thread-root seeds are never confined (their receiver is shared by
        construction), and a method with no resolved incoming calls gets
        no exemption.
        """
        model, threads = analysis.model, analysis.threads
        graph = model.graph
        seeds: set[str] = set()
        for root in threads.roots:
            seeds |= root.seeds
        incoming: dict[str, list[bool | None]] = {}
        for summary in model.summaries.values():
            for event in summary.calls:
                if event.callee is not None:
                    incoming.setdefault(event.callee, []).append(
                        event.receiver_shared
                    )
        confined: set[str] = set()
        for qual, flags in incoming.items():
            info = graph.functions.get(qual)
            if info is None or info.class_name is None or qual in seeds:
                continue
            if not any(flag is True for flag in flags):
                confined.add(qual)
        return confined


@register
class LockOrderCycleRule(ProjectRule):
    """RC301 — the lock acquisition order graph must be acyclic."""

    code = "RC301"
    summary = (
        "cycle in the lock-order graph (lock A held while acquiring lock "
        "B, directly or through a callee, and vice versa elsewhere): two "
        "threads taking the locks in opposite orders deadlock; acquire "
        "locks in one global order"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        analysis: LockAnalysis = project.locks
        model = analysis.model
        cycle = find_lock_cycle(model.order_edges.keys())
        if cycle is None:
            return
        func, node = model.order_edges[(cycle[0], cycle[1])]
        info = model.graph.functions[func]
        yield self.violation_at(
            _module_path(model.graph, info.module),
            node,
            "lock acquisition order cycle: "
            + " -> ".join(cycle)
            + "; acquire locks in one fixed global order to rule out "
            "deadlock",
        )


@register
class SignalHandlerPurityRule(ProjectRule):
    """RC302 — signal handlers only set a flag and kick a thread."""

    code = "RC302"
    summary = (
        "a signal handler does more than flag-set + thread-kick "
        "(mutates attributes/globals, acquires a lock, or calls outside "
        "the async-signal-safe allowlist); run real work on a thread the "
        "handler starts, never in signal context"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        analysis: LockAnalysis = project.locks
        threads, model = analysis.threads, analysis.model
        graph = model.graph
        for handler in threads.signal_handlers:
            owner = handler.owner
            if handler.qualname is not None:
                owner = graph.functions[handler.qualname]
            path = _module_path(graph, handler.owner.module)
            site_of = {id(s.node): s for s in owner.calls}
            yield from self._check_handler(handler.node, path, site_of, owner)

    def _check_handler(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        path: Path,
        site_of: dict[int, object],
        owner: FunctionInfo,
    ) -> Iterator[Violation]:
        name = node.name
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        yield self.violation_at(
                            path,
                            sub,
                            f"signal handler {name}() mutates shared state; "
                            "set a threading.Event and do the work on a "
                            "thread instead",
                        )
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                yield self.violation_at(
                    path,
                    sub,
                    f"signal handler {name}() enters a context manager "
                    "(lock acquisition is not async-signal-safe)",
                )
            elif isinstance(sub, ast.Call):
                raw = dotted_name(sub.func)
                site = site_of.get(id(sub))
                expanded = getattr(site, "raw", None) or raw
                leaf = (
                    sub.func.attr
                    if isinstance(sub.func, ast.Attribute)
                    else (expanded or "").rpartition(".")[2]
                )
                if leaf == "acquire":
                    yield self.violation_at(
                        path,
                        sub,
                        f"signal handler {name}() acquires a lock; a "
                        "handler interrupting the lock's holder deadlocks",
                    )
                    continue
                if leaf in _SIGNAL_SAFE_LEAVES:
                    # Allowlisted by method name even when the receiver is
                    # dynamic (``Thread(...).start()`` — the thread kick).
                    continue
                if expanded is None:
                    yield self.violation_at(
                        path,
                        sub,
                        f"signal handler {name}() makes a dynamic call; "
                        "only flag-set + thread-kick are async-signal-safe",
                    )
                    continue
                if expanded in _SIGNAL_SAFE_CALLS or expanded.startswith(
                    "signal."
                ):
                    continue
                yield self.violation_at(
                    path,
                    sub,
                    f"signal handler {name}() calls {expanded}() which is "
                    "not in the async-signal-safe allowlist; set a flag "
                    "and run it on a thread",
                )


@register
class UncheckedWaitRule(ProjectRule):
    """RC303 — wait results feed a predicate re-check, never thin air."""

    code = "RC303"
    summary = (
        "Event.wait/Condition.wait used without a predicate re-check: "
        "Condition.wait outside a while loop, a discarded Event.wait "
        "outside a loop (lost wakeup), or a throwaway "
        "threading.Event().wait(t) sleep — hoist one module-level "
        "never-set event for sleeps"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        analysis: LockAnalysis = project.locks
        threads, model = analysis.threads, analysis.model
        graph = model.graph
        set_receivers = self._set_receivers(graph)
        for info in graph.functions.values():
            parents: dict[int, ast.AST] = {}
            for parent in ast.walk(info.node):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            site_of = {id(s.node): s for s in info.calls}
            for node in ast.walk(info.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "wait"
                ):
                    continue
                yield from self._check_wait(
                    info, node, parents, site_of, set_receivers, analysis
                )

    def _set_receivers(self, graph: ProjectGraph) -> set[str]:
        """Dotted receivers on which ``.set()`` is ever called, expanded."""
        out: set[str] = set()
        for info in graph.functions.values():
            for site in info.calls:
                raw = site.raw
                if raw is None or not raw.endswith(".set"):
                    continue
                receiver = raw[: -len(".set")]
                out.add(receiver)
                if "." not in receiver:
                    out.add(f"{info.module}.{receiver}")
        return out

    def _check_wait(
        self,
        info: FunctionInfo,
        node: ast.Call,
        parents: dict[int, ast.AST],
        site_of: dict[int, object],
        set_receivers: set[str],
        analysis: LockAnalysis,
    ) -> Iterator[Violation]:
        threads, model = analysis.threads, analysis.model
        graph = model.graph
        path = _module_path(graph, info.module)
        assert isinstance(node.func, ast.Attribute)
        recv = node.func.value
        if isinstance(recv, ast.Call):
            inner = site_of.get(id(recv))
            raw = getattr(inner, "raw", None) or dotted_name(recv.func)
            if raw == "threading.Event":
                yield self.violation_at(
                    path,
                    node,
                    "throwaway threading.Event().wait() per sleep allocates "
                    "an event and a lock each call; hoist one module-level "
                    "never-set Event and wait on that",
                )
            return
        kind = self._receiver_kind(info, recv, analysis)
        if kind is None:
            return
        in_while = self._inside_while(node, parents)
        if kind == "condition":
            if not in_while:
                yield self.violation_at(
                    path,
                    node,
                    "Condition.wait() outside a while-predicate loop: a "
                    "spurious or stolen wakeup breaks the protocol; loop "
                    "on the predicate",
                )
            return
        if self._consumed(node, parents) or in_while:
            return
        raw = dotted_name(recv)
        if raw is not None and "." not in raw:
            qualified = f"{info.module}.{raw}"
            if (
                (info.module, raw) in threads.sync_globals
                and raw not in set_receivers
                and qualified not in set_receivers
            ):
                # Sanctioned sleep: a module-level event nothing ever sets.
                return
        yield self.violation_at(
            path,
            node,
            "Event.wait() result discarded outside a re-check loop: a "
            "missed or early set() is silently lost; check the return "
            "value or loop on the predicate",
        )

    def _receiver_kind(
        self, info: FunctionInfo, recv: ast.expr, analysis: LockAnalysis
    ) -> str | None:
        threads, model = analysis.threads, analysis.model
        raw = dotted_name(recv)
        if raw is None:
            return None
        if raw.startswith("self.") and info.class_name is not None:
            attr = raw[len("self.") :]
            if "." not in attr:
                prefix = f"{info.module}.{info.class_name}"
                if (prefix, attr) in model.condition_fields:
                    return "condition"
                if threads.sync_fields.get((prefix, attr)) == "sync":
                    return "event"
                return None
        if isinstance(recv, ast.Attribute):
            base = threads.type_of(info, recv.value)
            if base is not None:
                if (base, recv.attr) in model.condition_fields:
                    return "condition"
                if threads.sync_fields.get((base, recv.attr)) == "sync":
                    return "event"
            return None
        if isinstance(recv, ast.Name):
            kind = threads.sync_globals.get((info.module, recv.id))
            if kind == "sync":
                return "event"
            if kind == "lock":
                return "condition"
        return None

    def _inside_while(self, node: ast.AST, parents: dict[int, ast.AST]) -> bool:
        cur: ast.AST | None = parents.get(id(node))
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if isinstance(cur, (ast.While, ast.For)):
                return True
            cur = parents.get(id(cur))
        return False

    def _consumed(self, node: ast.AST, parents: dict[int, ast.AST]) -> bool:
        cur = node
        parent = parents.get(id(cur))
        while isinstance(parent, (ast.BoolOp, ast.UnaryOp, ast.Compare, ast.IfExp)):
            cur = parent
            parent = parents.get(id(cur))
        return not isinstance(parent, ast.Expr)


@register
class ForkWhileLockedRule(ProjectRule):
    """RC304 — never fork a process pool while holding a lock."""

    code = "RC304"
    summary = (
        "a process pool is created while a lock is held (directly or "
        "through a callee reaching a fork point); the forked child "
        "inherits the lock possibly-locked and deadlocks on first "
        "acquire — release locks before forking"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        analysis: LockAnalysis = project.locks
        model = analysis.model
        graph = model.graph
        for qual in sorted(model.summaries):
            summary = model.summaries[qual]
            entry = model.entry.get(qual, frozenset())
            info = graph.functions[qual]
            path = _module_path(graph, info.module)
            for event in summary.calls:
                held = entry | event.held
                if not held:
                    continue
                locks = ", ".join(sorted(held))
                if event.raw in FORK_CONSTRUCTORS:
                    yield self.violation_at(
                        path,
                        event.node,
                        f"{info.name}() creates a process pool while "
                        f"holding [{locks}]; the forked child inherits the "
                        "lock possibly-locked — build the pool outside the "
                        "lock and publish it under the lock",
                    )
                elif (
                    event.callee is not None
                    and event.callee != qual
                    and event.callee in model.fork_reaching
                ):
                    leaf = event.callee.rpartition(".")[2]
                    yield self.violation_at(
                        path,
                        event.node,
                        f"{info.name}() calls {leaf}() while holding "
                        f"[{locks}], and {leaf}() can reach a process-pool "
                        "fork point; release the lock before forking",
                    )
