"""Numpy-aware dtype / value-range abstract domain (stdlib ``ast`` only).

The RC2xx kernel rules need answers to questions like "what dtype does this
accumulator actually have?" and "can ``window × max|score|`` overflow it?"
*without importing numpy* — the repro-check CI job runs dependency-free.
This module is the substrate: a small abstract-interpretation toolkit over
the project AST.

* :class:`ValueRange` — an integer interval lattice (``None`` bounds are
  ±∞) with ``join`` (least upper bound) and ``widen`` (the classic
  interval widening: any bound that moved goes straight to infinity, so
  fixpoints terminate).
* :class:`AbstractValue` — what an expression may evaluate to: a numpy
  array of a known dtype, a Python scalar, a dtype literal
  (``np.int16`` / ``np.dtype("int16")``), or unknown.
* :class:`Evaluator` / :func:`interpret` — expression evaluation and a
  linear statement walk building local/attribute environments; branches
  join, loop bodies widen against the pre-state.
* :class:`DtypeAnalysis` — per-function return-value and accumulator-dtype
  summaries, solved as a bounded fixpoint over the
  :class:`~repro.analysis.graph.ProjectGraph` call edges so a kernel whose
  ``score`` simply returns ``ungapped_scores_paired(...)`` inherits that
  callee's accumulator dtype.
* :func:`matrix_score_bound` / :func:`default_window` — static extraction
  of the two numbers RC200's overflow proof needs, straight from the
  project source: the maximum ``|score|`` over every bundled NCBI matrix
  text (gap sentinel included) and the default ``W + 2N`` window width
  (evaluated from ``UngappedConfig``'s own ``window`` property body, so
  the proof tracks the real formula, not a copy of it).

Everything is deliberately conservative: unknown stays unknown, joins of
disagreeing dtypes forget the dtype, and rules built on top must treat
"no information" as "no finding".
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, replace

from .graph import FunctionInfo, ProjectGraph, dotted_name

__all__ = [
    "DTYPE_BOUNDS",
    "AbstractValue",
    "DtypeAnalysis",
    "Env",
    "Evaluator",
    "ValueRange",
    "call_arg_env",
    "class_attr_env",
    "default_window",
    "dtype_bounds",
    "interpret",
    "matrix_score_bound",
    "promote",
]

#: Integer dtype → (min, max); the stdlib stand-in for ``np.iinfo``.
DTYPE_BOUNDS: dict[str, tuple[int, int]] = {
    "bool": (0, 1),
    "int8": (-(1 << 7), (1 << 7) - 1),
    "int16": (-(1 << 15), (1 << 15) - 1),
    "int32": (-(1 << 31), (1 << 31) - 1),
    "int64": (-(1 << 63), (1 << 63) - 1),
    "uint8": (0, (1 << 8) - 1),
    "uint16": (0, (1 << 16) - 1),
    "uint32": (0, (1 << 32) - 1),
    "uint64": (0, (1 << 64) - 1),
}

_SIGNED = ("int8", "int16", "int32", "int64")
_UNSIGNED = ("uint8", "uint16", "uint32", "uint64")
_FLOATS = ("float16", "float32", "float64")

#: Names accepted as dtype literals in ``np.<name>`` / ``dtype="<name>"``.
_DTYPE_NAMES = frozenset(DTYPE_BOUNDS) | set(_FLOATS) | {"intp", "float_"}

_DTYPE_CANON = {"intp": "int64", "float_": "float64"}


def dtype_bounds(name: str) -> tuple[int, int] | None:
    """(min, max) of an integer dtype name, ``None`` for floats/unknown."""
    return DTYPE_BOUNDS.get(_DTYPE_CANON.get(name, name))


def _bits(name: str) -> int:
    return int("".join(ch for ch in name if ch.isdigit()) or 64)


def promote(a: str, b: str) -> str | None:
    """Result dtype of combining two numpy dtypes (NEP-50 style).

    Returns ``None`` when the promotion is outside the modelled table
    (callers must treat that as unknown, never as "same dtype").
    """
    a, b = _DTYPE_CANON.get(a, a), _DTYPE_CANON.get(b, b)
    if a == b:
        return a
    if a == "bool":
        return b if b in DTYPE_BOUNDS or b in _FLOATS else None
    if b == "bool":
        return a if a in DTYPE_BOUNDS or a in _FLOATS else None
    if a in _FLOATS or b in _FLOATS:
        if a in _FLOATS and b in _FLOATS:
            return a if _bits(a) >= _bits(b) else b
        flt = a if a in _FLOATS else b
        return flt if _bits(flt) >= 32 else "float32"
    if a in _SIGNED and b in _SIGNED:
        return a if _bits(a) >= _bits(b) else b
    if a in _UNSIGNED and b in _UNSIGNED:
        return a if _bits(a) >= _bits(b) else b
    if {a, b} <= set(_SIGNED) | set(_UNSIGNED):
        signed, unsigned = (a, b) if a in _SIGNED else (b, a)
        if _bits(signed) > _bits(unsigned):
            return signed
        wider = f"int{_bits(unsigned) * 2}"
        return wider if wider in _SIGNED else "float64"
    return None


@dataclass(frozen=True)
class ValueRange:
    """Closed integer interval; a ``None`` bound means ±∞."""

    lo: int | None = None
    hi: int | None = None

    @staticmethod
    def const(value: int) -> ValueRange:
        """Singleton interval ``[value, value]``."""
        return ValueRange(value, value)

    @property
    def is_top(self) -> bool:
        """True for the unbounded interval."""
        return self.lo is None and self.hi is None

    def contains(self, other: ValueRange) -> bool:
        """Interval inclusion (the lattice partial order)."""
        lo_ok = self.lo is None or (other.lo is not None and other.lo >= self.lo)
        hi_ok = self.hi is None or (other.hi is not None and other.hi <= self.hi)
        return lo_ok and hi_ok

    def join(self, other: ValueRange) -> ValueRange:
        """Least upper bound: the convex hull of the two intervals."""
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return ValueRange(lo, hi)

    def widen(self, other: ValueRange) -> ValueRange:
        """Classic interval widening: a bound that moved jumps to ∞.

        ``a.widen(b)`` over-approximates ``a.join(b)`` and guarantees any
        ascending chain ``a, a.widen(b1), a.widen(b1).widen(b2), ...``
        stabilises after at most two steps per side.
        """
        lo = self.lo if (
            self.lo is not None and other.lo is not None and other.lo >= self.lo
        ) else None
        hi = self.hi if (
            self.hi is not None and other.hi is not None and other.hi <= self.hi
        ) else None
        return ValueRange(lo, hi)

    def clip(self, bounds: tuple[int, int]) -> ValueRange:
        """Intersect with dtype bounds (the effect of a cast that fits)."""
        lo, hi = bounds
        new_lo = lo if self.lo is None else max(self.lo, lo)
        new_hi = hi if self.hi is None else min(self.hi, hi)
        if new_lo > new_hi:  # disjoint: the cast wraps — give up precisely
            return ValueRange(lo, hi)
        return ValueRange(new_lo, new_hi)

    # -- interval arithmetic -------------------------------------------
    def add(self, other: ValueRange) -> ValueRange:
        """Interval sum."""
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return ValueRange(lo, hi)

    def sub(self, other: ValueRange) -> ValueRange:
        """Interval difference."""
        lo = None if self.lo is None or other.hi is None else self.lo - other.hi
        hi = None if self.hi is None or other.lo is None else self.hi - other.lo
        return ValueRange(lo, hi)

    def neg(self) -> ValueRange:
        """Interval negation."""
        lo = None if self.hi is None else -self.hi
        hi = None if self.lo is None else -self.lo
        return ValueRange(lo, hi)

    def mul(self, other: ValueRange) -> ValueRange:
        """Interval product (unbounded if any corner is unbounded)."""
        if None in (self.lo, self.hi, other.lo, other.hi):
            return TOP_RANGE
        assert self.lo is not None and self.hi is not None
        assert other.lo is not None and other.hi is not None
        corners = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        return ValueRange(min(corners), max(corners))

    def abs(self) -> ValueRange:
        """Interval absolute value."""
        if self.lo is not None and self.lo >= 0:
            return self
        if self.hi is not None and self.hi <= 0:
            return self.neg()
        hi = (
            None
            if self.lo is None or self.hi is None
            else max(abs(self.lo), abs(self.hi))
        )
        return ValueRange(0, hi)

    def max_abs(self) -> int | None:
        """Largest magnitude in the interval, ``None`` if unbounded."""
        r = self.abs()
        return r.hi


#: The unbounded interval (lattice top).
TOP_RANGE = ValueRange(None, None)


@dataclass(frozen=True)
class AbstractValue:
    """What one expression may evaluate to.

    ``kind`` is one of ``"array"`` (a numpy array of dtype ``dtype``),
    ``"scalar"`` (a Python int/float/bool; ``dtype`` is ``None``),
    ``"dtype"`` (a dtype *literal* such as ``np.int16``), or ``"unknown"``.
    """

    kind: str = "unknown"
    dtype: str | None = None
    range: ValueRange = TOP_RANGE

    @staticmethod
    def unknown() -> AbstractValue:
        """The no-information element (lattice top)."""
        return _UNKNOWN

    @staticmethod
    def scalar(rng: ValueRange = TOP_RANGE) -> AbstractValue:
        """A Python scalar with the given range."""
        return AbstractValue(kind="scalar", range=rng)

    @staticmethod
    def array(dtype: str | None, rng: ValueRange = TOP_RANGE) -> AbstractValue:
        """A numpy array of the given dtype/range."""
        return AbstractValue(kind="array", dtype=dtype, range=rng)

    @staticmethod
    def dtype_literal(name: str) -> AbstractValue:
        """A dtype object/scalar-type literal."""
        return AbstractValue(kind="dtype", dtype=name)

    @property
    def is_unknown(self) -> bool:
        """True for the no-information element."""
        return self.kind == "unknown"

    def join(self, other: AbstractValue) -> AbstractValue:
        """Least upper bound; disagreeing kinds/dtypes forget themselves."""
        if self.is_unknown or other.is_unknown:
            return _UNKNOWN
        if self.kind != other.kind:
            return _UNKNOWN
        dtype = self.dtype if self.dtype == other.dtype else None
        return AbstractValue(
            kind=self.kind, dtype=dtype, range=self.range.join(other.range)
        )

    def widen(self, other: AbstractValue) -> AbstractValue:
        """Widening counterpart of :meth:`join` (ranges widen, rest joins)."""
        joined = self.join(other)
        if joined.is_unknown:
            return joined
        return replace(joined, range=self.range.widen(other.range))


_UNKNOWN = AbstractValue()

#: Environment: local names plus dotted ``self.attr`` pseudo-names.
Env = dict[str, AbstractValue]

#: Binary ufuncs whose ``out=`` argument fixes the result dtype.
_BINARY_UFUNCS = {
    "add": "add",
    "subtract": "sub",
    "multiply": "mul",
    "maximum": "max",
    "minimum": "min",
}

#: Array constructors RC002 also knows about, with their value ranges.
_CONSTRUCTOR_FUNCS = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "zeros_like", "empty_like"}
)


def _np_attr_dtype(raw: str | None) -> str | None:
    """``np.int16`` / ``numpy.float64`` → dtype name, else ``None``."""
    if raw is None or "." not in raw:
        return None
    head, _, leaf = raw.rpartition(".")
    if head in ("np", "numpy") and leaf in _DTYPE_NAMES:
        return _DTYPE_CANON.get(leaf, leaf)
    return None


class Evaluator:
    """Evaluates expressions to :class:`AbstractValue` under an ``Env``.

    ``callee_summary`` (when given) maps a call node to the return-value
    summary of the project function it resolves to, making the evaluation
    interprocedural; without it project calls are unknown.
    """

    def __init__(
        self,
        env: Env,
        callee_summary: Callable[[ast.Call], AbstractValue | None] | None = None,
    ) -> None:
        self.env = env
        self.callee_summary = callee_summary

    # -- dtype expressions ---------------------------------------------
    def dtype_of(self, node: ast.expr) -> str | None:
        """Resolve an expression *denoting a dtype* to a dtype name."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
            return _DTYPE_CANON.get(name, name) if name in _DTYPE_NAMES else None
        raw = dotted_name(node)
        literal = _np_attr_dtype(raw)
        if literal is not None:
            return literal
        if raw is not None:
            bound = self.env.get(raw)
            if bound is not None and bound.kind == "dtype":
                return bound.dtype
        if isinstance(node, ast.Call):
            fn = dotted_name(node.func)
            if fn is not None and fn.rpartition(".")[2] == "dtype" and node.args:
                return self.dtype_of(node.args[0])
        return None

    # -- expression evaluation -----------------------------------------
    def eval(self, node: ast.expr) -> AbstractValue:
        """Abstract value of one expression."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return AbstractValue.scalar(ValueRange.const(int(node.value)))
            if isinstance(node.value, int):
                return AbstractValue.scalar(ValueRange.const(node.value))
            if isinstance(node.value, float):
                return AbstractValue.scalar()
            return _UNKNOWN
        if isinstance(node, (ast.Name, ast.Attribute)):
            raw = dotted_name(node)
            if raw is None:
                return _UNKNOWN
            literal = _np_attr_dtype(raw)
            if literal is not None:
                return AbstractValue.dtype_literal(literal)
            return self.env.get(raw, _UNKNOWN)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self.eval(node.operand)
            return replace(inner, range=inner.range.neg())
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            if base.kind == "array":
                return base  # slicing/indexing preserves dtype and range
            return _UNKNOWN
        if isinstance(node, ast.IfExp):
            return self.eval(node.body).join(self.eval(node.orelse))
        if isinstance(node, ast.Compare):
            return AbstractValue.scalar(ValueRange(0, 1))
        return _UNKNOWN

    def _eval_binop(self, node: ast.BinOp) -> AbstractValue:
        left, right = self.eval(node.left), self.eval(node.right)
        if isinstance(node.op, ast.Add):
            rng = left.range.add(right.range)
        elif isinstance(node.op, ast.Sub):
            rng = left.range.sub(right.range)
        elif isinstance(node.op, ast.Mult):
            rng = left.range.mul(right.range)
        else:
            rng = TOP_RANGE
        return self._combine(left, right, rng)

    @staticmethod
    def _combine(
        left: AbstractValue, right: AbstractValue, rng: ValueRange
    ) -> AbstractValue:
        """Result of an arithmetic combination (NEP-50 dtype semantics)."""
        kinds = {left.kind, right.kind}
        if "array" in kinds:
            if left.kind == right.kind == "array":
                if left.dtype is None or right.dtype is None:
                    dtype = None
                else:
                    dtype = promote(left.dtype, right.dtype)
            else:
                arr = left if left.kind == "array" else right
                # Python scalars do not promote the array dtype (NEP 50);
                # the value simply wraps into it, so clip the range.
                dtype = arr.dtype
            if dtype is not None:
                bounds = dtype_bounds(dtype)
                if bounds is not None:
                    rng = rng.clip(bounds)
            return AbstractValue.array(dtype, rng)
        if kinds == {"scalar"}:
            return AbstractValue.scalar(rng)
        return _UNKNOWN

    def _eval_call(self, node: ast.Call) -> AbstractValue:
        raw = dotted_name(node.func)
        if raw is None:
            return _UNKNOWN
        head, _, leaf = raw.rpartition(".")
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        if head in ("np", "numpy"):
            return self._eval_numpy_call(node, leaf, kwargs)
        if leaf == "astype" and head:
            source = self.eval(node.func.value) if isinstance(
                node.func, ast.Attribute
            ) else _UNKNOWN
            target = None
            if node.args:
                target = self.dtype_of(node.args[0])
            elif "dtype" in kwargs:
                target = self.dtype_of(kwargs["dtype"])
            if target is None:
                return AbstractValue.array(None)
            bounds = dtype_bounds(target)
            rng = source.range.clip(bounds) if bounds else TOP_RANGE
            return AbstractValue.array(target, rng)
        if raw in ("int", "abs", "len", "min", "max", "sum", "round"):
            return AbstractValue.scalar()
        if self.callee_summary is not None:
            summary = self.callee_summary(node)
            if summary is not None:
                return summary
        return _UNKNOWN

    def _eval_numpy_call(
        self, node: ast.Call, leaf: str, kwargs: dict[str, ast.expr]
    ) -> AbstractValue:
        dtype: str | None = None
        if "dtype" in kwargs:
            dtype = self.dtype_of(kwargs["dtype"])
        if leaf == "dtype" and node.args:
            name = self.dtype_of(node.args[0])
            return (
                AbstractValue.dtype_literal(name) if name else _UNKNOWN
            )
        if leaf in ("zeros", "zeros_like"):
            return AbstractValue.array(dtype or "float64", ValueRange.const(0))
        if leaf in ("ones", "ones_like"):
            return AbstractValue.array(dtype or "float64", ValueRange.const(1))
        if leaf in ("empty", "empty_like"):
            dt = dtype or "float64"
            bounds = dtype_bounds(dt)
            rng = ValueRange(*bounds) if bounds else TOP_RANGE
            return AbstractValue.array(dt, rng)
        if leaf == "full":
            fill = self.eval(node.args[1]) if len(node.args) > 1 else _UNKNOWN
            return AbstractValue.array(dtype, fill.range)
        if leaf == "arange":
            stop = self.eval(node.args[0]) if len(node.args) == 1 else _UNKNOWN
            hi = None if stop.range.hi is None else max(0, stop.range.hi - 1)
            return AbstractValue.array(dtype or "int64", ValueRange(0, hi))
        if leaf in ("asarray", "array", "ascontiguousarray"):
            source = self.eval(node.args[0]) if node.args else _UNKNOWN
            if dtype is None:
                dtype = source.dtype if source.kind == "array" else None
            bounds = dtype_bounds(dtype) if dtype else None
            rng = source.range.clip(bounds) if bounds else source.range
            return AbstractValue.array(dtype, rng)
        if leaf in ("abs", "absolute"):
            source = self.eval(node.args[0]) if node.args else _UNKNOWN
            return replace(source, range=source.range.abs())
        if leaf == "take":
            source = self.eval(node.args[0]) if node.args else _UNKNOWN
            result = source if source.kind == "array" else _UNKNOWN
            return self._through_out(node, kwargs, result)
        if leaf in _BINARY_UFUNCS:
            left = self.eval(node.args[0]) if node.args else _UNKNOWN
            right = self.eval(node.args[1]) if len(node.args) > 1 else _UNKNOWN
            op = _BINARY_UFUNCS[leaf]
            if op == "add":
                rng = left.range.add(right.range)
            elif op == "sub":
                rng = left.range.sub(right.range)
            elif op == "mul":
                rng = left.range.mul(right.range)
            elif op == "max":
                rng = ValueRange(
                    None
                    if left.range.lo is None or right.range.lo is None
                    else max(left.range.lo, right.range.lo),
                    None
                    if left.range.hi is None or right.range.hi is None
                    else max(left.range.hi, right.range.hi),
                )
            else:  # min
                rng = ValueRange(
                    None
                    if left.range.lo is None or right.range.lo is None
                    else min(left.range.lo, right.range.lo),
                    None
                    if left.range.hi is None or right.range.hi is None
                    else min(left.range.hi, right.range.hi),
                )
            explicit = self.dtype_of(kwargs["dtype"]) if "dtype" in kwargs else None
            result = self._combine(left, right, rng)
            if explicit is not None:
                bounds = dtype_bounds(explicit)
                rng2 = rng.clip(bounds) if bounds else rng
                result = AbstractValue.array(explicit, rng2)
            return self._through_out(node, kwargs, result)
        return _UNKNOWN

    def _through_out(
        self,
        node: ast.Call,
        kwargs: dict[str, ast.expr],
        computed: AbstractValue,
    ) -> AbstractValue:
        """``out=`` fixes the result dtype; the value range is the computed one."""
        out = kwargs.get("out")
        if out is None:
            return computed
        target = self.eval(out)
        if target.kind == "array" and target.dtype is not None:
            bounds = dtype_bounds(target.dtype)
            rng = computed.range.clip(bounds) if bounds else computed.range
            return AbstractValue.array(target.dtype, rng)
        return computed


def _assign_target_key(node: ast.expr) -> str | None:
    """Env key of an assignment target (``x`` or dotted ``self.attr``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return dotted_name(node)
    return None


def _join_envs(a: Env, b: Env) -> Env:
    """Pointwise join; names bound on one side only become unknown."""
    out: Env = {}
    for key in set(a) | set(b):
        va, vb = a.get(key), b.get(key)
        out[key] = va.join(vb) if va is not None and vb is not None else _UNKNOWN
    return out


def _widen_envs(before: Env, after: Env) -> Env:
    """Pointwise widening of *after* against the loop pre-state."""
    out: Env = {}
    for key in set(before) | set(after):
        vb, va = before.get(key), after.get(key)
        if vb is None or va is None:
            out[key] = _UNKNOWN
        else:
            out[key] = vb.widen(va)
    return out


def interpret(
    body: Iterable[ast.stmt],
    env: Env,
    callee_summary: Callable[[ast.Call], AbstractValue | None] | None = None,
    returns: list[AbstractValue] | None = None,
) -> Env:
    """Linear abstract interpretation of a statement list.

    Mutates and returns *env*.  Branch arms are interpreted on copies and
    joined; loop bodies are interpreted once and widened against the
    pre-state (enough precision for dtype questions, and trivially
    terminating).  Return-expression values are appended to *returns*.
    """
    ev = Evaluator(env, callee_summary)
    for stmt in body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            key = _assign_target_key(stmt.targets[0])
            if key is not None:
                env[key] = ev.eval(stmt.value)
            elif isinstance(stmt.targets[0], (ast.Tuple, ast.List)):
                for elt in stmt.targets[0].elts:
                    k = _assign_target_key(elt)
                    if k is not None:
                        env[k] = _UNKNOWN
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            key = _assign_target_key(stmt.target)
            if key is not None:
                env[key] = ev.eval(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            key = _assign_target_key(stmt.target)
            if key is not None:
                current = env.get(key, _UNKNOWN)
                delta = ev.eval(stmt.value)
                if isinstance(stmt.op, ast.Add):
                    rng = current.range.add(delta.range)
                elif isinstance(stmt.op, ast.Sub):
                    rng = current.range.sub(delta.range)
                else:
                    rng = TOP_RANGE
                updated = Evaluator._combine(current, delta, rng)
                env[key] = current.widen(updated)
        elif isinstance(stmt, ast.If):
            then_env = dict(env)
            else_env = dict(env)
            interpret(stmt.body, then_env, callee_summary, returns)
            interpret(stmt.orelse, else_env, callee_summary, returns)
            env.clear()
            env.update(_join_envs(then_env, else_env))
            ev = Evaluator(env, callee_summary)
        elif isinstance(stmt, (ast.For, ast.While)):
            before = dict(env)
            if isinstance(stmt, ast.For):
                key = _assign_target_key(stmt.target)
                if key is not None:
                    env[key] = _UNKNOWN
            interpret(stmt.body, env, callee_summary, returns)
            interpret(stmt.orelse, env, callee_summary, returns)
            widened = _widen_envs(before, env)
            env.clear()
            env.update(widened)
            ev = Evaluator(env, callee_summary)
        elif isinstance(stmt, ast.With):
            interpret(stmt.body, env, callee_summary, returns)
            ev = Evaluator(env, callee_summary)
        elif isinstance(stmt, ast.Try):
            interpret(stmt.body, env, callee_summary, returns)
            for handler in stmt.handlers:
                interpret(handler.body, dict(env), callee_summary, returns)
            interpret(stmt.finalbody, env, callee_summary, returns)
            ev = Evaluator(env, callee_summary)
        elif isinstance(stmt, ast.Return):
            if returns is not None and stmt.value is not None:
                returns.append(ev.eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            # Evaluate for ``out=`` effects on already-bound names: the
            # value itself is discarded but a ufunc writing into ``out``
            # does not change that target's dtype, so nothing to update.
            ev.eval(stmt.value)
    return env


@dataclass
class FunctionDtypes:
    """Dtype summary of one project function."""

    #: Join of all return-expression values (unknown when opaque).
    returns: AbstractValue = field(default_factory=AbstractValue.unknown)
    #: Dtype of the in-place accumulator (``np.add(acc, x, out=acc)`` or
    #: ``acc += x``), when the body has exactly one consistent answer.
    accumulator_dtype: str | None = None


class DtypeAnalysis:
    """Whole-project dtype summaries over the call graph.

    A bounded fixpoint in the :mod:`repro.analysis.flows` mold: each pass
    re-interprets every function with the callee summaries of the previous
    pass, so return dtypes and accumulator dtypes flow through wrappers
    (``PairedKernel.score`` → ``ungapped_scores_paired``).
    """

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, FunctionDtypes] = {}
        self._solve()

    def _solve(self) -> None:
        functions = list(self.graph.functions.values())
        for _ in range(3):  # summaries stabilise in ≤ depth-of-wrapping passes
            changed = False
            for info in functions:
                summary = self._summarise(info)
                previous = self.summaries.get(info.qualname)
                if previous is None or previous != summary:
                    self.summaries[info.qualname] = summary
                    changed = True
            if not changed:
                break

    def _callee_summary_fn(
        self, info: FunctionInfo
    ) -> Callable[[ast.Call], AbstractValue | None]:
        by_node = {id(site.node): site.callee for site in info.calls}

        def lookup(node: ast.Call) -> AbstractValue | None:
            callee = by_node.get(id(node))
            if callee is None:
                return None
            summary = self.summaries.get(callee)
            if summary is None or summary.returns.is_unknown:
                return None
            return summary.returns

        return lookup

    def _summarise(self, info: FunctionInfo) -> FunctionDtypes:
        env = self.seed_env(info)
        returns: list[AbstractValue] = []
        lookup = self._callee_summary_fn(info)
        interpret(list(info.node.body), env, lookup, returns)
        joined = AbstractValue.unknown()
        if returns:
            joined = returns[0]
            for value in returns[1:]:
                joined = joined.join(value)
        acc = self._accumulator_dtype(info, env, lookup)
        return FunctionDtypes(returns=joined, accumulator_dtype=acc)

    def seed_env(self, info: FunctionInfo) -> Env:
        """Initial environment of a function (parameters are unknown)."""
        del info
        return {}

    def _accumulator_dtype(
        self,
        info: FunctionInfo,
        env: Env,
        lookup: Callable[[ast.Call], AbstractValue | None],
    ) -> str | None:
        ev = Evaluator(env, lookup)
        dtypes: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                target = _assign_target_key(node.target)
                if target is not None:
                    value = env.get(target, _UNKNOWN)
                    if value.kind == "array" and value.dtype is not None:
                        dtypes.add(value.dtype)
                continue
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw is None:
                continue
            head, _, leaf = raw.rpartition(".")
            if head not in ("np", "numpy") or leaf != "add":
                continue
            out = next((kw.value for kw in node.keywords if kw.arg == "out"), None)
            if out is None:
                continue
            out_key = _assign_target_key(out)
            arg_keys = {
                _assign_target_key(a)
                for a in node.args
                if isinstance(a, (ast.Name, ast.Attribute, ast.Subscript))
            }
            arg_keys |= {
                _assign_target_key(a.value)
                for a in node.args
                if isinstance(a, ast.Subscript)
            }
            out_base = (
                _assign_target_key(out.value)
                if isinstance(out, ast.Subscript)
                else out_key
            )
            if out_base is None or (
                out_key not in arg_keys and out_base not in arg_keys
            ):
                continue
            value = ev.eval(out)
            if value.kind == "array" and value.dtype is not None:
                dtypes.add(value.dtype)
        if len(dtypes) == 1:
            return next(iter(dtypes))
        if not dtypes:
            # A pure wrapper inherits its single project callee's answer.
            returned_calls = [
                site.callee
                for site in info.calls
                if site.callee is not None
                and any(
                    isinstance(n, ast.Return) and n.value is site.node
                    for n in ast.walk(info.node)
                )
            ]
            if len(set(returned_calls)) == 1:
                inherited = self.summaries.get(returned_calls[0])
                if inherited is not None:
                    return inherited.accumulator_dtype
        return None


def class_attr_env(
    graph: ProjectGraph,
    class_prefix: str,
    init_args: dict[str, AbstractValue] | None = None,
) -> Env:
    """``self.attr`` environment of one class under given ``__init__`` args.

    Interprets ``__init__`` first (its parameters bound to *init_args*),
    then every other method with the accumulated ``self.*`` bindings, and
    repeats once so attributes defined across methods (``_ensure`` reading
    ``self._accum_dtype`` set in ``__init__``) stabilise.  Returns only the
    dotted ``self.*`` entries.
    """
    scope, _, cls = class_prefix.rpartition(".")
    mod = graph.modules.get(scope)
    if mod is None or cls not in mod.classes:
        return {}
    methods = [
        graph.functions[qual]
        for qual in mod.classes[cls].values()
        if qual in graph.functions
    ]
    methods.sort(key=lambda m: (m.name != "__init__", m.name))
    attrs: Env = {}
    for _ in range(2):
        for info in methods:
            env: Env = dict(attrs)
            if info.name == "__init__" and init_args:
                env.update(init_args)
            interpret(list(info.node.body), env, None, None)
            for key, value in env.items():
                if key.startswith("self."):
                    attrs[key] = value
    return attrs


def call_arg_env(
    call: ast.Call, callee: FunctionInfo, ev: Evaluator
) -> dict[str, AbstractValue]:
    """Bind a call's arguments to the callee's parameter names.

    Positional args map onto the parameter list (``self`` skipped for
    methods), keyword args by name; anything starred is ignored.
    """
    params = callee.param_names()
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    env: dict[str, AbstractValue] = {}
    for name, arg in zip(params, call.args):
        if isinstance(arg, ast.Starred):
            break
        env[name] = ev.eval(arg)
    for kw in call.keywords:
        if kw.arg is not None:
            env[kw.arg] = ev.eval(kw.value)
    return env


# -- project-constant extraction ---------------------------------------

#: Module holding the embedded NCBI matrix texts and the gap sentinel.
MATRIX_MODULE = "repro.seqs.matrices"
#: Module/class holding the step-2 configuration defaults.
CONFIG_MODULE = "repro.extend.ungapped"
CONFIG_CLASS = "UngappedConfig"


def _module_body(graph: ProjectGraph, name: str) -> list[ast.stmt] | None:
    mod = graph.modules.get(name)
    return list(mod.ctx.tree.body) if mod is not None else None


def matrix_score_bound(graph: ProjectGraph) -> int | None:
    """Maximum ``|score|`` over every bundled substitution matrix.

    Parsed straight out of the ``_*_TEXT`` NCBI text constants in
    :data:`MATRIX_MODULE`, with the ``GAP_SCORE`` sentinel included —
    the loader fills the gap row/column with it, so it bounds the
    per-residue cost exactly like a matrix entry does.  ``None`` when the
    module (or any score) is missing: callers must then prove nothing.
    """
    body = _module_body(graph, MATRIX_MODULE)
    if body is None:
        return None
    magnitudes: list[int] = []
    for stmt in body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "GAP_SCORE":
                gap = _const_int(value)
                if gap is not None:
                    magnitudes.append(abs(gap))
            elif target.id.endswith("_TEXT"):
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    magnitudes.extend(
                        abs(v) for v in _parse_matrix_ints(value.value)
                    )
    return max(magnitudes) if magnitudes else None


def _parse_matrix_ints(text: str) -> list[int]:
    """Integer entries of an NCBI matrix text (labels/comments skipped)."""
    values: list[int] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        for token in line.split():
            try:
                values.append(int(token))
            except ValueError:
                continue
    return values


def _const_int(node: ast.expr | None) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return int(node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -int(node.operand.value)
    return None


def default_window(graph: ProjectGraph) -> int | None:
    """Default step-2 window width, proven from the config class itself.

    Reads the ``w`` / ``n`` field defaults of :data:`CONFIG_CLASS` and
    abstractly evaluates the body of its ``window`` property under them,
    so the answer follows the real ``W + 2N`` formula in the source rather
    than a hard-coded copy.  ``None`` when anything is missing or the
    evaluation does not reach a single concrete integer.
    """
    body = _module_body(graph, CONFIG_MODULE)
    if body is None:
        return None
    cls = next(
        (
            s
            for s in body
            if isinstance(s, ast.ClassDef) and s.name == CONFIG_CLASS
        ),
        None,
    )
    if cls is None:
        return None
    env: Env = {}
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id in ("w", "n")
        ):
            value = _const_int(stmt.value)
            if value is not None:
                env[f"self.{stmt.target.id}"] = AbstractValue.scalar(
                    ValueRange.const(value)
                )
    prop = next(
        (
            s
            for s in cls.body
            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            and s.name == "window"
        ),
        None,
    )
    if prop is None:
        return None
    returns: list[AbstractValue] = []
    interpret(list(prop.body), env, None, returns)
    for value in returns:
        rng = value.range
        if rng.lo is not None and rng.lo == rng.hi:
            return rng.lo
    return None
