"""Project-wide AST model: modules, qualified names, and the call graph.

The RC001–RC005 rules are local — one :class:`~repro.analysis.rules.FileContext`
at a time.  The RC1xx concurrency/determinism rules are not: "a
nondeterministically-ordered value reaches the executor merge" is a property
of a *path through the call graph*, and "this helper releases the
shared-memory segments it is handed" is a property of a *callee* that the
caller's rule must look up.  :class:`ProjectGraph` is the shared substrate:

* every package file is parsed once and mapped to its dotted module name
  (``core/executor.py`` → ``repro.core.executor``);
* each module's import statements become a local-name → qualified-name
  table, with relative imports resolved against the module's package;
* every function and method gets a :class:`FunctionInfo` keyed by its
  qualified name (``repro.core.executor.ShardedStep2Executor._run_pool``),
  holding its AST node and its resolved call sites;
* :meth:`ProjectGraph.callees` / :meth:`ProjectGraph.reachable_from` expose
  the graph itself for reachability-style rules, and
  :mod:`repro.analysis.flows` computes fixpoint summaries over it.

Resolution is deliberately conservative: a call the resolver cannot pin to
a project function keeps its dotted source text (``os.listdir``,
``shm.close``) so rules can still match well-known externals, and anything
truly dynamic resolves to ``None`` — rules must treat unresolved calls as
"no information", never as evidence.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from .rules import FileContext

__all__ = [
    "CallSite",
    "DecoratorInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "dotted_name",
]

#: Root package name all project modules hang under.
PACKAGE_ROOT = "repro"


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_of(package_rel: str) -> str:
    """Dotted module name of a package-relative path.

    ``core/executor.py`` → ``repro.core.executor``;
    ``core/__init__.py`` → ``repro.core``; ``__init__.py`` → ``repro``.
    """
    parts = package_rel.split("/")
    leaf = parts[-1]
    parts = parts[:-1] if leaf == "__init__.py" else parts[:-1] + [leaf[: -len(".py")]]
    return ".".join([PACKAGE_ROOT, *parts]) if parts else PACKAGE_ROOT


@dataclass(frozen=True)
class CallSite:
    """One ``ast.Call`` inside a function, with its resolution.

    ``callee`` is the qualified name of a project function when the
    resolver pinned one; ``raw`` is the dotted source text after import
    expansion (``os.listdir``, ``np.random.default_rng``) and is ``None``
    only for calls on non-name expressions (``x[0]()``, ``f()()``).
    """

    node: ast.Call
    raw: str | None
    callee: str | None


@dataclass(frozen=True)
class DecoratorInfo:
    """One decorator on a function, with its resolution.

    ``call`` is the ``ast.Call`` node for parameterised decorators
    (``@register_backend("fused", ...)``) and ``None`` for bare ones.
    ``raw`` is the decorator's dotted name after import expansion;
    ``target`` the project function it resolves to, when any.
    """

    node: ast.expr
    call: ast.Call | None
    raw: str | None
    target: str | None

    @property
    def leaf(self) -> str | None:
        """Last dotted component of the decorator name."""
        return self.raw.rpartition(".")[2] if self.raw else None


@dataclass
class FunctionInfo:
    """One function or method of the project."""

    qualname: str
    module: str
    package_rel: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    calls: list[CallSite] = field(default_factory=list)
    decorators: list[DecoratorInfo] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Bare function name."""
        return self.node.name

    def param_names(self) -> list[str]:
        """Positional/keyword parameter names, ``self``/``cls`` included."""
        a = self.node.args
        return [p.arg for p in [*a.posonlyargs, *a.args, *a.kwonlyargs]]


@dataclass
class ModuleInfo:
    """One parsed package module and its name-resolution tables."""

    name: str
    ctx: FileContext
    #: Local name → fully qualified dotted target, from import statements.
    imports: dict[str, str] = field(default_factory=dict)
    #: Module-level function name → qualified name.
    functions: dict[str, str] = field(default_factory=dict)
    #: Class name → {method name → qualified name}.
    classes: dict[str, dict[str, str]] = field(default_factory=dict)


def _resolve_relative(
    module: str, level: int, target: str | None, *, is_package: bool = False
) -> str:
    """Absolute dotted base of a ``from ... import`` with *level* leading dots.

    Relative imports are resolved against the importing module's package
    (``repro.core.executor`` importing ``from .partition`` → the base is
    ``repro.core.partition``).  For a package ``__init__`` the module name
    *is* the package, so one less component is stripped
    (``repro.extend.backends`` importing ``from .registry`` → the base is
    ``repro.extend.backends.registry``, not ``repro.extend.registry``).
    """
    if is_package:
        level -= 1
    parts = module.split(".")
    base = parts[: len(parts) - level] if level <= len(parts) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


class ProjectGraph:
    """Modules, functions and resolved call edges of one project tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: Synthetic call edges (caller qualname → callee qualnames) added
        #: for registry-style dynamic dispatch the resolver cannot see.
        self.extra_edges: dict[str, set[str]] = {}
        #: ``@register_backend``-decorated factory qualname → the method
        #: table of the kernel class its return statement constructs.
        self.backend_factories: dict[str, dict[str, str]] = {}
        #: Factory qualname → kernel class qualified prefix (``module.Class``).
        self.backend_kernel_of: dict[str, str | None] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def from_contexts(cls, contexts: Iterable[FileContext]) -> ProjectGraph:
        """Build the graph from parsed package files (two passes).

        Pass one registers every module's import table and definition names
        so pass two can resolve calls across modules regardless of file
        order.  Files outside the package (``package_rel is None``) are
        ignored — the project graph models the ``repro`` package only.
        """
        graph = cls()
        package = [c for c in contexts if c.package_rel is not None]
        for ctx in package:
            graph._register_module(ctx)
        for ctx in package:
            graph._collect_functions(ctx)
        graph._link_backend_dispatch()
        return graph

    def _register_module(self, ctx: FileContext) -> None:
        assert ctx.package_rel is not None
        mod = ModuleInfo(name=module_name_of(ctx.package_rel), ctx=ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                is_package = ctx.package_rel.endswith("__init__.py")
                base = (
                    _resolve_relative(
                        mod.name, node.level, node.module, is_package=is_package
                    )
                    if node.level
                    else (node.module or "")
                )
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{base}.{alias.name}" if base else alias.name
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.functions[stmt.name] = f"{mod.name}.{stmt.name}"
            elif isinstance(stmt, ast.ClassDef):
                methods = {
                    s.name: f"{mod.name}.{stmt.name}.{s.name}"
                    for s in stmt.body
                    if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                mod.classes[stmt.name] = methods
        self.modules[mod.name] = mod

    def _collect_functions(self, ctx: FileContext) -> None:
        assert ctx.package_rel is not None
        mod = self.modules[module_name_of(ctx.package_rel)]

        def collect(body: list[ast.stmt], class_name: str | None) -> None:
            for stmt in body:
                if isinstance(stmt, ast.ClassDef):
                    collect(stmt.body, stmt.name)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scope = f"{mod.name}.{class_name}" if class_name else mod.name
                    info = FunctionInfo(
                        qualname=f"{scope}.{stmt.name}",
                        module=mod.name,
                        package_rel=ctx.package_rel or "",
                        class_name=class_name,
                        node=stmt,
                    )
                    local_types = self._local_instance_types(mod, stmt)
                    for call in (
                        n for n in ast.walk(stmt) if isinstance(n, ast.Call)
                    ):
                        info.calls.append(
                            self.resolve_call(mod, class_name, call, local_types)
                        )
                    for deco in stmt.decorator_list:
                        info.decorators.append(
                            self._resolve_decorator(mod, deco)
                        )
                    self.functions[info.qualname] = info
                    # Nested defs are rare; their calls are attributed to
                    # the enclosing function via ast.walk above, which is
                    # the conservative choice for reachability.

        collect(ctx.tree.body, None)

    def _local_instance_types(
        self, mod: ModuleInfo, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, str]:
        """Map local names to class prefixes for ``x = ClassName(...)`` binds.

        Only single-target assignments from a direct constructor call are
        typed; anything reassigned to a non-constructor later drops back to
        untyped (conservative: last writer wins, unknown wins ties).
        """
        types: dict[str, str] = {}
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                cls_prefix = (
                    self._class_prefix_of(mod, dotted_name(node.value.func))
                    if isinstance(node.value, ast.Call)
                    else None
                )
                if cls_prefix is not None:
                    types[name] = cls_prefix
                else:
                    types.pop(name, None)
        return types

    def _class_prefix_of(self, mod: ModuleInfo, raw: str | None) -> str | None:
        """``module.Class`` prefix a dotted constructor name denotes, if any."""
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        if not rest and raw in mod.classes:
            return f"{mod.name}.{raw}"
        expanded = raw
        if head in mod.imports:
            expanded = mod.imports[head] + ("." + rest if rest else "")
        expanded = self._chase_reexports(expanded)
        scope, _, leaf = expanded.rpartition(".")
        owner = self.modules.get(scope)
        if owner is not None and leaf in owner.classes:
            return f"{scope}.{leaf}"
        return None

    def _resolve_decorator(self, mod: ModuleInfo, deco: ast.expr) -> DecoratorInfo:
        """Resolve one decorator expression against the module tables."""
        call = deco if isinstance(deco, ast.Call) else None
        func_expr = deco.func if isinstance(deco, ast.Call) else deco
        raw = dotted_name(func_expr)
        if raw is None:
            return DecoratorInfo(node=deco, call=call, raw=None, target=None)
        head, _, rest = raw.partition(".")
        expanded = raw
        if head in mod.imports:
            expanded = mod.imports[head] + ("." + rest if rest else "")
        target = self._project_function(expanded)
        if target is None and not rest and raw in mod.functions:
            target = mod.functions[raw]
        return DecoratorInfo(node=deco, call=call, raw=expanded, target=target)

    # -- resolution ----------------------------------------------------
    def resolve_call(
        self,
        mod: ModuleInfo,
        class_name: str | None,
        node: ast.Call,
        local_types: dict[str, str] | None = None,
    ) -> CallSite:
        """Resolve one call site against the module's name tables."""
        raw = dotted_name(node.func)
        if raw is None:
            return CallSite(node=node, raw=None, callee=None)
        head, _, rest = raw.partition(".")
        # self.method() / cls.method() inside a class body.
        if head in ("self", "cls") and class_name is not None and rest:
            method = rest.split(".")[0]
            qual = self.modules[mod.name].classes.get(class_name, {}).get(method)
            return CallSite(node=node, raw=raw, callee=qual)
        # x.method() on a locally constructed instance (x = ClassName(...)).
        if local_types and head in local_types and rest:
            method = rest.split(".")[0]
            qual = self._project_function(f"{local_types[head]}.{method}")
            return CallSite(node=node, raw=raw, callee=qual)
        expanded = raw
        if head in mod.imports:
            expanded = mod.imports[head] + ("." + rest if rest else "")
        callee = self._project_function(expanded)
        if callee is None and not rest:
            if raw in mod.functions:
                callee = mod.functions[raw]
            elif raw in mod.classes:
                callee = mod.classes[raw].get("__init__")
        return CallSite(node=node, raw=expanded, callee=callee)

    def _chase_reexports(self, qualified: str, depth: int = 0) -> str:
        """Follow re-export chains to the defining module.

        ``from .registry import resolve_backend`` in a package ``__init__``
        makes ``repro.extend.backends.resolve_backend`` a valid qualified
        name whose definition lives in ``repro.extend.backends.registry``;
        callers resolve through the package boundary by following the
        importing module's own import table.  Bounded depth guards against
        pathological import cycles.
        """
        if depth >= 8:
            return qualified
        scope, _, leaf = qualified.rpartition(".")
        mod = self.modules.get(scope)
        if mod is None or leaf in mod.functions or leaf in mod.classes:
            return qualified
        if leaf in mod.imports and mod.imports[leaf] != qualified:
            return self._chase_reexports(mod.imports[leaf], depth + 1)
        return qualified

    def _project_function(self, qualified: str) -> str | None:
        """Qualified dotted name → project function qualname, if defined.

        Resolved against the pass-one registration tables (never
        ``self.functions``, which is still filling during pass two), so
        cross-module edges resolve regardless of file collection order.
        Re-exported names are chased to their defining module first.
        """
        qualified = self._chase_reexports(qualified)
        scope, _, leaf = qualified.rpartition(".")
        mod = self.modules.get(scope)
        if mod is not None:
            if leaf in mod.functions:
                return mod.functions[leaf]
            # ``module.ClassName(...)`` — a constructor: map to __init__.
            if leaf in mod.classes:
                return mod.classes[leaf].get("__init__")
        # ``module.ClassName.method`` — one level deeper.
        scope = self._chase_reexports(scope)
        mod_name, _, cls = scope.rpartition(".")
        outer = self.modules.get(mod_name)
        if outer is not None and cls in outer.classes:
            return outer.classes[cls].get(leaf)
        return None

    # -- registry dispatch ---------------------------------------------
    def _link_backend_dispatch(self) -> None:
        """Add synthetic call edges for the backend-registry indirection.

        ``resolve_backend`` invokes ``info.factory(config)`` where
        ``factory`` was captured by a ``@register_backend`` decorator, and
        the batched engine then calls ``kernel.score`` / ``kernel.prepare``
        on whatever kernel object the factory returned.  Neither hop is a
        static call the resolver can pin, so reachability rules would stop
        at the registry without these edges: every unresolved
        ``*.factory(...)`` inside ``extend/`` fans out to all registered
        factories, and every unresolved ``*.score`` / ``*.prepare`` there
        fans out to the matching methods of every kernel class a factory
        constructs (over-approximate by design — reachability rules only
        need a superset of the true edges).
        """
        for info in self.functions.values():
            if not any(d.leaf == "register_backend" for d in info.decorators):
                continue
            kernel = self._factory_kernel_class(info)
            methods: dict[str, str] = {}
            if kernel is not None:
                scope, _, cls = kernel.rpartition(".")
                owner = self.modules.get(scope)
                if owner is not None:
                    methods = owner.classes.get(cls, {})
            self.backend_factories[info.qualname] = methods
            self.backend_kernel_of[info.qualname] = kernel
        if not self.backend_factories:
            return
        kernel_methods: dict[str, set[str]] = {}
        for methods in self.backend_factories.values():
            for name, qual in methods.items():
                kernel_methods.setdefault(name, set()).add(qual)
        for info in self.functions.values():
            if not info.package_rel.startswith("extend/"):
                continue
            for site in info.calls:
                if site.callee is not None or site.raw is None:
                    continue
                leaf = site.raw.rpartition(".")[2]
                if leaf == "factory":
                    self.extra_edges.setdefault(info.qualname, set()).update(
                        self.backend_factories
                    )
                elif leaf in ("score", "prepare") and leaf in kernel_methods:
                    self.extra_edges.setdefault(info.qualname, set()).update(
                        kernel_methods[leaf]
                    )

    def _factory_kernel_class(self, info: FunctionInfo) -> str | None:
        """Class prefix of the kernel a factory's return statements build."""
        mod = self.modules[info.module]
        for node in ast.walk(info.node):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                prefix = self._class_prefix_of(mod, dotted_name(node.value.func))
                if prefix is not None:
                    return prefix
        return None

    # -- graph queries -------------------------------------------------
    def callees(self, qualname: str) -> Iterator[str]:
        """Resolved project callees of one function (synthetic edges too)."""
        info = self.functions.get(qualname)
        if info is None:
            return
        for site in info.calls:
            if site.callee is not None:
                yield site.callee
        yield from sorted(self.extra_edges.get(qualname, ()))

    def reachable_from(self, seeds: Iterable[str]) -> set[str]:
        """All project functions reachable from *seeds* via call edges."""
        seen: set[str] = set()
        queue = deque(q for q in seeds if q in self.functions)
        while queue:
            qual = queue.popleft()
            if qual in seen:
                continue
            seen.add(qual)
            for callee in self.callees(qual):
                if callee not in seen:
                    queue.append(callee)
        return seen

    def functions_in(self, package_rel_prefixes: tuple[str, ...]) -> Iterator[FunctionInfo]:
        """Functions whose file matches any package-relative prefix/path."""
        for info in self.functions.values():
            rel = info.package_rel
            if rel.startswith(package_rel_prefixes) or rel in package_rel_prefixes:
                yield info
