"""``repro-check`` — the project-invariant lint gate.

Usage::

    repro-check src tests            # check trees, exit 1 on violations
    repro-check --select RC002 src   # one rule only
    repro-check --list-rules         # what is enforced, and why

Exit codes: ``0`` clean, ``1`` violations (or unparsable files) found,
``2`` usage error (argparse).  Output is one ``path:line:col: RC00X
message`` line per finding, deterministic across runs.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .checker import check_paths, iter_rendered
from .rules import REGISTRY

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-check`` argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-check",
        description="AST lint for repro's correctness invariants "
        "(determinism, dtype discipline, timing, annotations)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (e.g. `src tests`)",
    )
    p.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    p.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return p


def _validate_select(raw: str, parser: argparse.ArgumentParser) -> list[str]:
    codes = [c.strip().upper() for c in raw.split(",") if c.strip()]
    unknown = [c for c in codes if c not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(REGISTRY)})"
        )
    return codes


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for code, rule in REGISTRY.items():
            print(f"{code}  {rule.summary}")
        return 0
    if not args.paths:
        parser.error("no paths given (try `repro-check src tests`)")
    select = _validate_select(args.select, parser) if args.select else None
    result = check_paths(args.paths, select=select)
    for line in iter_rendered(result):
        print(line)
    if not args.quiet:
        n = len(result.violations)
        summary = (
            f"repro-check: {result.files_checked} files, "
            f"{n} violation{'s' if n != 1 else ''}"
        )
        if result.parse_errors:
            summary += f", {len(result.parse_errors)} unparsable"
        print(summary)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
