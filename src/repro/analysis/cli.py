"""``repro-check`` — the project-invariant lint gate.

Usage::

    repro-check src tests            # check trees, exit 1 on violations
    repro-check --select RC002 src   # one rule only
    repro-check --list-rules         # what is enforced, and why
    repro-check --baseline repro-baseline.json src
                                     # subtract the committed debt
    repro-check --write-baseline repro-baseline.json src
                                     # record today's findings as the debt
    repro-check --github src         # emit GitHub ::error annotations too
    repro-check --verify-determinism Q.fasta G.fasta --workers 1,2
                                     # run the pipeline per worker count
                                     # and diff the detsan manifests
    repro-check --verify-allocs Q.fasta G.fasta --workers 2
                                     # run the pipeline under the
                                     # allocation sanitizer and diff the
                                     # manifest against the committed
                                     # allocsan-budget.json
    repro-check --verify-locks Q.fasta R.fasta
                                     # boot the search service under the
                                     # lockset sanitizer, drive real
                                     # requests, and cross-check observed
                                     # locksets/orders against the static
                                     # RC300 thread/lock model
    repro-check --baseline FILE --prune-baseline src tests
                                     # drop baseline entries the run no
                                     # longer needs

Exit codes: ``0`` clean, ``1`` violations (or unparsable files, or a
determinism/allocation diff) found, ``2`` usage error (argparse, missing
paths).
Output is one ``path:line:col: RC00X message`` line per finding,
deterministic across runs.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from .baseline import Baseline, load_baseline, prune_baseline, write_baseline
from .checker import CheckResult, check_paths, iter_rendered
from .rules import REGISTRY, Violation

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-check`` argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-check",
        description="AST lint for repro's correctness invariants "
        "(determinism, dtype discipline, timing, annotations)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (e.g. `src tests`)",
    )
    p.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file "
        "(stale entries are reported)",
    )
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings to FILE as the new baseline "
        "and exit 0",
    )
    p.add_argument(
        "--prune-baseline",
        action="store_true",
        help="after checking, rewrite the --baseline file keeping only "
        "the entries this run still needed (stale debt is dropped)",
    )
    p.add_argument(
        "--github",
        action="store_true",
        help="additionally emit GitHub Actions ::error annotations",
    )
    p.add_argument(
        "--verify-determinism",
        nargs=2,
        metavar=("QUERIES", "GENOME"),
        help="instead of linting: run the pipeline on this FASTA pair "
        "once per worker count and diff the determinism manifests",
    )
    p.add_argument(
        "--verify-allocs",
        nargs=2,
        metavar=("QUERIES", "GENOME"),
        help="instead of linting: run the pipeline on this FASTA pair "
        "under the allocation sanitizer and diff the per-scope "
        "allocation manifest against the committed budget",
    )
    p.add_argument(
        "--verify-locks",
        nargs=2,
        metavar=("QUERIES", "RESIDENT"),
        help="instead of linting: boot the search service on this "
        "query/resident FASTA pair under the lockset sanitizer, drive "
        "real requests through it, and cross-check the observed "
        "locksets and acquisition orders against the static thread/lock "
        "model",
    )
    p.add_argument(
        "--allocs-budget",
        default="allocsan-budget.json",
        metavar="FILE",
        help="budget file --verify-allocs compares against "
        "(default: allocsan-budget.json)",
    )
    p.add_argument(
        "--update-allocs-budget",
        action="store_true",
        help="with --verify-allocs: write the measured manifest as the "
        "new budget instead of comparing",
    )
    p.add_argument(
        "--workers",
        default="1,2",
        metavar="N,M,...",
        help="worker counts exercised by --verify-determinism; "
        "--verify-allocs uses the highest count given (default: 1,2)",
    )
    p.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return p


def _validate_select(raw: str, parser: argparse.ArgumentParser) -> list[str]:
    codes = [c.strip().upper() for c in raw.split(",") if c.strip()]
    unknown = [c for c in codes if c not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(REGISTRY)})"
        )
    return codes


def _github_annotation(violation: Violation) -> str:
    """One ``::error`` workflow command per finding.

    GitHub renders these inline on the PR diff; ``%`` , CR and LF must be
    escaped per the workflow-command spec or the message truncates.
    """
    message = (
        f"{violation.rule} {violation.message}".replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )
    return (
        f"::error file={violation.path},line={violation.line},"
        f"col={violation.col},title=repro-check {violation.rule}::{message}"
    )


def _parse_workers(raw: str, parser: argparse.ArgumentParser) -> list[int]:
    try:
        counts = [int(c) for c in raw.split(",") if c.strip()]
    except ValueError:
        counts = []
    if not counts or any(c < 1 for c in counts):
        parser.error(f"--workers must be positive integers, got {raw!r}")
    return counts


def _run_verify(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``--verify-determinism`` mode: N pipeline runs, manifest diff."""
    # Lazy import: the lint path must not pull in numpy + the pipeline.
    from .determinism import verify_pipeline_determinism

    queries, genome = args.verify_determinism
    for path in (queries, genome):
        if not Path(path).exists():
            parser.error(f"no such file: {path}")
    counts = _parse_workers(args.workers, parser)
    ok, manifests, diffs = verify_pipeline_determinism(
        queries, genome, worker_counts=counts
    )
    if not args.quiet:
        for manifest in manifests:
            workers = manifest["meta"].get("workers")
            for name, stage in manifest["stages"].items():
                print(
                    f"workers={workers} {name}: {stage['digest']} "
                    f"(n={stage['n']})"
                )
    if ok:
        print(
            f"repro-check: determinism verified across workers="
            f"{','.join(str(c) for c in counts)}"
        )
        return 0
    for line in diffs:
        print(f"determinism mismatch: {line}")
        if args.github:
            print(f"::error title=repro-check determinism::{line}")
    return 1


def _run_verify_allocs(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``--verify-allocs`` mode: one recorded run, budget diff."""
    # Lazy import: the lint path must not pull in numpy + the pipeline.
    from .allocsan import verify_pipeline_allocs

    queries, genome = args.verify_allocs
    for path in (queries, genome):
        if not Path(path).exists():
            parser.error(f"no such file: {path}")
    workers = max(_parse_workers(args.workers, parser))
    budget_path = Path(args.allocs_budget)
    if not args.update_allocs_budget and not budget_path.exists():
        parser.error(
            f"allocation budget not found: {budget_path} "
            "(generate one with --update-allocs-budget)"
        )
    ok, manifest, problems = verify_pipeline_allocs(
        queries,
        genome,
        budget_path,
        workers=workers,
        update=args.update_allocs_budget,
    )
    if not args.quiet:
        for name, scope in manifest["scopes"].items():
            print(
                f"workers={workers} {name}: calls={scope['calls']} "
                f"alloc={scope['alloc_bytes']}B peak={scope['peak_bytes']}B"
            )
    if args.update_allocs_budget:
        print(f"repro-check: wrote allocation budget to {budget_path}")
        return 0
    if ok:
        print(
            f"repro-check: allocation budget verified against {budget_path}"
        )
        return 0
    for line in problems:
        print(f"allocation budget: {line}")
        if args.github:
            print(f"::error title=repro-check allocs::{line}")
    return 1


def _run_verify_locks(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``--verify-locks`` mode: one served load run, static/runtime diff."""
    # Lazy import: the lint path must not pull in numpy + the serve stack.
    from .locksan import verify_service_locks

    queries, resident = args.verify_locks
    for path in (queries, resident):
        if not Path(path).exists():
            parser.error(f"no such file: {path}")
    workers = max(_parse_workers(args.workers, parser))
    ok, manifest, problems = verify_service_locks(
        queries, resident, workers=workers
    )
    if not args.quiet:
        for name, entry in manifest["fields"].items():
            candidates = entry["candidates"] or []
            print(
                f"{name}: threads={len(entry['threads'])} "
                f"reads={entry['reads']} writes={entry['writes']} "
                f"guard={','.join(candidates) if candidates else '-'}"
            )
        for outer, inners in manifest["order"].items():
            for inner in inners:
                print(f"order: {outer} -> {inner}")
    if ok:
        print(
            "repro-check: lock model verified — "
            f"{len(manifest['locks'])} locks, {len(manifest['fields'])} "
            "guarded fields, zero violations/disagreements"
        )
        return 0
    for line in problems:
        print(f"lock model: {line}")
        if args.github:
            print(f"::error title=repro-check locks::{line}")
    return 1


def _load_baseline_arg(
    path: str, parser: argparse.ArgumentParser
) -> Baseline:
    try:
        return load_baseline(path)
    except FileNotFoundError:
        parser.error(f"baseline file not found: {path}")
    except ValueError as exc:
        parser.error(str(exc))
    raise AssertionError("parser.error returns NoReturn")  # pragma: no cover


def _print_summary(result: CheckResult) -> None:
    n = len(result.violations)
    summary = (
        f"repro-check: {result.files_checked} files, "
        f"{n} violation{'s' if n != 1 else ''}"
    )
    if result.baseline_suppressed:
        summary += f", {result.baseline_suppressed} baselined"
    if result.parse_errors:
        summary += f", {len(result.parse_errors)} unparsable"
    print(summary)
    for rule, path, _message in result.baseline_stale:
        print(
            f"repro-check: stale baseline entry {rule} for {path} "
            "matched nothing — delete it"
        )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for code, rule in REGISTRY.items():
            print(f"{code}  {rule.summary}")
        return 0
    if args.verify_determinism:
        return _run_verify(args, parser)
    if args.verify_allocs:
        return _run_verify_allocs(args, parser)
    if args.verify_locks:
        return _run_verify_locks(args, parser)
    if not args.paths:
        parser.error("no paths given (try `repro-check src tests`)")
    if args.prune_baseline and not args.baseline:
        parser.error("--prune-baseline requires --baseline FILE")
    select = _validate_select(args.select, parser) if args.select else None
    baseline = (
        _load_baseline_arg(args.baseline, parser) if args.baseline else None
    )
    try:
        result = check_paths(args.paths, select=select, baseline=baseline)
    except FileNotFoundError as exc:
        parser.error(str(exc))
    if args.write_baseline:
        n = write_baseline(result.violations, args.write_baseline)
        print(
            f"repro-check: wrote {n} baseline entr"
            f"{'y' if n == 1 else 'ies'} to {args.write_baseline}"
        )
        return 0
    if args.prune_baseline:
        assert baseline is not None
        kept, dropped = prune_baseline(baseline, args.baseline)
        print(
            f"repro-check: pruned baseline {args.baseline}: "
            f"{kept} kept, {dropped} dropped"
        )
    for line in iter_rendered(result):
        print(line)
    if args.github:
        for violation in result.violations:
            print(_github_annotation(violation))
    if not args.quiet:
        _print_summary(result)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
