"""Runtime determinism sanitizer (``REPRO_DETSAN=1``).

The static RC1xx rules prove the *code* cannot smuggle nondeterministic
order into the merge; this module proves it about a *run*.  When enabled,
each pipeline stage records a digest into a JSON-able manifest:

=====================  ==============================================
``step1.index``        order-sensitive digest of the joint index
                       (shared keys + per-key pair counts)
``step2.survivors``    **order-independent** multiset digest of the
                       step-2 hit set — identical for any worker
                       count, shard order, retry or fallback path
``step2.merged``       order-sensitive digest of the merged hit
                       arrays — the bit-identical-merge claim itself
``step3.alignments``   order-sensitive digest of the final report
=====================  ==============================================

``detail`` events (per-shard digests, supervisor fallbacks) carry run
diagnostics and are excluded from comparison — shard counts legitimately
differ between runs.

Two manifests from runs with *different* worker counts and shard orders
must agree on every stage; :func:`verify_pipeline_determinism` (the
``repro-check --verify-determinism`` mode) runs exactly that experiment
and :func:`diff_manifests` renders any disagreement.  An ordering bug that
RC100 would flag statically — e.g. merging shard results in ``set``
iteration order — shows up here as a ``step2.merged`` digest mismatch.

The recorder is activated per run (:func:`activate`); recording calls
sprinkled through :mod:`repro.core` are no-ops when no recorder is active,
so the sanitizer costs one module-attribute check per stage when off.
Order-independent digests combine per-row BLAKE2 hashes by addition modulo
2**128 — a commutative reduction over a 128-bit space, so equal multisets
give equal digests regardless of arrival order while duplicates still
count.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "DetsanRecorder",
    "activate",
    "active",
    "detsan_enabled",
    "diff_manifests",
    "digest_arrays",
    "record_arrays",
    "record_detail",
    "verify_pipeline_determinism",
]

#: Enables the sanitizer for plain pipeline runs (tests, production).
DETSAN_ENV = "REPRO_DETSAN"
#: Optional path the pipeline writes its manifest to after each run.
DETSAN_OUT_ENV = "REPRO_DETSAN_OUT"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Modulus of the commutative digest combination.
_MOD = 1 << 128

#: Manifest schema version.
_VERSION = 1


def detsan_enabled() -> bool:
    """True when ``REPRO_DETSAN`` asks for per-run manifests."""
    return os.environ.get(DETSAN_ENV, "").strip().lower() in _TRUTHY


def _row_matrix(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Stack parallel 1-D arrays into an ``(n, k)`` int64 row matrix.

    Float columns are bit-cast (not value-cast) to int64, so the digest
    distinguishes every representable value including ``-0.0`` and NaN
    payloads — "bit-identical" means bit-identical.
    """
    columns: list[np.ndarray] = []
    for arr in arrays:
        a = np.asarray(arr)
        if a.dtype.kind == "f":
            columns.append(a.astype(np.float64).view(np.int64).ravel())
        else:
            columns.append(a.astype(np.int64, copy=False).ravel())
    if not columns:
        return np.empty((0, 0), dtype=np.int64)
    return np.column_stack(columns)


def digest_arrays(
    arrays: Sequence[np.ndarray], order_sensitive: bool
) -> tuple[str, int]:
    """Digest parallel arrays as rows; returns ``(hex digest, n rows)``.

    Order-sensitive: one BLAKE2 over the whole row buffer.  Order-
    independent: per-row BLAKE2 truncated to 128 bits, summed mod 2**128 —
    a commutative multiset digest.
    """
    rows = _row_matrix(arrays)
    n = int(rows.shape[0])
    if order_sensitive:
        h = hashlib.blake2b(digest_size=16)
        h.update(np.ascontiguousarray(rows).tobytes())
        h.update(str(rows.shape).encode())
        return h.hexdigest(), n
    total = 0
    for row in np.ascontiguousarray(rows):
        total = (
            total
            + int.from_bytes(
                hashlib.blake2b(row.tobytes(), digest_size=16).digest(), "big"
            )
        ) % _MOD
    return f"{total:032x}", n


class DetsanRecorder:
    """Accumulates one run's stage digests and detail events."""

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        self.meta: dict[str, Any] = dict(meta or {})
        self._stages: dict[str, dict[str, Any]] = {}
        self._detail: list[dict[str, Any]] = []
        # In a served context merge points run on dispatcher threads, so
        # the accumulators need a lock of their own.
        self._mu = threading.Lock()

    def record_stage(self, name: str, digest: str, n: int) -> None:
        """Record one compared stage digest (last write wins per name)."""
        with self._mu:
            self._stages[name] = {"digest": digest, "n": n}

    def record_detail(self, event: str, **info: Any) -> None:
        """Record one non-compared diagnostic event."""
        with self._mu:
            self._detail.append({"event": event, **info})

    def manifest(self) -> dict[str, Any]:
        """The JSON-able manifest of everything recorded so far."""
        with self._mu:
            stages = {k: dict(v) for k, v in sorted(self._stages.items())}
            detail = [dict(d) for d in self._detail]
        return {
            "version": _VERSION,
            "meta": dict(self.meta),
            "stages": stages,
            "detail": detail,
        }

    def write(self, path: str | Path) -> None:
        """Write the manifest as JSON to *path*."""
        Path(path).write_text(
            json.dumps(self.manifest(), indent=2) + "\n", encoding="utf-8"
        )


#: The recorder of the run in flight, or None — module state on purpose:
#: recording spans pipeline, executor and supervisor without threading a
#: recorder through every signature.  Recording happens only in the parent
#: process (at merge points), never inside pool workers.
_ACTIVE: DetsanRecorder | None = None


def active() -> DetsanRecorder | None:
    """The currently active recorder, if any."""
    return _ACTIVE


@contextmanager
def activate(recorder: DetsanRecorder | None) -> Iterator[DetsanRecorder | None]:
    """Make *recorder* current for the dynamic extent; ``None`` is a no-op."""
    global _ACTIVE
    if recorder is None:
        yield _ACTIVE
        return
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


def record_arrays(
    stage: str, arrays: Sequence[np.ndarray], order_sensitive: bool
) -> None:
    """Digest *arrays* into the active recorder; no-op when inactive."""
    recorder = _ACTIVE
    if recorder is None:
        return
    digest, n = digest_arrays(arrays, order_sensitive=order_sensitive)
    recorder.record_stage(stage, digest, n)


def record_detail(event: str, **info: Any) -> None:
    """Record a detail event on the active recorder; no-op when inactive."""
    recorder = _ACTIVE
    if recorder is None:
        return
    recorder.record_detail(event, **info)


def shard_digest(arrays: Sequence[np.ndarray]) -> str:
    """Order-independent digest of one shard's hit rows (detail events)."""
    digest, _ = digest_arrays(arrays, order_sensitive=False)
    return digest


def maybe_write_manifest(recorder: DetsanRecorder) -> Path | None:
    """Write the manifest to ``$REPRO_DETSAN_OUT`` if configured."""
    out = os.environ.get(DETSAN_OUT_ENV, "").strip()
    if not out:
        return None
    path = Path(out)
    recorder.write(path)
    return path


def ensure_recorder() -> tuple[DetsanRecorder | None, bool]:
    """Recorder for a pipeline run: ``(recorder, this_run_created_it)``.

    An already-active recorder (a ``--verify-determinism`` harness) is
    reused; otherwise a new one is created when ``REPRO_DETSAN`` is set.
    """
    current = active()
    if current is not None:
        return current, False
    if detsan_enabled():
        return DetsanRecorder(), True
    return None, False


def diff_manifests(a: dict[str, Any], b: dict[str, Any]) -> list[str]:
    """Human-readable stage disagreements between two manifests.

    Only ``stages`` is compared — ``meta`` and ``detail`` legitimately
    differ between runs with different worker counts.
    """
    out: list[str] = []
    stages_a: dict[str, Any] = a.get("stages", {})
    stages_b: dict[str, Any] = b.get("stages", {})
    for name in sorted(set(stages_a) | set(stages_b)):
        sa, sb = stages_a.get(name), stages_b.get(name)
        if sa is None or sb is None:
            present = "first" if sa is not None else "second"
            out.append(f"{name}: recorded only in the {present} run")
        elif sa["digest"] != sb["digest"] or sa["n"] != sb["n"]:
            out.append(
                f"{name}: digest {sa['digest'][:12]}… (n={sa['n']}) != "
                f"{sb['digest'][:12]}… (n={sb['n']})"
            )
    return out


def verify_pipeline_determinism(
    queries_path: str,
    genome_path: str,
    worker_counts: Sequence[int] = (1, 2),
    threshold: int = 45,
    flank: int = 12,
) -> tuple[bool, list[dict[str, Any]], list[str]]:
    """Run the pipeline once per worker count and diff the manifests.

    Different worker counts exercise different shard cuts, pool schedules
    and merge paths; a bit-identical pipeline produces identical stage
    digests for all of them.  Returns ``(ok, manifests, diff lines)``
    where the diff lines compare every run against the first.
    """
    # Imported lazily: the analysis package must stay importable without
    # dragging in the whole pipeline (and repro.core itself records into
    # this module, so a top-level import would be circular).
    from ..core.config import PipelineConfig
    from ..core.pipeline import SeedComparisonPipeline
    from ..seqs.alphabet import DNA
    from ..seqs.fasta import load_bank, read_fasta

    queries = load_bank(queries_path)
    genome = next(iter(read_fasta(genome_path, DNA)))
    manifests: list[dict[str, Any]] = []
    for workers in worker_counts:
        recorder = DetsanRecorder(meta={"workers": int(workers)})
        config = PipelineConfig(
            workers=int(workers),
            ungapped_threshold=threshold,
            flank=flank,
        )
        with activate(recorder):
            SeedComparisonPipeline(config).compare_with_genome(queries, genome)
        manifests.append(recorder.manifest())
    diffs: list[str] = []
    for manifest in manifests[1:]:
        diffs.extend(diff_manifests(manifests[0], manifest))
    return not diffs, manifests, diffs
