"""Runtime lockset sanitizer (``REPRO_LOCKSAN=1``).

The static RC300-series rules (:mod:`repro.analysis.threads`) prove lock
discipline about the *code*; this module proves it about a *run*.  The
serve stack creates its locks through the :func:`make_lock` /
:func:`make_rlock` / :func:`make_condition` factory seam.  With
``REPRO_LOCKSAN`` unset the factories return plain :mod:`threading`
primitives — zero overhead, no wrapper in the hot path.  When set, they
return instrumented wrappers that maintain a per-thread *lockset* (the
locks currently held by each thread) and record, Eraser-style, a
candidate set per declared guarded field:

* the first :func:`touch` of a field initialises its candidates to the
  toucher's current lockset;
* every later touch intersects the candidates with the current lockset;
* a field whose candidates go empty while it has been written and seen
  from two or more threads is a *lockset violation* — no single lock
  consistently protected it.

Guarded fields are declared at their access sites with
``locksan.touch("repro.serve.pool.WarmPool._pool", write=True)`` — the
field names use the same canonical ``module.Class.attr`` spelling as the
static :class:`~repro.analysis.locks.LockModel`, which is what lets
:func:`verify_service_locks` (the ``repro-check --verify-locks`` mode)
cross-check the two: it boots the real HTTP service, drives it with the
load client, and then diffs the observed locksets and acquisition orders
against the static model — static says "guarded by ``_dispatch_lock``",
runtime must never observe that field touched lock-free, and runtime must
never acquire two locks in the opposite order of the static lock graph.

The manifest (written to ``$REPRO_LOCKSAN_OUT`` when set) records, per
field: the thread names that touched it, the surviving candidate locks,
read/write counts, and any violations; plus the observed acquisition
order edges (``outer -> inner``) and the set of instrumented locks.

All recording hooks are no-ops without an active recorder — one module
attribute check per operation — and the recorder only ever writes its
manifest from the process that created it (pool workers inherit the
module state over ``fork`` but must not clobber the parent's output).
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

__all__ = [
    "LocksanRecorder",
    "activate",
    "active",
    "ensure_recorder",
    "locksan_enabled",
    "make_condition",
    "make_lock",
    "make_rlock",
    "maybe_write_manifest",
    "touch",
    "verify_service_locks",
]

#: Enables the sanitizer (factories return instrumented wrappers).
LOCKSAN_ENV = "REPRO_LOCKSAN"
#: Optional path the recorder writes its manifest to at interpreter exit.
LOCKSAN_OUT_ENV = "REPRO_LOCKSAN_OUT"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Manifest schema version.
_VERSION = 1

#: At most this many violation witnesses are kept per field.
_MAX_VIOLATIONS = 8

#: The scope ``--verify-locks`` holds the runtime model against: the
#: package-relative prefixes the ISSUE names as the concurrency surface.
VERIFY_SCOPE = ("serve/", "core/supervisor.py")


def locksan_enabled() -> bool:
    """True when ``REPRO_LOCKSAN`` asks for instrumented lock wrappers."""
    return os.environ.get(LOCKSAN_ENV, "").strip().lower() in _TRUTHY


class LocksanRecorder:
    """Accumulates one run's locksets, candidate sets and order edges."""

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        self.meta: dict[str, Any] = dict(meta or {})
        self._pid = os.getpid()
        self._mu = threading.Lock()  # leaf lock: never held across user code
        self._tls = threading.local()
        self.locks: set[str] = set()
        # field -> {threads, candidates (None until first touch), reads,
        #           writes, violations}
        self.fields: dict[str, dict[str, Any]] = {}
        # outer lock name -> set of locks acquired while outer was held
        self.order: dict[str, set[str]] = {}

    # -- per-thread lockset ------------------------------------------------

    def _held(self) -> list[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def on_acquire(self, name: str) -> None:
        """A wrapper acquired *name* (called after the real acquire)."""
        held = self._held()
        with self._mu:
            self.locks.add(name)
            for outer in held:
                self.order.setdefault(outer, set()).add(name)
        held.append(name)

    def on_release(self, name: str) -> None:
        """A wrapper is about to release *name*."""
        held = self._held()
        # Remove the innermost occurrence: releases may legitimately
        # interleave (Condition.wait releases out of stack order).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                break

    # -- Eraser candidate refinement ---------------------------------------

    def on_touch(self, field: str, write: bool) -> None:
        """A declared guarded field was read (or written) on this thread."""
        held = frozenset(self._held())
        thread = threading.current_thread().name
        with self._mu:
            entry = self.fields.get(field)
            if entry is None:
                entry = {
                    "threads": set(),
                    "candidates": None,
                    "reads": 0,
                    "writes": 0,
                    "violations": [],
                }
                self.fields[field] = entry
            entry["threads"].add(thread)
            if write:
                entry["writes"] += 1
            else:
                entry["reads"] += 1
            if entry["candidates"] is None:
                entry["candidates"] = set(held)
            else:
                entry["candidates"] &= held
            if (
                not entry["candidates"]
                and entry["writes"] > 0
                and len(entry["threads"]) >= 2
                and len(entry["violations"]) < _MAX_VIOLATIONS
            ):
                entry["violations"].append(
                    {
                        "thread": thread,
                        "write": bool(write),
                        "held": sorted(held),
                    }
                )

    # -- manifest ----------------------------------------------------------

    def manifest(self) -> dict[str, Any]:
        """The JSON-able manifest of everything recorded so far."""
        with self._mu:
            fields = {
                name: {
                    "threads": sorted(entry["threads"]),
                    "candidates": (
                        None
                        if entry["candidates"] is None
                        else sorted(entry["candidates"])
                    ),
                    "reads": entry["reads"],
                    "writes": entry["writes"],
                    "violations": [dict(v) for v in entry["violations"]],
                }
                for name, entry in sorted(self.fields.items())
            }
            order = {
                outer: sorted(inner)
                for outer, inner in sorted(self.order.items())
            }
            locks = sorted(self.locks)
        return {
            "version": _VERSION,
            "meta": dict(self.meta),
            "locks": locks,
            "fields": fields,
            "order": order,
        }

    def write(self, path: str | Path) -> None:
        """Write the manifest as JSON to *path* (sorted, deterministic)."""
        Path(path).write_text(
            json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


#: The recorder of the run in flight, or None — module state on purpose,
#: mirroring the allocation sanitizer: the factory seam sits in library
#: code that cannot thread a recorder through every constructor.
_ACTIVE: LocksanRecorder | None = None

_ATEXIT_REGISTERED = False


def active() -> LocksanRecorder | None:
    """The currently active recorder, if any."""
    return _ACTIVE


@contextmanager
def activate(
    recorder: LocksanRecorder | None,
) -> Iterator[LocksanRecorder | None]:
    """Make *recorder* current for the dynamic extent; ``None`` is a no-op."""
    global _ACTIVE
    if recorder is None:
        yield _ACTIVE
        return
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


def ensure_recorder() -> tuple[LocksanRecorder | None, bool]:
    """Recorder for this process: ``(recorder, this_call_created_it)``.

    An already-active recorder (a ``--verify-locks`` harness) is reused;
    otherwise a new one is created — and installed as the active recorder
    with an atexit manifest hook — when ``REPRO_LOCKSAN`` is set.  Called
    by the lock factories so a plain ``REPRO_LOCKSAN=1 pytest`` run
    records without any harness.
    """
    global _ACTIVE, _ATEXIT_REGISTERED
    current = active()
    if current is not None:
        return current, False
    if not locksan_enabled():
        return None, False
    recorder = LocksanRecorder()
    _ACTIVE = recorder
    if not _ATEXIT_REGISTERED:
        _ATEXIT_REGISTERED = True
        atexit.register(_atexit_write)
    return recorder, True


def _atexit_write() -> None:
    recorder = _ACTIVE
    if recorder is not None:
        maybe_write_manifest(recorder)


def maybe_write_manifest(recorder: LocksanRecorder) -> Path | None:
    """Write the manifest to ``$REPRO_LOCKSAN_OUT`` if configured.

    Only the process that created the recorder writes — forked pool
    workers inherit the module state and must not clobber the parent's
    manifest.
    """
    out = os.environ.get(LOCKSAN_OUT_ENV, "").strip()
    if not out or os.getpid() != recorder._pid:
        return None
    path = Path(out)
    recorder.write(path)
    return path


def touch(field: str, write: bool = False) -> None:
    """Declare an access to a guarded *field* (canonical static name).

    No-op (one attribute check) when no recorder is active.
    """
    recorder = _ACTIVE
    if recorder is not None:
        recorder.on_touch(field, write)


# -- instrumented primitives ----------------------------------------------

class _SanLock:
    """A ``threading.Lock`` that reports acquire/release to the recorder."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            recorder = _ACTIVE
            if recorder is not None:
                recorder.on_acquire(self.name)
        return got

    def release(self) -> None:
        recorder = _ACTIVE
        if recorder is not None:
            recorder.on_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


class _SanRLock:
    """A ``threading.RLock`` wrapper; records outermost acquire/release only."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.RLock()
        self._tls = threading.local()

    def _depth(self) -> int:
        return getattr(self._tls, "depth", 0)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            depth = self._depth()
            self._tls.depth = depth + 1
            if depth == 0:
                recorder = _ACTIVE
                if recorder is not None:
                    recorder.on_acquire(self.name)
        return got

    def release(self) -> None:
        depth = self._depth()
        if depth == 1:
            recorder = _ACTIVE
            if recorder is not None:
                recorder.on_release(self.name)
        self._tls.depth = max(0, depth - 1)
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


class _SanCondition:
    """A ``threading.Condition`` over an instrumented non-reentrant lock.

    ``wait`` reports the release/re-acquire pair so the waiting thread's
    lockset stays truthful across the park.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._inner = threading.Lock()
        self._cond = threading.Condition(self._inner)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            recorder = _ACTIVE
            if recorder is not None:
                recorder.on_acquire(self.name)
        return got

    def release(self) -> None:
        recorder = _ACTIVE
        if recorder is not None:
            recorder.on_release(self.name)
        self._inner.release()

    def wait(self, timeout: float | None = None) -> bool:
        recorder = _ACTIVE
        if recorder is not None:
            recorder.on_release(self.name)
        try:
            # Forwarding wrapper: the while-predicate loop RC303 wants
            # lives at the *caller* of Condition.wait, not here.
            return self._cond.wait(timeout)  # noqa: RC303
        finally:
            if recorder is not None:
                recorder.on_acquire(self.name)

    def wait_for(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        recorder = _ACTIVE
        if recorder is not None:
            recorder.on_release(self.name)
        try:
            return self._cond.wait_for(predicate, timeout)
        finally:
            if recorder is not None:
                recorder.on_acquire(self.name)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


def make_lock(name: str) -> Any:
    """A ``Lock`` under *name* — instrumented iff ``REPRO_LOCKSAN`` is set.

    *name* must be the canonical static spelling
    (``module.Class.attr`` / ``module.global``) so the runtime manifest
    lines up with :class:`~repro.analysis.locks.LockModel`.
    """
    if not locksan_enabled():
        return threading.Lock()
    ensure_recorder()
    return _SanLock(name)


def make_rlock(name: str) -> Any:
    """An ``RLock`` under *name* — instrumented iff ``REPRO_LOCKSAN`` is set."""
    if not locksan_enabled():
        return threading.RLock()
    ensure_recorder()
    return _SanRLock(name)


def make_condition(name: str) -> Any:
    """A ``Condition`` under *name* — instrumented iff ``REPRO_LOCKSAN`` is set."""
    if not locksan_enabled():
        return threading.Condition()
    ensure_recorder()
    return _SanCondition(name)


# -- the --verify-locks harness -------------------------------------------

def _http_get(host: str, port: int, path: str, timeout: float) -> int:
    from http.client import HTTPConnection

    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        resp.read()
        return resp.status
    finally:
        conn.close()


def _static_model():
    """The static lock model over the installed ``repro`` package."""
    import repro

    from .checker import collect_files, parse_file
    from .graph import ProjectGraph
    from .locks import LockAnalysis

    package_dir = Path(repro.__file__).resolve().parent
    contexts = []
    for path in collect_files([package_dir]):
        try:
            contexts.append(parse_file(path))
        except SyntaxError:
            continue
    return LockAnalysis(ProjectGraph.from_contexts(contexts))


def cross_check(
    manifest: dict[str, Any], analysis: Any, scope: tuple[str, ...] = VERIFY_SCOPE
) -> list[str]:
    """Problems where the runtime manifest disagrees with the static model.

    Three classes: a field with runtime lockset violations; a field whose
    surviving runtime candidates miss every statically-inferred guard (or
    that the static model does not consider guarded at all); and a
    runtime acquisition-order edge that inverts a static order edge.
    """
    problems: list[str] = []
    guards = analysis.model.guarded_fields(scope)
    static_edges = set(analysis.model.order_edges)
    for field, entry in sorted(manifest.get("fields", {}).items()):
        for violation in entry["violations"][:1]:
            problems.append(
                f"{field}: lockset violation — touched with no lock held "
                f"on thread {violation['thread']!r} after being written "
                f"and shared across threads {entry['threads']}"
            )
        want = guards.get(field)
        if want is None:
            problems.append(
                f"{field}: runtime observed this guarded field but the "
                "static model infers no consistent guard for it in scope "
                f"{list(scope)} — model and instrumentation disagree"
            )
            continue
        candidates = entry["candidates"]
        if candidates is not None and not set(candidates) & set(want):
            problems.append(
                f"{field}: runtime candidates {sorted(candidates)} share "
                f"no lock with the static guard set {sorted(want)}"
            )
    runtime_edges = {
        (outer, inner)
        for outer, inners in manifest.get("order", {}).items()
        for inner in inners
    }
    for outer, inner in sorted(runtime_edges):
        if (inner, outer) in runtime_edges and outer < inner:
            problems.append(
                f"lock order: runtime acquired {outer} -> {inner} and "
                f"{inner} -> {outer} — deadlock-capable inversion observed"
            )
        elif (inner, outer) in static_edges and (outer, inner) not in static_edges:
            problems.append(
                f"lock order: runtime acquired {outer} then {inner}, but "
                f"the static lock graph only orders {inner} -> {outer}"
            )
    return problems


def verify_service_locks(
    queries_path: str,
    resident_path: str,
    workers: int = 1,
    requests: int = 4,
    concurrency: int = 2,
    timeout: float = 30.0,
) -> tuple[bool, dict[str, Any], list[str]]:
    """Boot the real service under the recorder and cross-check the model.

    Loads *resident_path* as the resident protein bank and *queries_path*
    as the query bank, starts a warm :class:`SearchService` behind a real
    HTTP server on an ephemeral port, drives it with the load client
    (plus the health/ready/metrics endpoints, which exercise the handler
    threads' read paths), drains, and returns
    ``(ok, manifest, problem lines)``.
    """
    # The factories consult the environment at lock construction time, so
    # the flag must be up before the service object is built.
    os.environ[LOCKSAN_ENV] = "1"

    # Imported lazily: repro.serve constructs its locks through this
    # module, so a top-level import of the service here would be circular.
    from ..core.config import PipelineConfig
    from ..seqs.fasta import load_bank
    from ..serve import SearchService, ServiceConfig
    from ..serve.client import run_load
    from ..serve.server import SearchHTTPServer

    queries_bank = load_bank(queries_path)
    resident = load_bank(resident_path)
    pairs = [
        (queries_bank.names[i], queries_bank[i].text())
        for i in range(len(queries_bank))
    ]
    recorder = LocksanRecorder(
        meta={
            "workers": int(workers),
            "requests": int(requests),
            "concurrency": int(concurrency),
            "queries": os.path.basename(queries_path),
            "resident": os.path.basename(resident_path),
        }
    )
    with activate(recorder):
        service = SearchService(
            PipelineConfig(workers=int(workers)),
            resident,
            ServiceConfig(workers=int(workers)),
        )
        service.start(warm=True)
        server = SearchHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        try:
            summary = run_load(
                host,
                port,
                [pairs] * int(requests),
                concurrency=int(concurrency),
                timeout=timeout,
            )
            for path in ("/healthz", "/readyz", "/metrics"):
                _http_get(host, port, path, timeout)
        finally:
            server.drain_and_shutdown(timeout=timeout)
            server.server_close()
            thread.join(timeout=10)

    manifest = recorder.manifest()
    problems: list[str] = []
    if summary["served"] != int(requests) or summary["errors"]:
        problems.append(
            f"load run unhealthy: served {summary['served']}/{requests}, "
            f"errors {summary['errors']}, shed {summary['shed']} — the "
            "lockset evidence below covers an unrepresentative run"
        )
    if not manifest["locks"]:
        problems.append(
            "no instrumented locks were ever acquired — the factory seam "
            "is not wired or REPRO_LOCKSAN did not reach the service"
        )
    problems.extend(cross_check(manifest, _static_model()))
    maybe_write_manifest(recorder)
    return not problems, manifest, problems
