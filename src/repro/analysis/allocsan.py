"""Runtime allocation sanitizer (``REPRO_ALLOCSAN=1``).

The static RC201/RC203 rules prove the kernel *code* cannot allocate per
batch; this module proves it about a *run*.  When enabled, tracemalloc
deltas are recorded around each instrumented scope — one entry per kernel
``score`` call site, plus the engine / merge / gapped-stage spans — into a
JSON-able manifest:

=============================  ========================================
``kernel.<backend>.score``     per-batch kernel scoring (the zero-churn
                               claim itself: steady-state growth ≈ 0)
``step2.engine.run_stream``    the whole batched-engine sweep
``step2.merge``                the executor's shard merge
``step3.gapped``               gapped extension of the survivors
=============================  ========================================

Each scope accumulates ``calls`` (how many times it ran), ``alloc_bytes``
(net traced-memory growth across all runs of the scope) and ``peak_bytes``
(the largest single-run peak above the scope's entry point).  A committed
*budget* manifest pins the expected numbers for the example workload;
:func:`verify_pipeline_allocs` (the ``repro-check --verify-allocs`` mode)
re-runs the pipeline under the recorder and diffs against the budget:
call counts must match exactly (a drift means the batching changed) and
byte counts may exceed the budget only by the tolerance factor plus a
fixed slack (Python-version allocator noise).

Nesting caveat: scopes nest (the engine span contains every kernel span),
and ``tracemalloc.reset_peak`` is global, so an *outer* scope's
``peak_bytes`` is measured from its last inner scope's exit rather than
its own entry.  Net ``alloc_bytes`` is exact for every scope; treat peaks
as per-leaf-scope numbers.

Like the determinism sanitizer, all recording hooks are no-ops without an
active recorder — one module-attribute check per scope when off — so the
instrumented hot paths cost nothing in timed benchmark repetitions, which
activate the recorder only for separate instrumented re-runs.
"""

from __future__ import annotations

import json
import os
import threading
import tracemalloc
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

__all__ = [
    "AllocsanRecorder",
    "activate",
    "active",
    "allocsan_enabled",
    "compare_budgets",
    "ensure_recorder",
    "load_budget",
    "measure",
    "verify_pipeline_allocs",
    "write_budget",
]

#: Enables the sanitizer for plain pipeline runs (tests, production).
ALLOCSAN_ENV = "REPRO_ALLOCSAN"
#: Optional path the pipeline writes its manifest to after each run.
ALLOCSAN_OUT_ENV = "REPRO_ALLOCSAN_OUT"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Manifest/budget schema version.
_VERSION = 1

#: A measured scope may exceed its budgeted bytes by this factor…
TOLERANCE = 1.5
#: …plus this absolute slack (allocator noise, interpreter version drift).
SLACK_BYTES = 1 << 18


def allocsan_enabled() -> bool:
    """True when ``REPRO_ALLOCSAN`` asks for per-run allocation manifests."""
    return os.environ.get(ALLOCSAN_ENV, "").strip().lower() in _TRUTHY


class AllocsanRecorder:
    """Accumulates one run's per-scope allocation counters."""

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        self.meta: dict[str, Any] = dict(meta or {})
        self._scopes: dict[str, dict[str, int]] = {}
        self._started_tracing = False
        # In a served context scopes run on dispatcher threads, not just
        # the main thread, so the counters need a lock of their own.
        self._mu = threading.Lock()

    def note(self, scope: str, alloc_bytes: int, peak_bytes: int) -> None:
        """Fold one scope execution into the counters."""
        with self._mu:
            entry = self._scopes.setdefault(
                scope, {"calls": 0, "alloc_bytes": 0, "peak_bytes": 0}
            )
            entry["calls"] += 1
            entry["alloc_bytes"] += max(0, int(alloc_bytes))
            entry["peak_bytes"] = max(entry["peak_bytes"], max(0, int(peak_bytes)))

    def manifest(self) -> dict[str, Any]:
        """The JSON-able manifest of everything recorded so far."""
        with self._mu:
            scopes = {k: dict(v) for k, v in sorted(self._scopes.items())}
        return {
            "version": _VERSION,
            "meta": dict(self.meta),
            "scopes": scopes,
        }

    def write(self, path: str | Path) -> None:
        """Write the manifest as JSON to *path* (sorted, deterministic)."""
        Path(path).write_text(
            json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


#: The recorder of the run in flight, or None — module state on purpose,
#: mirroring the determinism sanitizer: scopes span pipeline, engine and
#: executor without threading a recorder through every signature.
#: Recording happens in the parent process only; pool workers run without
#: an active recorder and their scopes are simply absent.
_ACTIVE: AllocsanRecorder | None = None


def active() -> AllocsanRecorder | None:
    """The currently active recorder, if any."""
    return _ACTIVE


@contextmanager
def activate(
    recorder: AllocsanRecorder | None,
) -> Iterator[AllocsanRecorder | None]:
    """Make *recorder* current for the dynamic extent; ``None`` is a no-op.

    Starts tracemalloc if it is not already tracing and stops it again on
    exit in that case, so activation is hermetic.
    """
    global _ACTIVE
    if recorder is None:
        yield _ACTIVE
        return
    previous = _ACTIVE
    _ACTIVE = recorder
    started = False
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        started = True
    try:
        yield recorder
    finally:
        _ACTIVE = previous
        if started:
            tracemalloc.stop()


@contextmanager
def measure(scope: str) -> Iterator[None]:
    """Record the traced-memory delta of the ``with`` body under *scope*.

    No-op (one attribute check) when no recorder is active or tracemalloc
    is not tracing.
    """
    recorder = _ACTIVE
    if recorder is None or not tracemalloc.is_tracing():
        yield
        return
    before, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        yield
    finally:
        after, peak = tracemalloc.get_traced_memory()
        recorder.note(scope, after - before, peak - before)


def maybe_write_manifest(recorder: AllocsanRecorder) -> Path | None:
    """Write the manifest to ``$REPRO_ALLOCSAN_OUT`` if configured."""
    out = os.environ.get(ALLOCSAN_OUT_ENV, "").strip()
    if not out:
        return None
    path = Path(out)
    recorder.write(path)
    return path


def ensure_recorder() -> tuple[AllocsanRecorder | None, bool]:
    """Recorder for a pipeline run: ``(recorder, this_run_created_it)``.

    An already-active recorder (a ``--verify-allocs`` harness) is reused;
    otherwise a new one is created when ``REPRO_ALLOCSAN`` is set.
    """
    current = active()
    if current is not None:
        return current, False
    if allocsan_enabled():
        return AllocsanRecorder(), True
    return None, False


# -- budgets ------------------------------------------------------------

def write_budget(manifest: dict[str, Any], path: str | Path) -> None:
    """Commit *manifest* as the allocation budget (sorted, deterministic)."""
    Path(path).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_budget(path: str | Path) -> dict[str, Any]:
    """Load a committed budget manifest, checking its version."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    version = data.get("version")
    if version != _VERSION:
        raise ValueError(
            f"allocation budget {path} has version {version!r}; "
            f"this build expects {_VERSION}"
        )
    return dict(data)


def compare_budgets(
    measured: dict[str, Any],
    budget: dict[str, Any],
    tolerance: float = TOLERANCE,
    slack_bytes: int = SLACK_BYTES,
) -> list[str]:
    """Problems a measured manifest has against the committed budget.

    Call counts compare exactly (the example workload is deterministic, so
    a drift means the batching itself changed); byte counters may exceed
    the budget by ``tolerance × budget + slack`` before failing.  Scopes
    present on only one side always fail — a vanished scope means the
    instrumentation moved, a new one means the budget must be regenerated.
    """
    problems: list[str] = []
    scopes_m: dict[str, Any] = measured.get("scopes", {})
    scopes_b: dict[str, Any] = budget.get("scopes", {})
    for name in sorted(set(scopes_m) | set(scopes_b)):
        got, want = scopes_m.get(name), scopes_b.get(name)
        if want is None:
            problems.append(
                f"{name}: scope not in the committed budget — regenerate "
                "the budget if this instrumentation point is intended"
            )
            continue
        if got is None:
            problems.append(
                f"{name}: budgeted scope never ran — instrumentation "
                "removed or the workload no longer reaches it"
            )
            continue
        if int(got["calls"]) != int(want["calls"]):
            problems.append(
                f"{name}: ran {got['calls']} times, budget says "
                f"{want['calls']} — batching behaviour drifted"
            )
        for key in ("alloc_bytes", "peak_bytes"):
            limit = int(int(want[key]) * tolerance) + slack_bytes
            if int(got[key]) > limit:
                problems.append(
                    f"{name}: {key} {got[key]} exceeds budget "
                    f"{want[key]} (limit {limit})"
                )
    return problems


def verify_pipeline_allocs(
    queries_path: str,
    genome_path: str,
    budget_path: str | Path,
    workers: int = 2,
    threshold: int = 45,
    flank: int = 12,
    update: bool = False,
) -> tuple[bool, dict[str, Any], list[str]]:
    """Run the pipeline under the recorder and diff against the budget.

    With ``update=True`` the measured manifest replaces the committed
    budget instead of being compared to it (always "ok").  Returns
    ``(ok, measured manifest, problem lines)``.
    """
    # Imported lazily for the same reason as the determinism verifier:
    # repro.core records into this module, so a top-level import of the
    # pipeline here would be circular.
    from ..core.config import PipelineConfig
    from ..core.pipeline import SeedComparisonPipeline
    from ..seqs.alphabet import DNA
    from ..seqs.fasta import load_bank, read_fasta

    queries = load_bank(queries_path)
    genome = next(iter(read_fasta(genome_path, DNA)))
    recorder = AllocsanRecorder(
        meta={
            "workers": int(workers),
            "queries": os.path.basename(queries_path),
            "genome": os.path.basename(genome_path),
        }
    )
    config = PipelineConfig(
        workers=int(workers), ungapped_threshold=threshold, flank=flank
    )
    with activate(recorder):
        SeedComparisonPipeline(config).compare_with_genome(queries, genome)
    manifest = recorder.manifest()
    if update:
        write_budget(manifest, budget_path)
        return True, manifest, []
    budget = load_budget(budget_path)
    problems = compare_budgets(manifest, budget)
    return not problems, manifest, problems
