"""RC2xx — kernel dtype & allocation rules for the step-2 backends.

The step-2 scoring kernels imitate the paper's processing elements:
fixed-width integer accumulators and zero per-pair buffer churn.  The
registry enforces both *at runtime* (the ``int16`` probe, the bit-identity
self-check); this module enforces them *statically*, on every tree state
CI sees, using the :mod:`repro.analysis.dtypes` abstract domain over the
:class:`~repro.analysis.graph.ProjectGraph`:

* **RC200** — accumulator overflow: a backend declaring an integer
  ``score_dtype`` must provably hold ``window × max|score|`` at the
  default configuration, and narrow (< 32-bit) dtypes must also register
  a config-time ``probe`` so non-default windows are refused rather than
  silently wrapped.
* **RC201** — hidden copies on the per-batch path: fancy indexing,
  ``astype`` without ``copy=False``, ``flatten()``, and concatenating
  constructors inside functions reachable from a kernel ``score`` entry
  point.  Setup code (``__init__``, ``prepare``, factories) is exempt —
  the kernel protocol allows allocation there.
* **RC202** — silent dtype promotion: arithmetic mixing two known,
  different array dtypes without ``out=``/``dtype=``/``casting=``, or a
  narrow-dtype array combined with a constant beyond its bounds.
* **RC203** — per-batch allocation: ``np.empty``/``zeros``/… into a local
  variable inside a loop body or inside any function the engine's batch
  loop calls per batch; scratch stored on ``self`` (monotone growth) is
  the sanctioned pattern and is exempt.
* **RC204** — backend-contract conformance: the accumulator dtype a
  kernel's body actually uses must match the ``score_dtype`` its
  ``@register_backend`` decorator declares, and a kernel that
  materialises per-pair window matrices must declare a
  ``max_batch_pairs`` cap.

All rules follow the house conservatism: no information ⇒ no finding.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from .dtypes import (
    AbstractValue,
    Env,
    Evaluator,
    call_arg_env,
    class_attr_env,
    default_window,
    dtype_bounds,
    interpret,
    matrix_score_bound,
)
from .flows import ProjectAnalyses
from .graph import FunctionInfo, ProjectGraph, dotted_name
from .rules import ProjectRule, Violation, register

__all__ = [
    "BackendDecl",
    "accumulator_peak",
    "collect_backends",
]

#: Dtypes narrow enough that a config-time probe must guard non-default
#: windows (32-bit and wider accumulators absorb any plausible config).
_NARROW_BITS = 32

#: Allocating constructors RC203 polices on the per-batch path.
_ALLOC_FUNCS = frozenset({"empty", "zeros", "ones", "full", "arange"})

#: Constructors that concatenate (always allocate + copy) for RC201.
_CONCAT_FUNCS = frozenset({"concatenate", "stack", "vstack", "hstack"})


@dataclass(frozen=True)
class BackendDecl:
    """One ``@register_backend`` registration, statically decoded."""

    name: str
    factory: FunctionInfo
    decorator: ast.Call
    score_dtype: str | None
    max_batch_pairs: int | None
    has_probe: bool
    kernel_class: str | None
    kernel_methods: dict[str, str]


def _const_of(node: ast.expr) -> object | None:
    """Literal constant value of a decorator argument, if any."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.LShift):
        left, right = _const_of(node.left), _const_of(node.right)
        if isinstance(left, int) and isinstance(right, int):
            return left << right
    return None


def collect_backends(graph: ProjectGraph) -> list[BackendDecl]:
    """Every backend registration the graph discovered, decoded.

    Uses the decorator call's literal keyword arguments only; anything
    computed stays ``None`` and downstream rules skip the check.
    """
    decls: list[BackendDecl] = []
    for qual in sorted(graph.backend_factories):
        info = graph.functions[qual]
        deco = next(
            (
                d.call
                for d in info.decorators
                if d.leaf == "register_backend" and d.call is not None
            ),
            None,
        )
        if deco is None:
            continue
        name = None
        if deco.args:
            value = _const_of(deco.args[0])
            if isinstance(value, str):
                name = value
        kwargs = {kw.arg: kw.value for kw in deco.keywords if kw.arg}
        score_dtype = None
        if "score_dtype" in kwargs:
            value = _const_of(kwargs["score_dtype"])
            if isinstance(value, str):
                score_dtype = value
        max_batch = None
        if "max_batch_pairs" in kwargs:
            value = _const_of(kwargs["max_batch_pairs"])
            if isinstance(value, int):
                max_batch = value
        has_probe = "probe" in kwargs and not (
            isinstance(kwargs["probe"], ast.Constant)
            and kwargs["probe"].value is None
        )
        decls.append(
            BackendDecl(
                name=name or info.name,
                factory=info,
                decorator=deco,
                score_dtype=score_dtype,
                max_batch_pairs=max_batch,
                has_probe=has_probe,
                kernel_class=graph.backend_kernel_of.get(qual),
                kernel_methods=graph.backend_factories.get(qual, {}),
            )
        )
    return decls


def accumulator_peak(graph: ProjectGraph) -> int | None:
    """``window × max|score|`` at the default configuration, or ``None``.

    The two factors come straight from the source (the embedded matrix
    texts and the ``UngappedConfig`` defaults), so this is the statically
    proven worst-case magnitude any score accumulator must hold.
    """
    bound = matrix_score_bound(graph)
    window = default_window(graph)
    if bound is None or window is None:
        return None
    return window * bound


def _score_scope(graph: ProjectGraph) -> set[str]:
    """Functions reachable from any kernel ``score`` entry point.

    This is the per-batch hot path: the engine calls ``score`` once per
    batch, so everything it reaches runs with per-batch frequency.
    """
    seeds = [
        methods["score"]
        for methods in graph.backend_factories.values()
        if "score" in methods
    ]
    return graph.reachable_from(seeds)


def _function_env(
    project: ProjectAnalyses, info: FunctionInfo, self_env: Env | None = None
) -> Env:
    """Final local environment of *info* (self attrs seeded when given)."""
    env: Env = dict(self_env or {})
    analysis = project.dtypes
    by_node = {id(site.node): site.callee for site in info.calls}

    def lookup(node: ast.Call) -> AbstractValue | None:
        callee = by_node.get(id(node))
        if callee is None:
            return None
        summary = analysis.summaries.get(callee)
        if summary is None or summary.returns.is_unknown:
            return None
        return summary.returns

    interpret(list(info.node.body), env, lookup, None)
    return env


def _kernel_self_envs(project: ProjectAnalyses) -> dict[str, Env]:
    """``self.*`` environment per kernel class, under its factory's args.

    The factory's return statement pins the constructor arguments
    (``FusedKernel(config, np.dtype(np.int16))``), which seed the
    ``__init__`` parameters; the resulting attribute table is what makes
    ``self._score``'s dtype knowable inside ``score``.
    """
    graph = project.graph
    envs: dict[str, Env] = {}
    for qual in sorted(graph.backend_factories):
        cls = graph.backend_kernel_of.get(qual)
        if cls is None or cls in envs:
            continue
        factory = graph.functions[qual]
        init_args: dict[str, AbstractValue] = {}
        init_qual = f"{cls}.__init__"
        init_info = graph.functions.get(init_qual)
        if init_info is not None:
            fenv = _function_env(project, factory)
            ev = Evaluator(fenv)
            for node in ast.walk(factory.node):
                if (
                    isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Call)
                ):
                    init_args = call_arg_env(node.value, init_info, ev)
                    break
        envs[cls] = class_attr_env(graph, cls, init_args)
    return envs


def _loop_line_spans(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[int, int]]:
    """(first, last) line spans of every loop body in *func*."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While)):
            last = max(
                (n.end_lineno or n.lineno)
                for n in ast.walk(node)
                if hasattr(n, "lineno")
            )
            spans.append((node.lineno, last))
    return spans


def _in_loop(spans: list[tuple[int, int]], node: ast.AST) -> bool:
    line = getattr(node, "lineno", None)
    if line is None:
        return False
    return any(lo < line <= hi for lo, hi in spans)


def _called_in_loop(graph: ProjectGraph, scope: set[str]) -> set[str]:
    """Functions in *scope* invoked (transitively) from inside a loop body.

    The engine's ``for p0, p1 in batches: kernel.score(...)`` makes the
    whole ``score`` call tree per-batch even though no loop is lexically
    visible inside the kernels; synthetic dispatch edges carry the
    "inside a loop" property across the registry indirection.
    """
    in_loop: set[str] = set()
    for info in graph.functions.values():
        spans = _loop_line_spans(info.node)
        if not spans:
            continue
        loop_calls = [
            site for site in info.calls if _in_loop(spans, site.node)
        ]
        for site in loop_calls:
            if site.callee is not None and site.callee in scope:
                in_loop.add(site.callee)
        if any(site.callee is None for site in loop_calls):
            # Unresolved calls inside the loop: the synthetic edges know
            # which kernels they may dispatch to.
            raws = {
                site.raw.rpartition(".")[2]
                for site in loop_calls
                if site.callee is None and site.raw is not None
            }
            for target in graph.extra_edges.get(info.qualname, ()):
                leaf = target.rpartition(".")[2]
                if leaf in raws and target in scope:
                    in_loop.add(target)
    # Transitive closure: a per-batch function's callees are per-batch.
    frontier = list(in_loop)
    while frontier:
        qual = frontier.pop()
        for callee in graph.callees(qual):
            if callee in scope and callee not in in_loop:
                in_loop.add(callee)
                frontier.append(callee)
    return in_loop


def _array_index(ev: Evaluator, index: ast.expr) -> bool:
    """True when a subscript index is (or contains) an array expression."""
    parts = (
        list(index.elts) if isinstance(index, ast.Tuple) else [index]
    )
    for part in parts:
        if isinstance(part, ast.Slice) or (
            isinstance(part, ast.Constant) and part.value is None
        ):
            continue
        if isinstance(part, ast.BinOp):
            left, right = ev.eval(part.left), ev.eval(part.right)
            if left.kind == "array" or right.kind == "array":
                return True
            continue
        if ev.eval(part).kind == "array":
            return True
    return False


def _path_of(graph: ProjectGraph, info: FunctionInfo) -> Path:
    return graph.modules[info.module].ctx.path


@register
class AccumulatorOverflowRule(ProjectRule):
    """RC200 — declared score dtypes must hold the proven window peak."""

    code = "RC200"
    summary = (
        "backend score_dtype must provably hold window x max|score| at the "
        "default config, and narrow dtypes must register a probe"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        """Prove (or refute) the overflow bound per registered backend."""
        graph = project.graph
        peak = accumulator_peak(graph)
        if peak is None:
            return
        for decl in collect_backends(graph):
            if decl.score_dtype is None:
                continue
            bounds = dtype_bounds(decl.score_dtype)
            if bounds is None:  # python-int / float: no fixed width to prove
                continue
            lo, hi = bounds
            path = _path_of(graph, decl.factory)
            if peak > hi or -peak < lo:
                yield self.violation_at(
                    path,
                    decl.decorator,
                    f"backend '{decl.name}' declares score_dtype "
                    f"'{decl.score_dtype}' but the default window peak "
                    f"{peak} exceeds its range [{lo}, {hi}] — scores can "
                    "overflow; widen the dtype or shrink the window",
                )
            elif (hi - lo + 1).bit_length() - 1 < _NARROW_BITS and not decl.has_probe:
                yield self.violation_at(
                    path,
                    decl.decorator,
                    f"backend '{decl.name}' uses narrow score_dtype "
                    f"'{decl.score_dtype}' (safe at the default window: "
                    f"peak {peak} fits [{lo}, {hi}]) but registers no "
                    "probe — non-default windows would overflow silently; "
                    "add a config-time probe",
                )


@register
class HiddenCopyRule(ProjectRule):
    """RC201 — no hidden copies on the per-batch kernel path."""

    code = "RC201"
    summary = (
        "functions reachable from kernel score entry points must not use "
        "fancy indexing, astype without copy=False, flatten, or "
        "concatenating constructors"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        """Flag copy-making constructs reachable from ``score``."""
        graph = project.graph
        scope = _score_scope(graph)
        self_envs = _kernel_self_envs(project)
        for qual in sorted(scope):
            info = graph.functions[qual]
            if info.name in ("__init__", "prepare"):
                continue  # setup code may allocate/copy by design
            cls_prefix = (
                f"{info.module}.{info.class_name}" if info.class_name else None
            )
            env = _function_env(
                project, info, self_envs.get(cls_prefix or "", None)
            )
            ev = Evaluator(env)
            path = _path_of(graph, info)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, ast.Load
                ):
                    if _array_index(ev, node.slice):
                        yield self.violation_at(
                            path,
                            node,
                            f"{info.name}() gathers with fancy indexing on "
                            "the per-batch path — this allocates a copy "
                            "per call; use np.take(..., out=) into scratch",
                        )
                elif isinstance(node, ast.Call):
                    raw = dotted_name(node.func)
                    if raw is None:
                        continue
                    head, _, leaf = raw.rpartition(".")
                    if leaf == "astype" and head:
                        kwargs = {kw.arg for kw in node.keywords}
                        if "copy" not in kwargs:
                            yield self.violation_at(
                                path,
                                node,
                                f"{info.name}() calls astype without "
                                "copy=False on the per-batch path — it "
                                "copies even when the dtype already "
                                "matches",
                            )
                    elif leaf == "flatten" and head:
                        yield self.violation_at(
                            path,
                            node,
                            f"{info.name}() calls flatten() (always a "
                            "copy) on the per-batch path — use ravel() "
                            "or reshape(-1)",
                        )
                    elif head in ("np", "numpy") and leaf in _CONCAT_FUNCS:
                        yield self.violation_at(
                            path,
                            node,
                            f"{info.name}() calls np.{leaf} on the "
                            "per-batch path — concatenation allocates "
                            "and copies every batch; write into "
                            "preallocated scratch instead",
                        )


@register
class SilentPromotionRule(ProjectRule):
    """RC202 — no silent dtype promotion in kernel arithmetic."""

    code = "RC202"
    summary = (
        "kernel arithmetic mixing known different array dtypes must pin "
        "the result dtype with out=, dtype=, or casting="
    )

    _UFUNCS = frozenset({"add", "subtract", "multiply", "maximum", "minimum"})

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        """Flag mixed-dtype arithmetic with an unpinned result dtype."""
        graph = project.graph
        scope = _score_scope(graph)
        seeds = {
            methods[name]
            for methods in graph.backend_factories.values()
            for name in ("score", "prepare")
            if name in methods
        }
        scope = scope | graph.reachable_from(seeds)
        self_envs = _kernel_self_envs(project)
        for qual in sorted(scope):
            info = graph.functions[qual]
            cls_prefix = (
                f"{info.module}.{info.class_name}" if info.class_name else None
            )
            env = _function_env(
                project, info, self_envs.get(cls_prefix or "", None)
            )
            ev = Evaluator(env)
            path = _path_of(graph, info)
            for node in ast.walk(info.node):
                finding = self._check_node(ev, node)
                if finding is not None:
                    yield self.violation_at(
                        path, node, f"{info.name}() {finding}"
                    )

    def _check_node(self, ev: Evaluator, node: ast.AST) -> str | None:
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult)
        ):
            return self._check_pair(ev, node.left, node.right, pinned=False)
        if isinstance(node, ast.Call):
            raw = dotted_name(node.func)
            if raw is None:
                return None
            head, _, leaf = raw.rpartition(".")
            if head not in ("np", "numpy") or leaf not in self._UFUNCS:
                return None
            if len(node.args) < 2:
                return None
            kwargs = {kw.arg for kw in node.keywords if kw.arg}
            pinned = bool(kwargs & {"out", "dtype", "casting"})
            return self._check_pair(
                ev, node.args[0], node.args[1], pinned=pinned
            )
        return None

    @staticmethod
    def _check_pair(
        ev: Evaluator, left: ast.expr, right: ast.expr, *, pinned: bool
    ) -> str | None:
        if pinned:
            return None
        lv, rv = ev.eval(left), ev.eval(right)
        if (
            lv.kind == "array"
            and rv.kind == "array"
            and lv.dtype is not None
            and rv.dtype is not None
            and lv.dtype != rv.dtype
        ):
            return (
                f"mixes array dtypes {lv.dtype} and {rv.dtype} without "
                "out=/dtype=/casting= — the promoted dtype is implicit "
                "and version-dependent; pin it explicitly"
            )
        for array, scalar in ((lv, rv), (rv, lv)):
            if array.kind != "array" or scalar.kind != "scalar":
                continue
            bounds = dtype_bounds(array.dtype) if array.dtype else None
            if bounds is None:
                continue
            lo, hi = bounds
            s = scalar.range
            if s.lo is None or s.hi is None:
                continue
            if s.hi > hi or s.lo < lo:
                return (
                    f"combines a {array.dtype} array with constant range "
                    f"[{s.lo}, {s.hi}] outside [{lo}, {hi}] without "
                    "dtype=/out= — NEP 50 keeps the narrow dtype and the "
                    "value wraps; widen explicitly"
                )
        return None


@register
class BatchLoopAllocRule(ProjectRule):
    """RC203 — no per-batch allocation into locals; scratch lives on self."""

    code = "RC203"
    summary = (
        "allocating constructors on the per-batch path must fill reused "
        "self.* scratch, not fresh locals"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        """Flag constructor calls that allocate once per batch."""
        graph = project.graph
        scope = _score_scope(graph)
        per_batch = _called_in_loop(graph, scope)
        for qual in sorted(scope):
            info = graph.functions[qual]
            spans = _loop_line_spans(info.node)
            scratch_lines = self._scratch_assign_lines(info)
            path = _path_of(graph, info)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                raw = dotted_name(node.func)
                if raw is None:
                    continue
                head, _, leaf = raw.rpartition(".")
                if head not in ("np", "numpy") or leaf not in _ALLOC_FUNCS:
                    continue
                if node.lineno in scratch_lines:
                    continue  # monotone self-scratch growth is the pattern
                if qual in per_batch or _in_loop(spans, node):
                    yield self.violation_at(
                        path,
                        node,
                        f"{info.name}() allocates with np.{leaf} on the "
                        "per-batch path — reuse preallocated self scratch "
                        "(grow monotonically, slice per batch) instead of "
                        "allocating every batch",
                    )

    @staticmethod
    def _scratch_assign_lines(info: FunctionInfo) -> set[int]:
        """Lines whose allocation lands in a ``self.*`` attribute."""
        lines: set[int] = set()
        for node in ast.walk(info.node):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    lines.add(node.lineno)
        return lines


@register
class BackendContractRule(ProjectRule):
    """RC204 — kernel bodies must match their registered metadata."""

    code = "RC204"
    summary = (
        "a kernel's actual accumulator dtype and batching behaviour must "
        "match its register_backend declaration"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        """Cross-check each registration against the kernel body."""
        graph = project.graph
        self_envs = _kernel_self_envs(project)
        for decl in collect_backends(graph):
            path = _path_of(graph, decl.factory)
            declared = decl.score_dtype
            if declared is None:
                continue
            declared_bounds = dtype_bounds(declared)
            score_qual = decl.kernel_methods.get("score")
            if score_qual is None:
                continue
            actual = self._actual_accumulator(
                project, score_qual, self_envs, decl
            )
            if declared_bounds is None:
                # "python-int" etc.: a numpy accumulator contradicts it.
                if actual is not None:
                    yield self.violation_at(
                        path,
                        decl.decorator,
                        f"backend '{decl.name}' declares score_dtype "
                        f"'{declared}' but its kernel accumulates into a "
                        f"numpy {actual} array — the metadata misleads "
                        "probe/overflow reasoning; declare the real dtype",
                    )
            elif actual is not None and actual != declared:
                yield self.violation_at(
                    path,
                    decl.decorator,
                    f"backend '{decl.name}' declares score_dtype "
                    f"'{declared}' but its kernel accumulates into "
                    f"{actual} — declaration and body must agree",
                )
            yield from self._check_batching(project, decl, path)

    @staticmethod
    def _actual_accumulator(
        project: ProjectAnalyses,
        score_qual: str,
        self_envs: dict[str, Env],
        decl: BackendDecl,
    ) -> str | None:
        graph = project.graph
        info = graph.functions.get(score_qual)
        if info is None:
            return None
        summary = project.dtypes.summaries.get(score_qual)
        if summary is not None and summary.accumulator_dtype is not None:
            return summary.accumulator_dtype
        # Re-derive with the factory-seeded self.* environment, which the
        # generic per-function pass (unknown self) could not see.
        if decl.kernel_class is None:
            return None
        self_env = self_envs.get(decl.kernel_class)
        if not self_env:
            return None
        env = _function_env(project, info, self_env)
        ev = Evaluator(env)
        dtypes: set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw is None or raw.rpartition(".")[2] != "add":
                continue
            head = raw.rpartition(".")[0]
            if head not in ("np", "numpy"):
                continue
            out = next(
                (kw.value for kw in node.keywords if kw.arg == "out"), None
            )
            if out is None:
                continue
            value = ev.eval(out)
            if value.kind == "array" and value.dtype is not None:
                dtypes.add(value.dtype)
        return next(iter(dtypes)) if len(dtypes) == 1 else None

    def _check_batching(
        self, project: ProjectAnalyses, decl: BackendDecl, path: Path
    ) -> Iterator[Violation]:
        """A kernel materialising per-pair windows must cap its batches."""
        if decl.max_batch_pairs is not None:
            return
        graph = project.graph
        score_qual = decl.kernel_methods.get("score")
        if score_qual is None:
            return
        info = graph.functions.get(score_qual)
        if info is None:
            return
        self_envs = _kernel_self_envs(project)
        self_env = (
            self_envs.get(decl.kernel_class) if decl.kernel_class else None
        )
        env = _function_env(project, info, self_env)
        ev = Evaluator(env)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                if _array_index(ev, node.slice):
                    yield self.violation_at(
                        path,
                        decl.decorator,
                        f"backend '{decl.name}' gathers per-pair window "
                        "matrices in score() but declares no "
                        "max_batch_pairs cap — unbounded batches make "
                        "the gather's memory footprint unbounded; "
                        "declare a cap in register_backend",
                    )
                    return
