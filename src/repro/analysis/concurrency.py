"""Concurrency & determinism project rules (the ``RC1xx`` family).

These rules guard the property PR 1–3 built the executor around — a
bit-identical step-2 merge across any worker count, retry, and fallback —
at the places where Python silently loses it.  Unlike RC001–RC005 they are
*cross-module*: each runs over :class:`~repro.analysis.flows.ProjectAnalyses`
(call graph + taint/release fixpoints) rather than one file.

=========  =============================================================
RC100      A hash-order- or environment-dependent value (``set``
           iteration, ``os.listdir``, wall clock, unseeded RNG) is
           iterated inside merge/ordering code (``core/executor.py``,
           ``core/supervisor.py``, ``core/pipeline.py``,
           ``core/results.py``) — directly or via a project function
           whose return value carries the taint through the call graph.
RC101      Module-level mutable state (or an open handle) lives in a
           module whose functions run inside pool workers or
           initializers: fork-inherited copies diverge silently between
           parent and workers.
RC102      Every ``SharedMemory(create=True)`` must be released —
           ``close()`` **and** ``unlink()`` — on all paths, i.e. in a
           ``finally`` block, possibly through a helper whose release
           behaviour the call graph proves.
RC103      Floating-point accumulation over an unordered iteration
           (``sum`` over ``set``/dict-values) — float addition is not
           associative, so the reduction value depends on hash order.
RC104      ``time.sleep`` inside a retry loop outside
           ``core/supervisor.py`` — ad-hoc backoff bypasses the
           supervisor's pair-count-derived deadlines and backoff policy.
=========  =============================================================
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from .flows import FunctionFlow, ProjectAnalyses
from .graph import CallSite, FunctionInfo, ModuleInfo, ProjectGraph, dotted_name
from .rules import ProjectRule, Violation, register

__all__ = [
    "MERGE_SCOPE",
    "NondetReachesMergeRule",
    "ForkUnsafeModuleStateRule",
    "ShmLifecycleRule",
    "UnorderedFloatReductionRule",
    "RawRetryLoopRule",
]

#: Files (package-relative) holding merge/result-ordering code — RC100 sinks.
MERGE_SCOPE: tuple[str, ...] = (
    "core/executor.py",
    "core/supervisor.py",
    "core/pipeline.py",
    "core/results.py",
)

#: Pool methods whose first positional argument runs in a worker process.
_POOL_DISPATCH: frozenset[str] = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "starmap"}
)

#: Constructors of mutable module-level state RC101 flags.
_MUTABLE_CONSTRUCTORS: frozenset[str] = frozenset(
    {"list", "dict", "set", "bytearray"}
)


def _module_path(graph: ProjectGraph, module: str) -> Path:
    return graph.modules[module].ctx.path


@register
class NondetReachesMergeRule(ProjectRule):
    """RC100 — nondeterministically-ordered values must not reach the merge."""

    code = "RC100"
    summary = (
        "a hash-order/environment-dependent value (set iteration, "
        "os.listdir, wall clock, unseeded RNG) is iterated in step-2 "
        "merge/ordering code (core/{executor,supervisor,pipeline,results}"
        ".py), tracked through the call graph; sort or use an ordered "
        "container before merging"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        graph = project.graph
        for info in graph.functions_in(MERGE_SCOPE):
            flow = project.flow.function_flow(info)
            for hazard in flow.hazards:
                reasons = "; ".join(
                    sorted({t.reason for t in hazard.taints})
                )
                yield self.violation_at(
                    _module_path(graph, info.module),
                    hazard.node,
                    f"{info.name}() iterates a value with "
                    f"nondeterministic order ({reasons}); the shard merge "
                    "must be bit-identical — sort this explicitly",
                )


def _worker_entry_seeds(graph: ProjectGraph) -> set[str]:
    """Functions handed to pools as initializers or dispatched tasks."""
    seeds: set[str] = set()
    for info in graph.functions.values():
        mod = graph.modules[info.module]
        for site in info.calls:
            node = site.node
            for kw in node.keywords:
                if kw.arg == "initializer":
                    qual = _resolve_name_arg(graph, mod, kw.value)
                    if qual is not None:
                        seeds.add(qual)
            func_name = dotted_name(node.func)
            if (
                func_name is not None
                and func_name.rpartition(".")[2] in _POOL_DISPATCH
                and node.args
            ):
                qual = _resolve_name_arg(graph, mod, node.args[0])
                if qual is not None:
                    seeds.add(qual)
    return seeds


def _resolve_name_arg(
    graph: ProjectGraph, mod: ModuleInfo, node: ast.expr
) -> str | None:
    """Resolve a function reference passed as an argument (not called)."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    expanded = name
    if head in mod.imports:
        expanded = mod.imports[head] + ("." + rest if rest else "")
    if expanded in graph.functions:
        return expanded
    if not rest and name in mod.functions:
        return mod.functions[name]
    return None


@register
class ForkUnsafeModuleStateRule(ProjectRule):
    """RC101 — no mutable module state in worker-reachable modules."""

    code = "RC101"
    summary = (
        "module-level mutable state (dict/list/set/bytearray or an open "
        "handle) in a module whose functions run inside pool workers or "
        "initializers; fork-inherited copies diverge silently between "
        "parent and workers — keep worker state process-local and "
        "explicitly initialized"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        graph = project.graph
        reachable = graph.reachable_from(_worker_entry_seeds(graph))
        worker_modules = sorted({graph.functions[q].module for q in reachable})
        for module in worker_modules:
            mod = graph.modules[module]
            for stmt in mod.ctx.tree.body:
                yield from self._check_stmt(graph, mod, stmt)

    def _check_stmt(
        self, graph: ProjectGraph, mod: ModuleInfo, stmt: ast.stmt
    ) -> Iterator[Violation]:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        # Dunder metadata (__all__ etc.) is read-only by convention.
        names = [n for n in names if not (n.startswith("__") and n.endswith("__"))]
        if not names:
            return
        if _is_mutable_value(value):
            yield self.violation_at(
                mod.ctx.path,
                stmt,
                f"module-level mutable state `{', '.join(names)}` in "
                f"{mod.name}, whose functions run inside pool workers; "
                "fork-inherited copies diverge between parent and workers",
            )
        elif _is_open_handle(value):
            yield self.violation_at(
                mod.ctx.path,
                stmt,
                f"module-level open handle `{', '.join(names)}` in "
                f"{mod.name}, whose functions run inside pool workers; "
                "forked children share the file position/lock state",
            )


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


def _is_open_handle(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func) in ("open", "io.open", "gzip.open")
    )


@register
class ShmLifecycleRule(ProjectRule):
    """RC102 — shared-memory segments are released on every path."""

    code = "RC102"
    summary = (
        "SharedMemory(create=True) without close()+unlink() coverage in a "
        "finally block (directly, or via a helper the call graph proves "
        "releases its argument/elements); a leaked segment survives the "
        "process and fills /dev/shm"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        graph = project.graph
        for info in graph.functions.values():
            yield from self._check_function(project, info)

    def _check_function(
        self, project: ProjectAnalyses, info: FunctionInfo
    ) -> Iterator[Violation]:
        creations = list(_shm_creations(info))
        if not creations:
            return
        graph = project.graph
        sites = {id(s.node): s for s in info.calls}
        appended_to = _append_map(info.node)
        released = _released_names(info.node, sites, project)
        for var, node in creations:
            covered = released.get(var, frozenset())
            for container in appended_to.get(var, ()):
                covered = covered | released.get(container, frozenset())
            missing = sorted({"close", "unlink"} - covered)
            if missing:
                pretty = " and ".join(f"{m}()" for m in missing)
                yield self.violation_at(
                    _module_path(graph, info.module),
                    node,
                    f"SharedMemory segment `{var}` created in {info.name}() "
                    f"is missing {pretty} on the exception path; release it "
                    "in a finally block",
                )


def _shm_creations(info: FunctionInfo) -> Iterator[tuple[str, ast.AST]]:
    """(variable, creation node) for every ``SharedMemory(create=True)``."""
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Assign):
            continue
        call = node.value
        if not isinstance(call, ast.Call):
            continue
        name = dotted_name(call.func)
        if name is None or name.rpartition(".")[2] != "SharedMemory":
            continue
        create = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )
        if not create:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id, node


def _append_map(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, set[str]]:
    """Variable → containers it is ``append``-ed to inside the function."""
    out: dict[str, set[str]] = {}
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and isinstance(node.func.value, ast.Name)
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Name)
        ):
            out.setdefault(node.args[0].id, set()).add(node.func.value.id)
    return out


def _released_names(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    sites: dict[int, CallSite],
    project: ProjectAnalyses,
) -> dict[str, frozenset[str]]:
    """Name → cleanup methods applied to it inside any ``finally`` block.

    Direct ``name.close()``/``name.unlink()`` calls count, as do calls
    ``helper(name)`` whose callee the release fixpoint proves closes and/or
    unlinks that parameter (or its elements) — which is how the executor's
    ``finally: _release_segments(segments)`` is accepted.
    """
    out: dict[str, frozenset[str]] = {}

    def note(name: str, methods: frozenset[str]) -> None:
        out[name] = out.get(name, frozenset()) | methods

    for try_node in (n for n in ast.walk(fn) if isinstance(n, ast.Try)):
        for stmt in try_node.finalbody:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("close", "unlink")
                    and isinstance(node.func.value, ast.Name)
                ):
                    note(node.func.value.id, frozenset({node.func.attr}))
                    continue
                site = sites.get(id(node))
                if site is None or site.callee is None:
                    continue
                releases = project.release.releases(site.callee)
                for pos, arg in enumerate(node.args):
                    if isinstance(arg, ast.Name):
                        methods = releases.get(pos, frozenset())
                        if methods:
                            note(arg.id, methods)
    return out


@register
class UnorderedFloatReductionRule(ProjectRule):
    """RC103 — no accumulation over unordered iteration."""

    code = "RC103"
    summary = (
        "accumulating over set/dict-values iteration (sum() or += in a "
        "loop); float addition is non-associative, so the result depends "
        "on hash order — reduce over a sorted or insertion-ordered "
        "sequence, or use math.fsum"
    )

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        graph = project.graph
        for info in graph.functions.values():
            flow = project.flow.function_flow(info)
            path = _module_path(graph, info.module)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    yield from self._check_sum(flow, path, info, node)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    yield from self._check_loop(flow, path, info, node)

    def _check_sum(
        self,
        flow: FunctionFlow,
        path: Path,
        info: FunctionInfo,
        node: ast.Call,
    ) -> Iterator[Violation]:
        if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
            return
        if not node.args:
            return
        arg = node.args[0]
        unordered = any(
            t.kind == "unordered" for t in flow.expr_taints(arg)
        )
        is_values_view = (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "values"
        )
        if unordered or is_values_view:
            what = "dict values" if is_values_view and not unordered else "a set"
            yield self.violation_at(
                path,
                node,
                f"{info.name}() sums over {what}; float addition is "
                "non-associative, so the total depends on iteration order "
                "— sort first or use math.fsum",
            )

    def _check_loop(
        self,
        flow: FunctionFlow,
        path: Path,
        info: FunctionInfo,
        node: ast.For | ast.AsyncFor,
    ) -> Iterator[Violation]:
        if not any(t.kind == "unordered" for t in flow.expr_taints(node.iter)):
            return
        for inner in ast.walk(node):
            if isinstance(inner, ast.AugAssign) and isinstance(inner.op, ast.Add):
                yield self.violation_at(
                    path,
                    inner,
                    f"{info.name}() accumulates with += while iterating an "
                    "unordered collection; the reduction order (and any "
                    "float total) depends on hash order",
                )
                return


@register
class RawRetryLoopRule(ProjectRule):
    """RC104 — retry/backoff loops go through the supervisor's helpers."""

    code = "RC104"
    summary = (
        "time.sleep() inside a loop outside core/supervisor.py; ad-hoc "
        "retry/backoff loops bypass SupervisorConfig.backoff()/"
        "deadline_for() and their pair-count-derived deadlines"
    )

    #: The one module allowed to sleep in a loop: it owns the policy.
    ALLOWED_FILES: tuple[str, ...] = ("core/supervisor.py",)

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        graph = project.graph
        for info in graph.functions.values():
            if info.package_rel in self.ALLOWED_FILES:
                continue
            sites = {id(s.node): s for s in info.calls}
            path = _module_path(graph, info.module)
            flagged: set[int] = set()
            for loop in (
                n
                for n in ast.walk(info.node)
                if isinstance(n, (ast.For, ast.AsyncFor, ast.While))
            ):
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call) or id(node) in flagged:
                        continue
                    site = sites.get(id(node))
                    raw = site.raw if site is not None else dotted_name(node.func)
                    if raw == "time.sleep":
                        flagged.add(id(node))
                        yield self.violation_at(
                            path,
                            node,
                            f"{info.name}() sleeps inside a retry loop; "
                            "use SupervisorConfig.backoff()/deadline_for() "
                            "(core/supervisor.py) instead of ad-hoc backoff",
                        )
