"""Tree walker driving the RC rules over files and directories.

:func:`check_paths` is the programmatic API the ``repro-check`` console
script and the test-suite both use.  It expands directories, parses each
``.py`` file once, runs every (selected) registered per-file rule, then
builds the cross-module :class:`~repro.analysis.graph.ProjectGraph` over
the package files and runs the project rules (RC1xx) on it.  Suppression
happens at three levels, most local wins:

* inline ``# noqa: RC00X`` on the violating line (codes required — a bare
  ``noqa`` does not silence RC rules);
* file-level ``# repro-check: noqa`` (whole file) or
  ``# repro-check: noqa: RC101`` (listed codes, file-wide) on any line;
* a committed baseline (:mod:`repro.analysis.baseline`) absorbing known
  findings so a new rule can land before the tree is fully clean.

Violations return in a deterministic (path, line, column, rule) order —
determinism of the checker itself is held to the same standard it
enforces.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

# Importing ``concurrency`` / ``kernels`` / ``threads`` registers the
# RC1xx concurrency, RC2xx kernel-dtype and RC3xx thread/lock project
# rules respectively.
from . import concurrency  # noqa: F401  (import-for-registration)
from . import kernels  # noqa: F401  (import-for-registration)
from . import threads  # noqa: F401  (import-for-registration)
from .baseline import Baseline
from .flows import ProjectAnalyses
from .graph import ProjectGraph
from .rules import FileContext, ProjectRule, Violation, iter_rules, package_relative

__all__ = ["CheckResult", "check_paths", "collect_files", "parse_file"]

#: Directories never descended into.  ``analysis_fixtures`` holds the
#: deliberately-violating RC1xx test fixtures — they are checked by the
#: tests via explicit paths, never swept up in a tree walk.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", "analysis_fixtures"}
)

#: ``# noqa: RC001, RC004`` (codes required — a bare ``# noqa`` does not
#: silence RC rules; invariants are suppressed one at a time, on purpose).
_NOQA = re.compile(r"#\s*noqa:\s*(?P<codes>RC\d{3}(?:\s*,\s*RC\d{3})*)", re.IGNORECASE)

#: File-level suppression: ``# repro-check: noqa`` silences every rule for
#: the file; ``# repro-check: noqa: RC101, RC103`` only the listed codes.
_FILE_NOQA = re.compile(
    r"#\s*repro-check:\s*noqa(?::\s*(?P<codes>RC\d{3}(?:\s*,\s*RC\d{3})*))?",
    re.IGNORECASE,
)


class CheckResult:
    """Violations plus the bookkeeping the CLI reports."""

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self.files_checked: int = 0
        self.parse_errors: list[str] = []
        #: Findings absorbed by the ``--baseline`` file, if one was given.
        self.baseline_suppressed: int = 0
        #: Baseline entries that matched nothing — stale debt to delete.
        self.baseline_stale: list[tuple[str, str, str]] = []

    @property
    def ok(self) -> bool:
        """True when no violation and no parse error was recorded."""
        return not self.violations and not self.parse_errors


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand file/directory arguments into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                # Skip components *below* the argument only: explicitly
                # pointing repro-check inside a skipped directory (the
                # fixture tests do) must still work.
                if not _SKIP_DIRS.intersection(sub.relative_to(path).parts[:-1]):
                    out.add(sub)
        elif path.suffix == ".py":
            out.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def parse_file(path: Path) -> FileContext:
    """Read and parse one file into a rule context (may raise SyntaxError)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        package_rel=package_relative(path),
        tree=tree,
        source=source,
    )


def _suppressed_codes(source: str) -> dict[int, frozenset[str]]:
    """Line number → RC codes silenced by a ``# noqa: RC...`` comment."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA.search(line)
        if m:
            codes = frozenset(
                c.strip().upper() for c in m.group("codes").split(",")
            )
            out[lineno] = codes
    return out


def _file_suppression(source: str) -> frozenset[str] | None:
    """File-wide suppression: ``None`` off, empty set = all codes, else codes."""
    for line in source.splitlines():
        m = _FILE_NOQA.search(line)
        if m:
            codes = m.group("codes")
            if codes is None:
                return frozenset()
            return frozenset(c.strip().upper() for c in codes.split(","))
    return None


class _Suppressions:
    """Per-file inline and file-level noqa state, keyed by path string."""

    def __init__(self) -> None:
        self._by_file: dict[str, tuple[dict[int, frozenset[str]], frozenset[str] | None]] = {}

    def scan(self, ctx: FileContext) -> None:
        self._by_file[str(ctx.path)] = (
            _suppressed_codes(ctx.source),
            _file_suppression(ctx.source),
        )

    def silences(self, violation: Violation) -> bool:
        lines, file_level = self._by_file.get(violation.path, ({}, None))
        if file_level is not None and (
            not file_level or violation.rule in file_level
        ):
            return True
        return violation.rule in lines.get(violation.line, frozenset())


def check_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> CheckResult:
    """Run the (selected) RC rules over *paths*.

    Parse failures are recorded, not raised: a file the checker cannot read
    is a finding, never a crash that hides other findings.  When *baseline*
    is given its entries absorb matching violations (counted in
    ``baseline_suppressed``) and entries matching nothing are reported as
    stale.
    """
    selected = frozenset(s.upper() for s in select) if select is not None else None
    result = CheckResult()
    suppressions = _Suppressions()
    contexts: list[FileContext] = []
    for path in collect_files(paths):
        try:
            ctx = parse_file(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            result.parse_errors.append(f"{path}: {exc}")
            continue
        result.files_checked += 1
        suppressions.scan(ctx)
        contexts.append(ctx)

    violations: list[Violation] = []
    file_rules = [r for r in iter_rules(selected) if not isinstance(r, ProjectRule)]
    project_rules = [r for r in iter_rules(selected) if isinstance(r, ProjectRule)]
    for ctx in contexts:
        for rule in file_rules:
            violations.extend(rule.check(ctx))
    if project_rules:
        project = ProjectAnalyses(
            ProjectGraph.from_contexts(c for c in contexts if c.in_package)
        )
        for project_rule in project_rules:
            violations.extend(project_rule.check_project(project))

    violations = [v for v in violations if not suppressions.silences(v)]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    if baseline is not None:
        violations, result.baseline_suppressed = baseline.filter(violations)
        result.baseline_stale = baseline.stale_entries()
    result.violations = violations
    return result


def iter_rendered(result: CheckResult) -> Iterator[str]:
    """Render parse errors then violations as report lines."""
    for err in result.parse_errors:
        yield f"error: {err}"
    for v in result.violations:
        yield v.render()
