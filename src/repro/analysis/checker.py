"""Tree walker driving the RC rules over files and directories.

:func:`check_paths` is the programmatic API the ``repro-check`` console
script and the test-suite both use: it expands directories, parses each
``.py`` file once, runs every (selected) registered rule, honours inline
``# noqa: RC00X`` suppressions, and returns violations in a deterministic
(path, line, column, rule) order — determinism of the checker itself is
held to the same standard it enforces.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from .rules import FileContext, Violation, iter_rules, package_relative

__all__ = ["CheckResult", "check_paths", "collect_files", "parse_file"]

#: Directories never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache"})

#: ``# noqa: RC001, RC004`` (codes required — a bare ``# noqa`` does not
#: silence RC rules; invariants are suppressed one at a time, on purpose).
_NOQA = re.compile(r"#\s*noqa:\s*(?P<codes>RC\d{3}(?:\s*,\s*RC\d{3})*)", re.IGNORECASE)


class CheckResult:
    """Violations plus the bookkeeping the CLI reports."""

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self.files_checked: int = 0
        self.parse_errors: list[str] = []

    @property
    def ok(self) -> bool:
        """True when no violation and no parse error was recorded."""
        return not self.violations and not self.parse_errors


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand file/directory arguments into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(sub.parts):
                    out.add(sub)
        elif path.suffix == ".py":
            out.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def parse_file(path: Path) -> FileContext:
    """Read and parse one file into a rule context (may raise SyntaxError)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        package_rel=package_relative(path),
        tree=tree,
        source=source,
    )


def _suppressed_codes(source: str) -> dict[int, frozenset[str]]:
    """Line number → RC codes silenced by a ``# noqa: RC...`` comment."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA.search(line)
        if m:
            codes = frozenset(
                c.strip().upper() for c in m.group("codes").split(",")
            )
            out[lineno] = codes
    return out


def check_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
) -> CheckResult:
    """Run the (selected) RC rules over *paths*.

    Parse failures are recorded, not raised: a file the checker cannot read
    is a finding, never a crash that hides other findings.
    """
    selected = frozenset(s.upper() for s in select) if select is not None else None
    result = CheckResult()
    for path in collect_files(paths):
        try:
            ctx = parse_file(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            result.parse_errors.append(f"{path}: {exc}")
            continue
        result.files_checked += 1
        noqa = _suppressed_codes(ctx.source)
        for rule in iter_rules(selected):
            for violation in rule.check(ctx):
                if violation.rule in noqa.get(violation.line, frozenset()):
                    continue
                result.violations.append(violation)
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return result


def iter_rendered(result: CheckResult) -> Iterator[str]:
    """Render parse errors then violations as report lines."""
    for err in result.parse_errors:
        yield f"error: {err}"
    for v in result.violations:
        yield v.render()
