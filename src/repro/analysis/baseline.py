"""Committed-baseline suppression for ``repro-check``.

A new rule family must be able to land in one PR without a tree-wide
fix-up in the same change.  The baseline file records the findings that
existed when the rule landed; ``repro-check --baseline FILE`` subtracts
them, so only *new* findings fail the gate while the debt stays visible
(and shrinks: a baseline entry that no longer matches anything is reported
as stale so it can be deleted).

Entries are keyed by ``(rule, path, message)`` with a count — deliberately
**not** by line number, so unrelated edits above a baselined finding do not
resurrect it.  Paths are stored repo-relative as written by the check run
that created the file and matched by suffix, so the same baseline works
from the repo root, from CI, and from an absolute-path test invocation.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from .rules import Violation

__all__ = [
    "Baseline",
    "baseline_key",
    "load_baseline",
    "prune_baseline",
    "write_baseline",
]

#: Baseline schema version, bumped on incompatible format changes.
_VERSION = 1

#: Key identifying one finding class: (rule, posix path, message).
BaselineKey = tuple[str, str, str]


def baseline_key(violation: Violation) -> BaselineKey:
    """Line-independent identity of a violation."""
    return (
        violation.rule,
        PurePosixPath(violation.path).as_posix(),
        violation.message,
    )


def _path_matches(stored: str, actual: str) -> bool:
    """True when *actual* is *stored* or ends with ``/<stored>``."""
    if stored == actual:
        return True
    return actual.endswith("/" + stored)


@dataclass
class Baseline:
    """Loaded baseline: finding-class counts plus match bookkeeping."""

    entries: Counter[BaselineKey] = field(default_factory=Counter)
    #: Keys that matched at least one violation during :meth:`filter`.
    matched: set[BaselineKey] = field(default_factory=set)
    #: How many violations each key actually absorbed — the pruned counts.
    matched_counts: Counter[BaselineKey] = field(default_factory=Counter)

    def filter(self, violations: list[Violation]) -> tuple[list[Violation], int]:
        """Split violations into (kept, suppressed-count).

        Each baseline entry absorbs up to its recorded count of matching
        violations; any excess beyond the count is kept — a regression
        that *adds* instances of a baselined finding still fails.
        """
        budget = Counter(self.entries)
        kept: list[Violation] = []
        suppressed = 0
        for violation in violations:
            rule, path, message = baseline_key(violation)
            hit: BaselineKey | None = None
            for key in budget:
                if (
                    key[0] == rule
                    and key[2] == message
                    and budget[key] > 0
                    and _path_matches(key[1], path)
                ):
                    hit = key
                    break
            if hit is not None:
                budget[hit] -= 1
                suppressed += 1
                self.matched.add(hit)
                self.matched_counts[hit] += 1
            else:
                kept.append(violation)
        return kept, suppressed

    def stale_entries(self) -> list[BaselineKey]:
        """Entries that matched nothing in the last :meth:`filter` run."""
        return sorted(set(self.entries) - self.matched)


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; raises ``ValueError`` on a bad schema."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    entries: Counter[BaselineKey] = Counter()
    for item in data.get("entries", []):
        key = (str(item["rule"]), str(item["path"]), str(item["message"]))
        entries[key] += int(item.get("count", 1))
    return Baseline(entries=entries)


def write_baseline(violations: list[Violation], path: str | Path) -> int:
    """Write the baseline recording *violations*; returns the entry count.

    Output is deterministic (sorted by rule, path, message) so regenerating
    an unchanged tree produces a byte-identical file.
    """
    counts = Counter(baseline_key(v) for v in violations)
    entries = [
        {"rule": rule, "path": rel, "message": message, "count": count}
        for (rule, rel, message), count in sorted(counts.items())
    ]
    payload = {"version": _VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return len(entries)


def prune_baseline(baseline: Baseline, path: str | Path) -> tuple[int, int]:
    """Rewrite *path* keeping only the entries the last check run matched.

    Each kept entry's count is lowered to the number of violations it
    actually absorbed, so paid-down debt shrinks the file instead of
    lingering as stale headroom.  Output ordering matches
    :func:`write_baseline` (sorted by rule, path, message), so pruning an
    already-tight baseline is byte-identical a no-op.  Returns
    ``(entries kept, entries dropped)``.
    """
    kept = [
        {"rule": rule, "path": rel, "message": message, "count": count}
        for (rule, rel, message), count in sorted(baseline.matched_counts.items())
        if count > 0
    ]
    payload = {"version": _VERSION, "entries": kept}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return len(kept), len(baseline.entries) - len(kept)
