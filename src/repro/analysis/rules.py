"""Project-invariant lint rules (the ``RC`` series).

Generic linters check style; these rules check the *correctness invariants*
this reproduction depends on and that ruff cannot express:

========  ==================================================================
RC001     No unseeded randomness inside ``repro`` — the sharded executor's
          bit-identical merge and the reproducible workload generators both
          assume every random stream is an explicitly seeded
          ``np.random.default_rng(seed)``.
RC002     Every ``np.zeros/empty/full/arange/array`` in a hot-path package
          must pass an explicit ``dtype=`` — implicit platform-dependent
          dtypes (int32 on Windows, int64 on Linux) silently de-synchronise
          the batched kernel from the PE simulator.
RC003     No mutable default arguments anywhere.
RC004     Timing goes through ``time.perf_counter`` (see
          :mod:`repro.util.timing`); ``time.time()`` is not monotonic and
          must never feed a performance table.
RC005     Public functions in ``core/``, ``extend/`` and ``index/`` are
          fully type-annotated, so the mypy gate actually covers the hot
          path instead of inferring ``Any``.
RC105     Modules instrumented through :mod:`repro.obs` never read the
          monotonic clock directly — a raw ``time.perf_counter()`` there
          is wall time that silently escapes span and metric accounting.
RC106     ``ungapped_scores_paired`` is only called through the step-2
          backend registry (:mod:`repro.extend.backends`) — a direct call
          elsewhere in the package bypasses backend selection and the
          registry's bit-identity accuracy gate.
RC107     No unbounded blocking calls under ``serve/`` (nor in the
          supervision layer ``core/supervisor.py`` / ``core/executor.py``
          it delegates to) — every ``queue.get/put``, ``Event.wait``,
          ``Thread.join``, ``Lock.acquire`` and ``Future.result`` there
          must carry ``timeout=`` or be non-blocking, so a stuck
          dispatcher or dead worker surfaces as a deadline miss instead of
          a wedged handler thread.
RC110     No bare ``print(...)`` / ``sys.stderr.write`` / ``sys.stdout.write``
          under ``serve/`` or ``obs/`` outside functions named ``main`` —
          the service's only sanctioned outputs are :mod:`logging`, the
          metrics/trace endpoints and the flight recorder; stray stdout in
          a long-lived server corrupts CLI JSON output and is invisible to
          operators scraping the observability surface.
========  ==================================================================

Rules are registered in :data:`REGISTRY` via :func:`register`; adding a rule
is subclassing :class:`Rule` and decorating it.  Each rule sees a parsed
:class:`FileContext` and yields :class:`Violation` records.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flows import ProjectAnalyses

__all__ = [
    "FileContext",
    "Violation",
    "Rule",
    "ProjectRule",
    "REGISTRY",
    "register",
    "iter_rules",
]

#: Packages (paths relative to the ``repro`` package root) whose numeric
#: arrays feed the batched kernel or the cycle simulators — RC002 scope.
HOT_PATH_PREFIXES: tuple[str, ...] = ("extend/", "psc/", "hwsim/")
HOT_PATH_FILES: tuple[str, ...] = (
    "core/executor.py",
    # The supervision layer hands arrays straight back into the merge; a
    # dtype drift in a retried/fallback shard would break bit-identity.
    "core/supervisor.py",
    "core/faults.py",
)

#: numpy constructors whose default dtype is platform- or input-dependent
#: (or, for ``ones``, silently float64 where the kernels expect integers).
DTYPE_REQUIRED_FUNCS: frozenset[str] = frozenset(
    {"zeros", "empty", "full", "ones", "arange", "array"}
)

#: ``np.random`` attributes that are allowed: the seeded-generator
#: constructor (argument presence is checked separately) and the types
#: used in annotations.
NP_RANDOM_ALLOWED: frozenset[str] = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
)

#: Packages (relative to ``repro``) whose public functions RC005 covers.
ANNOTATION_SCOPES: tuple[str, ...] = (
    "core/",
    "extend/",
    "index/",
    "analysis/",
    "obs/",
)

#: Package files allowed to call ``ungapped_scores_paired`` directly —
#: RC106 exemptions: the defining module and the registry backends that
#: wrap it.  Everything else must go through
#: :func:`repro.extend.backends.resolve_backend` so the accuracy gate and
#: backend selection are never bypassed.
PAIRED_KERNEL_ALLOWED: tuple[str, ...] = ("extend/ungapped.py",)
PAIRED_KERNEL_ALLOWED_PREFIXES: tuple[str, ...] = ("extend/backends/",)

#: Modules instrumented through :mod:`repro.obs` — RC105 scope.  Timing in
#: these files must go through ``repro.obs.trace`` (``clock``, ``Timer``,
#: ``span``) so every wall-clock read lands in span/metric accounting;
#: ``time.sleep`` and other non-clock ``time`` functions remain fine.
OBS_INSTRUMENTED_FILES: tuple[str, ...] = (
    "core/pipeline.py",
    "core/executor.py",
    "core/supervisor.py",
    "core/profile.py",
    "extend/batched.py",
    "rasc/host.py",
    "rasc/platform.py",
)


@dataclass(frozen=True)
class Violation:
    """One rule finding, pointing at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: RC00X message`` — the checker's output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    #: Path relative to the innermost ``repro`` package directory as POSIX
    #: (e.g. ``core/executor.py``), or ``None`` for files outside it
    #: (tests, benchmarks, scripts).
    package_rel: str | None
    tree: ast.Module
    source: str

    @property
    def in_package(self) -> bool:
        """True when the file lives inside the ``repro`` package."""
        return self.package_rel is not None

    @property
    def in_hot_path(self) -> bool:
        """True when the file is RC002 hot-path scope."""
        rel = self.package_rel
        if rel is None:
            return False
        return rel.startswith(HOT_PATH_PREFIXES) or rel in HOT_PATH_FILES

    @property
    def in_annotation_scope(self) -> bool:
        """True when the file is RC005 scope."""
        rel = self.package_rel
        return rel is not None and rel.startswith(ANNOTATION_SCOPES)


def package_relative(path: Path) -> str | None:
    """Path relative to the innermost ancestor directory named ``repro``.

    ``src/repro/core/executor.py`` → ``core/executor.py``; paths with no
    ``repro`` ancestor (tests, benchmarks) return ``None``.
    """
    parts = path.parts
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "repro":
            return PurePosixPath(*parts[i + 1 :]).as_posix()
    return None


class Rule:
    """Base class for RC rules; subclasses override :meth:`check`."""

    code: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield every violation of this rule in *ctx*."""
        raise NotImplementedError
        yield  # pragma: no cover

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` at *node*'s location."""
        return Violation(
            rule=self.code,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for cross-module rules (the RC1xx family).

    Project rules see the whole parsed tree at once — call graph, name
    resolution, flow summaries — via :class:`~repro.analysis.flows.ProjectAnalyses`
    instead of one file at a time.  Their per-file :meth:`check` is a
    no-op; the checker invokes :meth:`check_project` after the file pass.
    """

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Project rules contribute nothing to the per-file pass."""
        return iter(())

    def check_project(self, project: ProjectAnalyses) -> Iterator[Violation]:
        """Yield every violation of this rule across the project."""
        raise NotImplementedError
        yield  # pragma: no cover

    def violation_at(
        self, path: Path | str, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` at *node*'s location in *path*."""
        return Violation(
            rule=self.code,
            path=str(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


#: Rule registry: code → rule instance, in registration (= report) order.
REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY` (keyed by code)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls()
    return cls


def iter_rules(select: frozenset[str] | None = None) -> Iterator[Rule]:
    """Registered rules, optionally restricted to the *select* codes."""
    for code, rule in REGISTRY.items():
        if select is None or code in select:
            yield rule


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class UnseededRandomRule(Rule):
    """RC001 — no unseeded randomness inside the ``repro`` package."""

    code = "RC001"
    summary = (
        "unseeded randomness in repro: use np.random.default_rng(seed); "
        "the stdlib random module and legacy np.random.* break shard-merge "
        "determinism"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_package:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            ctx,
                            node,
                            "stdlib `random` is banned in repro; use a "
                            "seeded np.random.default_rng(seed)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.violation(
                        ctx,
                        node,
                        "stdlib `random` is banned in repro; use a "
                        "seeded np.random.default_rng(seed)",
                    )
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if name.startswith(prefix):
                        attr = name[len(prefix) :]
                        if attr == "default_rng":
                            if not node.args and not node.keywords:
                                yield self.violation(
                                    ctx,
                                    node,
                                    "np.random.default_rng() without a seed "
                                    "is entropy-seeded; pass an explicit seed",
                                )
                        elif attr not in NP_RANDOM_ALLOWED:
                            yield self.violation(
                                ctx,
                                node,
                                f"legacy global-state np.random.{attr}() is "
                                "banned; use a seeded "
                                "np.random.default_rng(seed)",
                            )


@register
class ExplicitDtypeRule(Rule):
    """RC002 — hot-path numpy constructors must pass ``dtype=``."""

    code = "RC002"
    summary = (
        "np.zeros/empty/full/arange/array in hot-path packages "
        "(extend/, psc/, hwsim/, core/{executor,supervisor,faults}.py) "
        "must pass an explicit dtype= to prevent int32/int64 drift "
        "between kernel and simulator"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_hot_path:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            mod, _, attr = name.rpartition(".")
            if mod not in ("np", "numpy") or attr not in DTYPE_REQUIRED_FUNCS:
                continue
            if any(kw.arg is None for kw in node.keywords):
                # A ``**kwargs`` splat may well forward dtype= (the batched
                # kernel's option-forwarding helpers do); absence cannot be
                # proven statically, so a splatted call is never flagged.
                continue
            if not any(kw.arg == "dtype" for kw in node.keywords):
                yield self.violation(
                    ctx,
                    node,
                    f"np.{attr}(...) without explicit dtype= in a hot-path "
                    "module; the default dtype is platform/input dependent",
                )


@register
class MutableDefaultRule(Rule):
    """RC003 — no mutable default arguments."""

    code = "RC003"
    summary = "mutable default argument (shared across calls)"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default in {node.name}(); use None and "
                        "create the object inside the function",
                    )


@register
class WallClockRule(Rule):
    """RC004 — ``time.time()`` never times anything."""

    code = "RC004"
    summary = (
        "time.time() is not monotonic; use time.perf_counter() or "
        "time.monotonic() (repro.util.timing.Stopwatch)"
    )

    #: Monotonic clocks the rule accepts.  ``perf_counter`` is the project
    #: default (highest resolution); ``monotonic`` is equally valid for
    #: deadlines/timeouts where resolution does not matter.
    ALLOWED_CLOCKS: frozenset[str] = frozenset({"perf_counter", "monotonic"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _dotted(node.func) == "time.time"
            ):
                yield self.violation(
                    ctx,
                    node,
                    "time.time() is banned; use time.perf_counter() or "
                    "time.monotonic() (repro.util.timing.Stopwatch)",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        yield self.violation(
                            ctx,
                            node,
                            "importing time.time is banned; use "
                            "time.perf_counter() or time.monotonic()",
                        )


@register
class PublicAnnotationRule(Rule):
    """RC005 — public hot-path functions are fully annotated."""

    code = "RC005"
    summary = (
        "public functions in core/, extend/, index/, analysis/ must have "
        "complete parameter and return annotations (the mypy gate is only "
        "as strong as the annotations it sees)"
    )

    def _missing(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 is_method: bool) -> list[str]:
        missing: list[str] = []
        args = fn.args
        positional = list(args.posonlyargs) + list(args.args)
        if is_method and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        for a in positional + list(args.kwonlyargs):
            if a.annotation is None:
                missing.append(a.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if fn.returns is None:
            missing.append("return")
        return missing

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_annotation_scope:
            return

        def visit(body: list[ast.stmt], is_class: bool) -> Iterator[Violation]:
            for node in body:
                if isinstance(node, ast.ClassDef):
                    yield from visit(node.body, is_class=True)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    public = not node.name.startswith("_") or node.name == "__init__"
                    if not public:
                        continue
                    missing = self._missing(node, is_method=is_class)
                    if missing:
                        yield self.violation(
                            ctx,
                            node,
                            f"public function {node.name}() is missing "
                            f"annotations for: {', '.join(missing)}",
                        )

        yield from visit(ctx.tree.body, is_class=False)


@register
class DirectClockRule(Rule):
    """RC105 — instrumented modules read the clock through ``repro.obs``."""

    code = "RC105"
    summary = (
        "direct time.perf_counter()/time.monotonic() in an obs-instrumented "
        "module (core/{pipeline,executor,supervisor,profile}.py, "
        "extend/batched.py, rasc/{host,platform}.py); route timing through "
        "repro.obs.trace (clock/Timer/span) so it lands in span and metric "
        "accounting"
    )

    #: Monotonic clock reads the rule intercepts.  ``time.time`` is already
    #: banned everywhere by RC004.
    CLOCKS: frozenset[str] = frozenset(
        {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.package_rel not in OBS_INSTRUMENTED_FILES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if (
                    name is not None
                    and name.startswith("time.")
                    and name[len("time.") :] in self.CLOCKS
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"direct {name}() in an obs-instrumented module; "
                        "use repro.obs.trace.clock()/Timer/span so the "
                        "reading lands in span and metric accounting",
                    )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
                and node.level == 0
            ):
                for alias in node.names:
                    if alias.name in self.CLOCKS:
                        yield self.violation(
                            ctx,
                            node,
                            f"importing time.{alias.name} into an "
                            "obs-instrumented module is banned; use "
                            "repro.obs.trace.clock()/Timer/span",
                        )


#: Package prefix RC107 covers: the long-lived service, where one wedged
#: blocking call stalls every subsequent request.
SERVE_SCOPE_PREFIX = "serve/"

#: Individual files RC107 also covers: the supervision layer the service
#: delegates every request to.  A bare ``future.result()`` there wedges
#: the dispatcher exactly as surely as one under ``serve/`` — the warm
#: pool runs these functions on the service's own threads.
BLOCKING_SCOPE_FILES = ("core/supervisor.py", "core/executor.py")


@register
class UnboundedBlockingRule(Rule):
    """RC107 — no unbounded blocking calls in the serving layer."""

    code = "RC107"
    summary = (
        "potentially-unbounded blocking call under serve/; every "
        "queue.get/put, Event.wait, Thread.join, Lock.acquire and "
        "Future.result in the service must pass timeout= (not None) or be "
        "non-blocking (block=False / blocking=False) so a stuck component "
        "degrades into a deadline miss, never a wedged thread"
    )

    #: Methods that block forever when called bare.  For all but ``put``
    #: the call is only suspicious with zero positional arguments —
    #: ``dict.get(key)``, ``str.join(parts)`` and ``Lock.acquire(False)``
    #: all carry one, a bare blocking ``queue.get()`` / ``thread.join()``
    #: / ``future.result()`` carries none.  ``put`` always takes the item
    #: positionally, so it is checked regardless.
    ZERO_ARG_METHODS: frozenset[str] = frozenset(
        {"get", "wait", "join", "acquire", "result"}
    )

    def _is_bounded(self, node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg is None:
                return True  # **kwargs splat may forward a timeout
            if kw.arg == "timeout":
                # An explicit timeout bounds the call — unless it is the
                # literal None, which spells "block forever" out loud.
                return not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is None
                )
            if kw.arg in ("block", "blocking") and (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            ):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        rel = ctx.package_rel
        if rel is None or not (
            rel.startswith(SERVE_SCOPE_PREFIX) or rel in BLOCKING_SCOPE_FILES
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method == "put":
                if not self._is_bounded(node):
                    yield self.violation(
                        ctx,
                        node,
                        ".put(...) without timeout= or block=False in the "
                        "serving layer can wedge a handler thread forever; "
                        "bound it or make it non-blocking",
                    )
            elif method in self.ZERO_ARG_METHODS:
                if node.args:
                    continue
                if not self._is_bounded(node):
                    yield self.violation(
                        ctx,
                        node,
                        f".{method}() without timeout= in the serving layer "
                        "blocks forever if the other side is stuck; pass an "
                        "explicit timeout",
                    )


@register
class DirectPairedKernelRule(Rule):
    """RC106 — ``ungapped_scores_paired`` is called only via the registry."""

    code = "RC106"
    summary = (
        "direct ungapped_scores_paired() call outside extend/ungapped.py "
        "and extend/backends/; score through the backend registry "
        "(repro.extend.backends.resolve_backend) so backend selection and "
        "the bit-identity accuracy gate are never bypassed"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        rel = ctx.package_rel
        if (
            rel is None  # tests/benchmarks may exercise the kernel directly
            or rel in PAIRED_KERNEL_ALLOWED
            or rel.startswith(PAIRED_KERNEL_ALLOWED_PREFIXES)
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            if name.rpartition(".")[2] == "ungapped_scores_paired":
                yield self.violation(
                    ctx,
                    node,
                    "direct ungapped_scores_paired() call bypasses the "
                    "step-2 backend registry; use "
                    "repro.extend.backends.resolve_backend() and the "
                    "resolved kernel instead",
                )


#: Package prefixes RC110 covers: the long-lived service and the
#: observability layer it reports through.  CLI entry points (functions
#: named ``main``) are the one place stdout is the product.
OUTPUT_SCOPE_PREFIXES: tuple[str, ...] = ("serve/", "obs/")

#: Direct stream writes RC110 flags alongside bare ``print``.
DIRECT_STREAM_WRITES: frozenset[str] = frozenset(
    {"sys.stderr.write", "sys.stdout.write"}
)


@register
class BarePrintRule(Rule):
    """RC110 — no ad-hoc stdout/stderr output in the serving/obs layers."""

    code = "RC110"
    summary = (
        "bare print()/sys.stderr.write()/sys.stdout.write() under serve/ "
        "or obs/ outside a main() entry point; a long-lived service must "
        "report through logging, /metrics, traces or the flight recorder "
        "— stray stdout corrupts piped JSON and never reaches operators"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        rel = ctx.package_rel
        if rel is None or not rel.startswith(OUTPUT_SCOPE_PREFIXES):
            return
        yield from self._scan(ctx, ctx.tree, in_main=False)

    def _scan(
        self, ctx: FileContext, node: ast.AST, in_main: bool
    ) -> Iterator[Violation]:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "main"
        ):
            # CLI entry points own their stdout: repro-serve-bench and
            # repro-serve-top exist to print.
            in_main = True
        if not in_main and isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name == "print":
                yield self.violation(
                    ctx,
                    node,
                    "bare print() in the serving/obs layer; use logging (or "
                    "the metrics/trace surface) so output reaches operators "
                    "instead of whatever stdout happens to be",
                )
            elif name in DIRECT_STREAM_WRITES:
                yield self.violation(
                    ctx,
                    node,
                    f"direct {name}() in the serving/obs layer; route "
                    "diagnostics through logging so they carry levels, "
                    "timestamps and a configurable destination",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._scan(ctx, child, in_main)
