"""Whole-package thread and lock model (the RC300-series substrate).

The RC1xx rules reason about *processes* (fork, shared memory); the serve
layer added *threads*: a dispatcher, HTTP handler threads, a drain thread
kicked from a signal handler, pool-worker initializers.  The RC300-series
rules need three facts the call graph alone does not carry:

* **who runs what** — :class:`ThreadModel` identifies every thread root
  (``threading.Thread`` targets, ``signal.signal`` handlers, pool worker
  initializers/dispatched tasks, ``http.server`` request handlers) and
  which classes/globals are actually *thread-shared* (constructor results
  published to attributes or module globals, classes whose methods are
  thread targets, classes referenced from module/class-level state);
* **what locks are held where** — :class:`LockModel` walks every function
  body flow-sensitively (``with lock:`` blocks, linear ``acquire`` /
  ``release``) and closes the per-function *entry locksets* over the call
  graph as a decreasing fixpoint, so ``CircuitBreaker._maybe_half_open``
  knows it always runs under ``_lock`` even though it never acquires it;
* **in what order** — acquire events with a non-empty held set become
  edges of the lock-order graph; :func:`find_lock_cycle` detects the
  deadlock shape RC301 reports.

Locks are named canonically — ``module.Class.attr`` for instance locks,
``module.name`` for module-level locks — which is exactly the string the
:mod:`repro.analysis.locksan` factories carry at runtime, so the static
model and the runtime lockset sanitizer talk about the same objects.
Resolution stays conservative in the same way :mod:`repro.analysis.graph`
is: an access or call the model cannot pin contributes *no information*,
never evidence.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from .graph import (
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    dotted_name,
)

__all__ = [
    "Access",
    "CallEvent",
    "LockAnalysis",
    "LockModel",
    "SignalHandlerInfo",
    "ThreadModel",
    "ThreadRoot",
    "find_lock_cycle",
]

#: Constructors whose results are synchronisation primitives — fields
#: holding these are coordination state, not data the RC300 lockset
#: intersection should police.
SYNC_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Event",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "threading.Thread",
        "threading.local",
        "queue.Queue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "queue.SimpleQueue",
        "itertools.count",
    }
)

#: The subset that the lock model tracks as *locks* (held/released).
LOCK_CONSTRUCTORS: frozenset[str] = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)

#: :mod:`repro.analysis.locksan` factory leaves — the runtime seam.  A
#: field assigned from one of these is a lock with the same canonical
#: name the factory string carries.
LOCKSAN_FACTORIES: frozenset[str] = frozenset(
    {"make_lock", "make_rlock", "make_condition"}
)

#: Process-pool fork points (RC304's sinks).
FORK_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "multiprocessing.Process",
    }
)

#: Methods whose accesses run before the object is published — init-time
#: writes are single-threaded by construction and excluded from the model.
INIT_METHODS: frozenset[str] = frozenset({"__init__", "__post_init__", "__new__"})

#: Container methods that mutate their receiver in place.
MUTATOR_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "extend",
        "add",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Pool methods whose first positional argument runs in a worker process
#: (mirrors the RC101 worker-entry discovery).
_POOL_DISPATCH: frozenset[str] = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "starmap"}
)

#: Module-level values RC300 tracks as shared globals (same shapes RC101
#: flags as fork-hazardous mutable module state).
_MUTABLE_CONSTRUCTORS: frozenset[str] = frozenset({"list", "dict", "set", "bytearray"})

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _expand(mod: ModuleInfo, raw: str) -> str:
    """Expand the leading component of a dotted name via the import table."""
    head, _, rest = raw.partition(".")
    if head in mod.imports:
        return mod.imports[head] + ("." + rest if rest else "")
    return raw


def _ctor_kind(mod: ModuleInfo, value: ast.expr) -> str | None:
    """``"lock"`` / ``"sync"`` when *value* constructs a primitive, else None."""
    for node in ast.walk(value):
        if not isinstance(node, ast.Call):
            continue
        raw = dotted_name(node.func)
        if raw is None:
            continue
        expanded = _expand(mod, raw)
        leaf = expanded.rpartition(".")[2]
        if expanded in LOCK_CONSTRUCTORS or leaf in LOCKSAN_FACTORIES:
            return "lock"
        if expanded in SYNC_CONSTRUCTORS:
            return "sync"
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


@dataclass(frozen=True)
class ThreadRoot:
    """One place a new thread of control enters the package."""

    label: str
    #: ``main`` | ``thread`` | ``signal`` | ``worker`` | ``handler``.
    kind: str
    seeds: frozenset[str]


@dataclass(frozen=True)
class SignalHandlerInfo:
    """One function registered via ``signal.signal`` (RC302's subjects)."""

    label: str
    #: Function the registration happens in (carries the resolved calls).
    owner: FunctionInfo
    #: The handler's own def node — possibly nested inside *owner*.
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Qualname when the handler is a collected project function.
    qualname: str | None


@dataclass(frozen=True)
class Access:
    """One read/write of a tracked shared field with its local lockset."""

    field: str
    func: str
    node: ast.AST
    write: bool
    held: frozenset[str]


@dataclass(frozen=True)
class CallEvent:
    """One call site with the locally-held lockset at the moment of call."""

    func: str
    node: ast.AST
    callee: str | None
    raw: str | None
    held: frozenset[str]
    #: Whether the method receiver chain is rooted in a thread-shared
    #: class (``self.pool.last_health.merge()`` from SearchService: True;
    #: ``self.profile.run_health.merge()`` from a thread-confined
    #: pipeline: False; unresolvable or no receiver: None).  RC300's
    #: init-phase exemption: a method only ever invoked on confined
    #: receivers mutates thread-confined instances, even when its class
    #: is also published elsewhere.
    receiver_shared: bool | None = None


@dataclass
class FunctionSummary:
    """Everything the lock model learned walking one function body."""

    accesses: list[Access] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    #: ``(lock, locally-held-before)`` per acquisition event.
    acquires: list[tuple[str, frozenset[str], ast.AST]] = field(default_factory=list)


class ThreadModel:
    """Thread roots, attribute types and sharedness over one project graph."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        #: ``(module.Class, attr)`` → ``module.Class`` for typed attributes.
        self.attr_types: dict[tuple[str, str], str] = {}
        #: ``(module.Class, attr)`` → getter qualname for ``@property``.
        self.properties: dict[tuple[str, str], str] = {}
        #: ``(module.Class, attr)`` → ``"lock"`` | ``"sync"``.
        self.sync_fields: dict[tuple[str, str], str] = {}
        #: ``(module, name)`` → ``"lock"`` | ``"sync"`` for module globals.
        self.sync_globals: dict[tuple[str, str], str] = {}
        self.shared_classes: set[str] = set()
        #: module → mutable module-global names the model tracks.
        self.shared_globals: dict[str, set[str]] = {}
        self.roots: list[ThreadRoot] = []
        self.signal_handlers: list[SignalHandlerInfo] = []
        self._ptype_cache: dict[str, dict[str, str]] = {}
        self._ltype_cache: dict[str, dict[str, str]] = {}
        self._collect_types()
        self._collect_roots()
        self._collect_sharedness()

    # -- attribute / parameter types -----------------------------------
    def _annotation_class(self, mod: ModuleInfo, ann: ast.expr | None) -> str | None:
        """Class prefix named by an annotation (``X``, ``X | None``, ``"X"``)."""
        if ann is None:
            return None
        if isinstance(ann, ast.BinOp):  # X | None — pick the class side.
            return self._annotation_class(mod, ann.left) or self._annotation_class(
                mod, ann.right
            )
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            for name in _IDENT.findall(ann.value):
                prefix = self.graph._class_prefix_of(mod, name)
                if prefix is not None:
                    return prefix
            return None
        raw = dotted_name(ann)
        if raw is None or raw in ("None", "Any"):
            return None
        return self.graph._class_prefix_of(mod, raw)

    def _collect_types(self) -> None:
        graph = self.graph
        for mod in graph.modules.values():
            for stmt in mod.ctx.tree.body:
                if not isinstance(stmt, ast.ClassDef):
                    continue
                prefix = f"{mod.name}.{stmt.name}"
                for sub in stmt.body:
                    # Class-body annotations (``server: SearchHTTPServer``).
                    if isinstance(sub, ast.AnnAssign) and isinstance(
                        sub.target, ast.Name
                    ):
                        typed = self._annotation_class(mod, sub.annotation)
                        if typed is not None:
                            self.attr_types[(prefix, sub.target.id)] = typed
                        kind = _ctor_kind(mod, sub.value) if sub.value else None
                        if kind is not None:
                            self.sync_fields[(prefix, sub.target.id)] = kind
                    elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if any(
                            dotted_name(d) in ("property", "functools.cached_property")
                            for d in sub.decorator_list
                        ):
                            self.properties[(prefix, sub.name)] = (
                                f"{prefix}.{sub.name}"
                            )
        for info in graph.functions.values():
            if info.class_name is None:
                continue
            mod = graph.modules[info.module]
            prefix = f"{info.module}.{info.class_name}"
            ann_params = self._param_types(info)
            for node in ast.walk(info.node):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    kind = _ctor_kind(mod, value)
                    if kind is not None:
                        self.sync_fields.setdefault((prefix, target.attr), kind)
                    typed = self._value_class(mod, ann_params, value)
                    if typed is not None:
                        self.attr_types.setdefault((prefix, target.attr), typed)
        # Module-level sync globals (``_SLEEP = threading.Event()``).
        for mod in graph.modules.values():
            for stmt in mod.ctx.tree.body:
                targets = []
                value = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if value is None:
                    continue
                kind = _ctor_kind(mod, value)
                if kind is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.sync_globals[(mod.name, target.id)] = kind

    def _value_class(
        self, mod: ModuleInfo, ann_params: dict[str, str], value: ast.expr
    ) -> str | None:
        """Class prefix of an assigned value (``Ctor()``, a typed param,
        or ``param or Ctor()``)."""
        if isinstance(value, ast.Call):
            return self.graph._class_prefix_of(mod, dotted_name(value.func))
        if isinstance(value, ast.Name):
            return ann_params.get(value.id)
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                typed = self._value_class(mod, ann_params, operand)
                if typed is not None:
                    return typed
        return None

    def _param_types(self, info: FunctionInfo) -> dict[str, str]:
        cached = self._ptype_cache.get(info.qualname)
        if cached is not None:
            return cached
        mod = self.graph.modules[info.module]
        args = info.node.args
        out: dict[str, str] = {}
        for param in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            typed = self._annotation_class(mod, param.annotation)
            if typed is not None:
                out[param.arg] = typed
        self._ptype_cache[info.qualname] = out
        return out

    def _local_types(self, info: FunctionInfo) -> dict[str, str]:
        cached = self._ltype_cache.get(info.qualname)
        if cached is not None:
            return cached
        mod = self.graph.modules[info.module]
        out = self.graph._local_instance_types(mod, info.node)
        self._ltype_cache[info.qualname] = out
        return out

    def type_of(
        self,
        info: FunctionInfo,
        expr: ast.expr,
        _seen: set[tuple[str, str]] | None = None,
    ) -> str | None:
        """Class prefix an expression evaluates to, when the model knows."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and info.class_name is not None:
                return f"{info.module}.{info.class_name}"
            typed = self._param_types(info).get(expr.id)
            if typed is not None:
                return typed
            mod = self.graph.modules[info.module]
            typed = self._local_types(info).get(expr.id)
            if typed is not None:
                return typed
            # Locals bound from a typed expression
            # (``service = self.server.service``); guarded against cycles.
            seen = _seen if _seen is not None else set()
            key = (info.qualname, expr.id)
            if key in seen:
                return None
            seen.add(key)
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == expr.id
                ):
                    typed = self.type_of(info, node.value, seen)
                    if typed is not None:
                        return typed
                elif (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == expr.id
                ):
                    typed = self._annotation_class(mod, node.annotation)
                    if typed is not None:
                        return typed
            return None
        if isinstance(expr, ast.Attribute):
            base = self.type_of(info, expr.value, _seen)
            if base is not None:
                return self.attr_types.get((base, expr.attr))
            return None
        if isinstance(expr, ast.Call):
            mod = self.graph.modules[info.module]
            return self.graph._class_prefix_of(mod, dotted_name(expr.func))
        return None

    # -- sharedness ----------------------------------------------------
    def _collect_sharedness(self) -> None:
        """Classes whose *instances* can be reached by more than one thread.

        Sharedness is a publication-reachability closure, not a syntactic
        guess: the seeds are (1) classes whose methods run as spawned
        in-process roots (thread targets, signal handlers, HTTP handler
        methods — their ``self`` is by construction visible to two
        threads) and (2) classes published to module-level names (a
        global annotated with the class, or a module-level constructed
        instance — process-wide state every thread can import).  The
        closure then follows *typed attribute* edges: if ``SearchService``
        is shared and ``self.pool`` holds a ``WarmPool``, the pool's
        instance is reachable from every thread that can reach the
        service.  Classes only ever held in locals (the per-request
        pipeline, per-run health objects, supervisors) never enter the
        domain, which is what keeps RC300 from demanding locks on
        thread-confined state.
        """
        graph = self.graph
        for mod in graph.modules.values():
            # Tracked mutable module globals.
            names = self.shared_globals.setdefault(mod.name, set())
            for stmt in mod.ctx.tree.body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if value is None or not _is_mutable_value(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        seeds: set[str] = set()
        # (1) classes whose methods are spawned in-process root seeds
        # (worker seeds run in a *separate process* — not shared here).
        for root in self.roots:
            if root.kind == "worker":
                continue
            for seed in root.seeds:
                info = graph.functions.get(seed)
                if info is not None and info.class_name is not None:
                    seeds.add(f"{info.module}.{info.class_name}")
        # (2) classes published to module-level names.
        for mod in graph.modules.values():
            for stmt in mod.ctx.tree.body:
                if isinstance(stmt, ast.AnnAssign):
                    typed = self._annotation_class(mod, stmt.annotation)
                    if typed is not None:
                        seeds.add(typed)
                elif isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Call
                ):
                    prefix = graph._class_prefix_of(
                        mod, dotted_name(stmt.value.func)
                    )
                    if prefix is not None:
                        seeds.add(prefix)
        # Close over typed attribute publication.
        by_class: dict[str, set[str]] = {}
        for (prefix, _attr), typed in self.attr_types.items():
            by_class.setdefault(prefix, set()).add(typed)
        queue = deque(seeds)
        while queue:
            prefix = queue.popleft()
            if prefix in self.shared_classes:
                continue
            self.shared_classes.add(prefix)
            queue.extend(by_class.get(prefix, ()))

    def receiver_shared(self, info: FunctionInfo, expr: ast.expr) -> bool | None:
        """Whether a receiver chain is rooted in a thread-shared class.

        ``self.profile.run_health`` asks about the type of ``self`` (the
        chain *root* owns the instance), not ``run_health``'s own class.
        """
        root = expr
        while isinstance(root, ast.Attribute):
            root = root.value
        typed = self.type_of(info, root)
        if typed is None:
            return None
        return typed in self.shared_classes

    # -- roots ---------------------------------------------------------
    def _resolve_callable_ref(
        self, info: FunctionInfo, mod: ModuleInfo, expr: ast.expr
    ) -> str | None:
        """Qualname of a function *reference* (thread target, handler)."""
        raw = dotted_name(expr)
        if raw is None:
            return None
        if isinstance(expr, ast.Attribute):
            base = self.type_of(info, expr.value)
            if base is not None:
                scope, _, cls = base.rpartition(".")
                owner = self.graph.modules.get(scope)
                if owner is not None:
                    qual = owner.classes.get(cls, {}).get(expr.attr)
                    if qual is not None:
                        return qual
        head, _, rest = raw.partition(".")
        expanded = _expand(mod, raw)
        if expanded in self.graph.functions:
            return expanded
        if not rest and raw in mod.functions:
            return mod.functions[raw]
        return None

    def _nested_def(
        self, info: FunctionInfo, name: str
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for node in ast.walk(info.node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not info.node
                and node.name == name
            ):
                return node
        return None

    def _collect_roots(self) -> None:
        graph = self.graph
        thread_roots: dict[str, set[str]] = {}
        worker_seeds: set[str] = set()
        handler_classes: dict[str, set[str]] = {}
        for info in graph.functions.values():
            mod = graph.modules[info.module]
            for site in info.calls:
                node = site.node
                raw = site.raw or ""
                if raw == "threading.Thread":
                    target = next(
                        (kw.value for kw in node.keywords if kw.arg == "target"),
                        node.args[0] if node.args else None,
                    )
                    if target is None:
                        continue
                    label = self._name_kwarg(node) or (
                        (dotted_name(target) or "thread").rpartition(".")[2]
                    )
                    seed = self._resolve_callable_ref(info, mod, target)
                    if seed is None and isinstance(target, ast.Name):
                        if self._nested_def(info, target.id) is not None:
                            # Nested target: the enclosing function carries
                            # its resolved calls (graph attribution), so it
                            # seeds the reachability conservatively.
                            seed = info.qualname
                    if seed is not None:
                        thread_roots.setdefault(f"thread:{label}", set()).add(seed)
                elif raw == "signal.signal" and len(node.args) >= 2:
                    self._register_signal_handler(info, mod, node.args[1])
                elif raw.rpartition(".")[2] in _POOL_DISPATCH and node.args:
                    qual = self._resolve_callable_ref(info, mod, node.args[0])
                    if qual is not None:
                        worker_seeds.add(qual)
                for kw in node.keywords:
                    if kw.arg == "initializer":
                        qual = self._resolve_callable_ref(info, mod, kw.value)
                        if qual is not None:
                            worker_seeds.add(qual)
        # Request-handler classes: one root per class over do_*/handle*.
        for mod in graph.modules.values():
            for stmt in mod.ctx.tree.body:
                if not isinstance(stmt, ast.ClassDef):
                    continue
                if not any(
                    "RequestHandler" in (dotted_name(base) or "")
                    for base in stmt.bases
                ):
                    continue
                methods = {
                    qual
                    for name, qual in mod.classes.get(stmt.name, {}).items()
                    if name.startswith(("do_", "handle"))
                }
                if methods:
                    handler_classes.setdefault(
                        f"handler:{stmt.name}", set()
                    ).update(methods)
        for label in sorted(thread_roots):
            self.roots.append(
                ThreadRoot(label, "thread", frozenset(thread_roots[label]))
            )
        for handler in self.signal_handlers:
            seeds: set[str] = set()
            if handler.qualname is not None:
                seeds.add(handler.qualname)
            else:
                # Nested handler: seed only the project calls inside its
                # own subtree, not everything the enclosing function does.
                inner = {id(c) for c in ast.walk(handler.node)}
                seeds.update(
                    site.callee
                    for site in handler.owner.calls
                    if site.callee is not None and id(site.node) in inner
                )
            self.roots.append(
                ThreadRoot(f"signal:{handler.label}", "signal", frozenset(seeds))
            )
        if worker_seeds:
            self.roots.append(ThreadRoot("worker", "worker", frozenset(worker_seeds)))
        for label in sorted(handler_classes):
            self.roots.append(
                ThreadRoot(label, "handler", frozenset(handler_classes[label]))
            )

    def _name_kwarg(self, node: ast.Call) -> str | None:
        for kw in node.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, str):
                    return kw.value.value
        return None

    def _register_signal_handler(
        self, info: FunctionInfo, mod: ModuleInfo, expr: ast.expr
    ) -> None:
        qual = self._resolve_callable_ref(info, mod, expr)
        node: ast.FunctionDef | ast.AsyncFunctionDef | None = None
        label = (dotted_name(expr) or "handler").rpartition(".")[2]
        if qual is not None:
            target = self.graph.functions.get(qual)
            if target is not None:
                node = target.node
        elif isinstance(expr, ast.Name):
            node = self._nested_def(info, expr.id)
        if node is None:
            return
        if any(h.node is node for h in self.signal_handlers):
            return
        self.signal_handlers.append(
            SignalHandlerInfo(label=label, owner=info, node=node, qualname=qual)
        )


class LockModel:
    """Flow-sensitive locksets over every function, closed over the graph."""

    def __init__(self, graph: ProjectGraph, threads: ThreadModel) -> None:
        self.graph = graph
        self.threads = threads
        #: Canonical lock name → ``"lock"`` (all lock kinds held the same).
        self.locks: dict[str, str] = {}
        self._class_locks: dict[tuple[str, str], str] = {}
        self._module_locks: dict[tuple[str, str], str] = {}
        #: Condition locks, for RC303's wait classification.
        self.condition_fields: set[tuple[str, str]] = set()
        self.summaries: dict[str, FunctionSummary] = {}
        #: Qualname → must-held lockset on entry (⊥ = frozenset()).
        self.entry: dict[str, frozenset[str]] = {}
        #: Lock-order edges ``(outer, inner)`` → a witness node + file.
        self.order_edges: dict[tuple[str, str], tuple[str, ast.AST]] = {}
        #: Functions from which a process-pool fork point is reachable.
        self.fork_reaching: set[str] = set()
        self._discover_locks()
        for info in graph.functions.values():
            self.summaries[info.qualname] = self._walk_function(info)
        self._edges = {
            qual: {c.callee for c in s.calls if c.callee is not None}
            for qual, s in self.summaries.items()
        }
        self._compute_entry()
        self._compute_fork_reaching()
        self._compute_order_edges()
        self._runs_on = self._compute_runs_on()

    # -- lock discovery ------------------------------------------------
    def _discover_locks(self) -> None:
        graph = self.graph
        for (prefix, attr), kind in self.threads.sync_fields.items():
            if kind != "lock":
                continue
            canonical = f"{prefix}.{attr}"
            self.locks[canonical] = "lock"
            self._class_locks[(prefix, attr)] = canonical
        for (module, name), kind in self.threads.sync_globals.items():
            if kind != "lock":
                continue
            canonical = f"{module}.{name}"
            self.locks[canonical] = "lock"
            self._module_locks[(module, name)] = canonical
        # ``global X; X = threading.Lock()`` re-inits (fork-safe reset).
        for info in graph.functions.values():
            mod = graph.modules[info.module]
            declared = {
                name
                for node in ast.walk(info.node)
                if isinstance(node, ast.Global)
                for name in node.names
            }
            if not declared:
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                if _ctor_kind(mod, node.value) != "lock":
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in declared:
                        canonical = f"{mod.name}.{target.id}"
                        self.locks[canonical] = "lock"
                        self._module_locks[(mod.name, target.id)] = canonical
        # Condition fields (their ``wait`` needs a predicate loop).
        for info in graph.functions.values():
            if info.class_name is None:
                continue
            mod = graph.modules[info.module]
            prefix = f"{info.module}.{info.class_name}"
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                raw = (
                    dotted_name(node.value.func)
                    if isinstance(node.value, ast.Call)
                    else None
                )
                if raw is None:
                    continue
                expanded = _expand(mod, raw)
                if (
                    expanded == "threading.Condition"
                    or expanded.rpartition(".")[2] == "make_condition"
                ):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self.condition_fields.add((prefix, target.attr))

    def lock_key(self, info: FunctionInfo, expr: ast.expr) -> str | None:
        """Canonical name of the lock *expr* denotes at a use site."""
        raw = dotted_name(expr)
        if raw is None:
            return None
        if info.class_name is not None and raw.startswith("self."):
            rest = raw[len("self.") :]
            if "." not in rest:
                prefix = f"{info.module}.{info.class_name}"
                return self._class_locks.get((prefix, rest))
        if "." not in raw:
            return self._module_locks.get((info.module, raw))
        return None

    # -- body walk -----------------------------------------------------
    def _walk_function(self, info: FunctionInfo) -> FunctionSummary:
        summary = FunctionSummary()
        self._site_of = {id(s.node): s for s in info.calls}
        self._globals_declared = {
            name
            for node in ast.walk(info.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        self._locals_bound = self._local_bindings(info)
        self._walk_body(info, info.node.body, frozenset(), summary)
        return summary

    def _local_bindings(self, info: FunctionInfo) -> set[str]:
        bound: set[str] = set(info.param_names())
        for node in ast.walk(info.node):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not info.node:
                    bound.add(node.name)
        return bound - self._globals_declared

    def _walk_body(
        self,
        info: FunctionInfo,
        body: list[ast.stmt],
        held: frozenset[str],
        summary: FunctionSummary,
    ) -> None:
        for stmt in body:
            held = self._walk_stmt(info, stmt, held, summary)

    def _walk_stmt(
        self,
        info: FunctionInfo,
        stmt: ast.stmt,
        held: frozenset[str],
        summary: FunctionSummary,
    ) -> frozenset[str]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs at *call* time: no lock is known-held.
            self._walk_body(info, stmt.body, frozenset(), summary)
            return held
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                key = self.lock_key(info, item.context_expr)
                if key is not None:
                    summary.acquires.append((key, inner, item.context_expr))
                    inner = inner | {key}
                else:
                    self._visit_expr(info, item.context_expr, inner, summary)
            self._walk_body(info, stmt.body, inner, summary)
            return held
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute):
                key = self.lock_key(info, call.func.value)
                if key is not None and call.func.attr == "acquire":
                    for arg in [*call.args, *[k.value for k in call.keywords]]:
                        self._visit_expr(info, arg, held, summary)
                    summary.acquires.append((key, held, call))
                    return held | {key}
                if key is not None and call.func.attr == "release":
                    return held - {key}
        for fname, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                if value and isinstance(value[0], ast.stmt):
                    self._walk_body(info, value, held, summary)
                else:
                    for item in value:
                        if isinstance(item, ast.ExceptHandler):
                            if item.type is not None:
                                self._visit_expr(info, item.type, held, summary)
                            self._walk_body(info, item.body, held, summary)
                        elif isinstance(item, ast.expr):
                            self._visit_expr(info, item, held, summary)
            elif isinstance(value, ast.expr):
                self._visit_expr(info, value, held, summary)
        return held

    def _visit_expr(
        self,
        info: FunctionInfo,
        expr: ast.expr,
        held: frozenset[str],
        summary: FunctionSummary,
    ) -> None:
        prefix = (
            f"{info.module}.{info.class_name}" if info.class_name is not None else None
        )
        mod = self.graph.modules[info.module]
        in_init = info.name in INIT_METHODS
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                site = self._site_of.get(id(node))
                callee = site.callee if site is not None else None
                raw = site.raw if site is not None else dotted_name(node.func)
                shared: bool | None = None
                if isinstance(node.func, ast.Attribute):
                    if callee is None:
                        base = self.threads.type_of(info, node.func.value)
                        if base is not None:
                            scope, _, cls = base.rpartition(".")
                            owner = self.graph.modules.get(scope)
                            if owner is not None:
                                callee = owner.classes.get(cls, {}).get(
                                    node.func.attr
                                )
                    shared = self.threads.receiver_shared(info, node.func.value)
                summary.calls.append(
                    CallEvent(
                        func=info.qualname,
                        node=node,
                        callee=callee,
                        raw=raw,
                        held=held,
                        receiver_shared=shared,
                    )
                )
                # Container mutation through a method call is a write.
                if (
                    not in_init
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                ):
                    target = self._field_of(info, prefix, mod, node.func.value)
                    if target is not None:
                        summary.accesses.append(
                            Access(target, info.qualname, node, True, held)
                        )
            elif isinstance(node, ast.Attribute):
                # Property loads on typed receivers are call edges: reading
                # ``service.ready`` executes the getter on *this* thread.
                base = self.threads.type_of(info, node.value)
                if base is not None:
                    getter = self.threads.properties.get((base, node.attr))
                    if getter is not None:
                        summary.calls.append(
                            CallEvent(
                                func=info.qualname,
                                node=node,
                                callee=getter,
                                raw=None,
                                held=held,
                                receiver_shared=self.threads.receiver_shared(
                                    info, node.value
                                ),
                            )
                        )
                if in_init:
                    continue
                target = self._field_of(info, prefix, mod, node)
                if target is None:
                    continue
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                summary.accesses.append(
                    Access(target, info.qualname, node, write, held)
                )
            elif isinstance(node, ast.Subscript):
                if in_init or not isinstance(node.ctx, (ast.Store, ast.Del)):
                    continue
                target = self._field_of(info, prefix, mod, node.value)
                if target is not None:
                    summary.accesses.append(
                        Access(target, info.qualname, node, True, held)
                    )
            elif isinstance(node, ast.Name):
                if in_init:
                    continue
                target = self._global_field(info, mod, node.id)
                if target is None:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    if node.id not in self._globals_declared:
                        continue  # local shadow, not the global
                    summary.accesses.append(
                        Access(target, info.qualname, node, True, held)
                    )
                else:
                    if node.id in self._locals_bound:
                        continue
                    summary.accesses.append(
                        Access(target, info.qualname, node, False, held)
                    )

    def _field_of(
        self,
        info: FunctionInfo,
        prefix: str | None,
        mod: ModuleInfo,
        expr: ast.expr,
    ) -> str | None:
        """Canonical tracked field *expr* denotes, or ``None``."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and prefix is not None
        ):
            attr = expr.attr
            key = (prefix, attr)
            if key in self.threads.sync_fields:
                return None
            if key in self._class_locks or key in self.threads.properties:
                return None
            methods = self.graph.modules[info.module].classes.get(
                info.class_name or "", {}
            )
            if attr in methods:
                return None
            return f"{prefix}.{attr}"
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            # Cross-module global (``core_executor._LIVE_SEGMENTS``).
            head = expr.value.id
            if head in mod.imports:
                target_mod = mod.imports[head]
                if expr.attr in self.threads.shared_globals.get(target_mod, ()):
                    return f"{target_mod}.{expr.attr}"
        return None

    def _global_field(
        self, info: FunctionInfo, mod: ModuleInfo, name: str
    ) -> str | None:
        if name in self.threads.shared_globals.get(mod.name, ()):
            if (mod.name, name) in self._module_locks:
                return None
            return f"{mod.name}.{name}"
        return None

    # -- interprocedural closures --------------------------------------
    def _compute_entry(self) -> None:
        graph = self.graph
        callers: dict[str, int] = {q: 0 for q in graph.functions}
        for qual, callees in self._edges.items():
            for callee in callees:
                if callee in callers and callee != qual:
                    callers[callee] += 1
        roots = {q for q, n in callers.items() if n == 0}
        for root in self.threads.roots:
            roots.update(root.seeds)
        top: dict[str, frozenset[str] | None] = {q: None for q in graph.functions}
        for qual in roots:
            top[qual] = frozenset()
        for _ in range(64):
            changed = False
            for qual, summary in self.summaries.items():
                base = top.get(qual)
                if base is None:
                    continue
                for event in summary.calls:
                    if event.callee is None or event.callee == qual:
                        continue
                    cand = base | event.held
                    current = top.get(event.callee)
                    new = cand if current is None else current & cand
                    if new != current:
                        top[event.callee] = new
                        changed = True
            if not changed:
                break
        self.entry = {
            qual: (locks if locks is not None else frozenset())
            for qual, locks in top.items()
        }

    def _compute_fork_reaching(self) -> None:
        direct = {
            event.func
            for summary in self.summaries.values()
            for event in summary.calls
            if event.raw in FORK_CONSTRUCTORS
        }
        reverse: dict[str, set[str]] = {}
        for qual, callees in self._edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(qual)
        seen = set(direct)
        queue = deque(direct)
        while queue:
            qual = queue.popleft()
            for caller in reverse.get(qual, ()):
                if caller not in seen:
                    seen.add(caller)
                    queue.append(caller)
        self.fork_reaching = seen

    def _compute_order_edges(self) -> None:
        # Locks each function may acquire, transitively.
        acquires: dict[str, set[str]] = {
            qual: {lock for lock, _, _ in summary.acquires}
            for qual, summary in self.summaries.items()
        }
        for _ in range(64):
            changed = False
            for qual, callees in self._edges.items():
                mine = acquires[qual]
                before = len(mine)
                for callee in callees:
                    if callee != qual:
                        mine |= acquires.get(callee, set())
                if len(mine) != before:
                    changed = True
            if not changed:
                break
        self.acquire_closure = acquires
        for qual, summary in self.summaries.items():
            entry = self.entry.get(qual, frozenset())
            for lock, held_before, node in summary.acquires:
                for outer in entry | held_before:
                    if outer != lock:
                        self.order_edges.setdefault((outer, lock), (qual, node))
            for event in summary.calls:
                if event.callee is None:
                    continue
                outer_set = entry | event.held
                if not outer_set:
                    continue
                for inner in acquires.get(event.callee, ()):
                    for outer in outer_set:
                        if outer != inner:
                            self.order_edges.setdefault(
                                (outer, inner), (qual, event.node)
                            )

    def _compute_runs_on(self) -> dict[str, frozenset[str]]:
        runs: dict[str, set[str]] = {qual: {"main"} for qual in self.summaries}
        for root in self.threads.roots:
            queue = deque(q for q in root.seeds if q in self.summaries)
            seen: set[str] = set()
            while queue:
                qual = queue.popleft()
                if qual in seen:
                    continue
                seen.add(qual)
                runs[qual].add(root.label)
                for callee in self._edges.get(qual, ()):
                    if callee not in seen and callee in self.summaries:
                        queue.append(callee)
        return {qual: frozenset(labels) for qual, labels in runs.items()}

    # -- queries -------------------------------------------------------
    def runs_on(self, qualname: str) -> frozenset[str]:
        """Root labels a function may execute under (``main`` always)."""
        return self._runs_on.get(qualname, frozenset({"main"}))

    def effective_held(self, access: Access) -> frozenset[str]:
        """Must-held lockset at an access: entry lockset ∪ local lockset."""
        return self.entry.get(access.func, frozenset()) | access.held

    def field_accesses(self) -> dict[str, list[Access]]:
        """Every tracked shared-field access, grouped by canonical field."""
        out: dict[str, list[Access]] = {}
        for summary in self.summaries.values():
            for access in summary.accesses:
                out.setdefault(access.field, []).append(access)
        return out

    def field_path(self, access: Access) -> str:
        """Source path of the module an access lives in."""
        info = self.graph.functions[access.func]
        return str(self.graph.modules[info.module].ctx.path)

    def guarded_fields(
        self, scope_prefixes: tuple[str, ...] = ()
    ) -> dict[str, frozenset[str]]:
        """Fields with a non-empty lockset intersection over every access.

        This is the static half of the locksan cross-check: the runtime
        sanitizer must never observe one of these fields touched without
        at least one of its guard locks held.
        """
        out: dict[str, frozenset[str]] = {}
        for fname, accesses in self.field_accesses().items():
            info = self.graph.functions[accesses[0].func]
            rel = info.package_rel
            if scope_prefixes and not (
                rel.startswith(scope_prefixes) or rel in scope_prefixes
            ):
                continue
            guard: frozenset[str] | None = None
            for access in accesses:
                held = self.effective_held(access)
                guard = held if guard is None else guard & held
            if guard:
                out[fname] = guard
        return out


def find_lock_cycle(edges: Iterable[tuple[str, str]]) -> list[str] | None:
    """First cycle in the lock-order graph, as ``[a, b, …, a]``; else None.

    Pure over the edge list so the hypothesis property tests can hammer it
    with random DAGs (never a cycle) and planted cycles (always found).
    """
    adjacency: dict[str, list[str]] = {}
    for outer, inner in edges:
        adjacency.setdefault(outer, []).append(inner)
    for nbrs in adjacency.values():
        nbrs.sort()
    visiting: dict[str, int] = {}  # 1 = on stack, 2 = done
    for start in sorted(adjacency):
        if visiting.get(start):
            continue
        stack: list[tuple[str, int]] = [(start, 0)]
        path: list[str] = []
        visiting[start] = 1
        path.append(start)
        while stack:
            node, idx = stack[-1]
            nbrs = adjacency.get(node, [])
            if idx >= len(nbrs):
                stack.pop()
                path.pop()
                visiting[node] = 2
                continue
            stack[-1] = (node, idx + 1)
            nxt = nbrs[idx]
            state = visiting.get(nxt, 0)
            if state == 1:
                return path[path.index(nxt) :] + [nxt]
            if state == 0:
                visiting[nxt] = 1
                path.append(nxt)
                stack.append((nxt, 0))
    return None


class LockAnalysis:
    """Facade bundling the thread model and the lock model for the rules."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.threads = ThreadModel(graph)
        self.model = LockModel(graph, self.threads)
