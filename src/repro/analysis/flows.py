"""Flow-sensitive hazard framework over :class:`~repro.analysis.graph.ProjectGraph`.

Two families of fixpoint summaries feed the RC1xx rules:

**Order/nondeterminism taints** (:class:`FlowAnalysis`).  A value is tainted
``unordered`` when its iteration order is hash- or environment-dependent
(``set``/``frozenset`` literals, comprehensions and constructors, lists
built by iterating them) and ``nondet`` when it derives from a wall clock,
filesystem enumeration, entropy, or an unseeded RNG.  Taints propagate
through assignments *in statement order* (a later ``x = sorted(x)``
launders the variable), through list/tuple/iter-style passthrough calls,
and — the part local linters cannot do — through project function calls:
a function returning ``set(...)`` taints every caller that iterates its
result, transitively.  Order-insensitive reducers (``sorted``, ``len``,
``min``, ``max``, ``sum``, ``any``, ``all``, ``np.sort``, ``np.unique``)
neutralise the taint.

**Resource-release summaries** (:class:`ReleaseAnalysis`).  For RC102 the
question "does this ``finally`` block release the segment?" must look
through helpers: ``_release_segments(segments)`` releases because it loops
over its parameter calling ``_release_segment``, which calls ``.close()``
and ``.unlink()``.  :meth:`ReleaseAnalysis.releases` answers, per function
and parameter position, which of ``close``/``unlink`` are (transitively)
applied to that argument or its elements.

Both analyses are conservative in the linting direction that minimises
false positives: an unresolved call contributes *no* taint and *no*
release — rules only act on evidence the resolver actually pinned down.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .graph import CallSite, FunctionInfo, ProjectGraph, dotted_name

if TYPE_CHECKING:  # pragma: no cover — import cycle guard for annotations
    from .dtypes import DtypeAnalysis
    from .locks import LockAnalysis

__all__ = [
    "Taint",
    "IterationHazard",
    "FunctionFlow",
    "FlowAnalysis",
    "ReleaseAnalysis",
    "ProjectAnalyses",
    "NONDET_CALLS",
]

#: External calls whose value depends on environment, clock or entropy.
NONDET_CALLS: dict[str, str] = {
    "os.listdir": "os.listdir() order is filesystem-dependent",
    "os.scandir": "os.scandir() order is filesystem-dependent",
    "os.walk": "os.walk() order is filesystem-dependent",
    "glob.glob": "glob.glob() order is filesystem-dependent",
    "glob.iglob": "glob.iglob() order is filesystem-dependent",
    "os.environ.items": "os.environ content is host-dependent",
    "time.time": "wall-clock value",
    "time.time_ns": "wall-clock value",
    "uuid.uuid4": "entropy-derived value",
    "os.urandom": "entropy-derived value",
}

#: Builtin/numpy calls that return an order-independent or sorted value —
#: applying one of these discharges the hazard.
NEUTRALIZERS: frozenset[str] = frozenset(
    {
        "sorted", "len", "min", "max", "sum", "any", "all",
        "np.sort", "numpy.sort", "np.unique", "numpy.unique",
        "math.fsum",
    }
)

#: Calls that return their (first) argument's elements in argument order —
#: taints pass straight through them.
PASSTHROUGH: frozenset[str] = frozenset(
    {"list", "tuple", "iter", "reversed", "enumerate", "zip", "np.asarray",
     "numpy.asarray", "np.concatenate", "numpy.concatenate"}
)

#: Dict/set views: iterating them iterates the receiver.
_VIEW_METHODS: frozenset[str] = frozenset({"keys", "values", "items"})


@dataclass(frozen=True)
class Taint:
    """One hazard carried by a value."""

    kind: str  # "unordered" | "nondet"
    reason: str


_UNORDERED_SET = Taint("unordered", "set/frozenset iteration order is hash-dependent")


@dataclass(frozen=True)
class IterationHazard:
    """A loop or comprehension iterating a tainted value."""

    node: ast.AST
    taints: frozenset[Taint]


class FunctionFlow:
    """One statement-ordered taint pass over a single function body.

    ``returns_taints`` accumulates the taints of every ``return``
    expression; ``hazards`` the tainted iteration sites.  The pass is
    flow-sensitive along straight-line code (assignments are processed in
    order, so re-binding to ``sorted(x)`` clears the taint) and unions
    branches — the conservative merge for an ``if``.
    """

    def __init__(
        self,
        info: FunctionInfo,
        returns: dict[str, frozenset[Taint]],
    ) -> None:
        self._info = info
        self._returns = returns
        self._sites: dict[int, CallSite] = {id(s.node): s for s in info.calls}
        self.env: dict[str, frozenset[Taint]] = {}
        self.returns_taints: frozenset[Taint] = frozenset()
        self.hazards: list[IterationHazard] = []
        self._run()

    # -- expression taint ----------------------------------------------
    def _call_raw(self, node: ast.Call) -> str | None:
        site = self._sites.get(id(node))
        if site is not None:
            return site.raw
        return dotted_name(node.func)

    def _call_taints(self, node: ast.Call) -> frozenset[Taint]:
        site = self._sites.get(id(node))
        raw = self._call_raw(node)
        if raw is not None:
            if raw in NEUTRALIZERS:
                return frozenset()
            if raw in ("set", "frozenset"):
                return frozenset({_UNORDERED_SET})
            if raw in NONDET_CALLS:
                return frozenset({Taint("nondet", NONDET_CALLS[raw])})
            if raw in ("np.random.default_rng", "numpy.random.default_rng") and not (
                node.args or node.keywords
            ):
                return frozenset({Taint("nondet", "unseeded np.random.default_rng()")})
            if raw in PASSTHROUGH:
                out: frozenset[Taint] = frozenset()
                for arg in node.args:
                    out |= self.expr_taints(arg)
                return out
            # ``x.keys()/.values()/.items()`` — iterating the receiver.
            head, _, tail = raw.rpartition(".")
            if tail in _VIEW_METHODS and head:
                return self.env.get(head, frozenset())
        if site is not None and site.callee is not None:
            return self._returns.get(site.callee, frozenset())
        return frozenset()

    def expr_taints(self, node: ast.expr | None) -> frozenset[Taint]:
        """Taints carried by one expression under the current environment."""
        if node is None:
            return frozenset()
        if isinstance(node, ast.Set):
            return frozenset({_UNORDERED_SET})
        if isinstance(node, ast.SetComp):
            self._scan_comprehension(node)
            return frozenset({_UNORDERED_SET})
        if isinstance(node, ast.Call):
            return self._call_taints(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            self._scan_comprehension(node)
            out: frozenset[Taint] = frozenset()
            for gen in node.generators:
                out |= self.expr_taints(gen.iter)
            return out
        if isinstance(node, ast.DictComp):
            self._scan_comprehension(node)
            out = frozenset()
            for gen in node.generators:
                out |= self.expr_taints(gen.iter)
            return out
        if isinstance(node, ast.BinOp):
            return self.expr_taints(node.left) | self.expr_taints(node.right)
        if isinstance(node, ast.IfExp):
            return self.expr_taints(node.body) | self.expr_taints(node.orelse)
        if isinstance(node, ast.Attribute):
            return self.expr_taints(node.value)
        if isinstance(node, ast.Starred):
            return self.expr_taints(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            out = frozenset()
            for elt in node.elts:
                out |= self.expr_taints(elt)
            return out
        return frozenset()

    # -- statement pass ------------------------------------------------
    def _scan_comprehension(
        self, node: ast.SetComp | ast.ListComp | ast.GeneratorExp | ast.DictComp
    ) -> None:
        for gen in node.generators:
            taints = self.expr_taints(gen.iter)
            if taints:
                self.hazards.append(IterationHazard(node=gen.iter, taints=taints))

    def _assign_names(self, target: ast.expr, taints: frozenset[Taint]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taints
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_names(elt, taints)

    def _visit_stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self.expr_taints(stmt.value)
            for target in stmt.targets:
                self._assign_names(target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = self.expr_taints(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = self.env.get(
                    stmt.target.id, frozenset()
                ) | self.expr_taints(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.returns_taints |= self.expr_taints(stmt.value)
            if stmt.value is not None:
                self._scan_expr_for_hazards(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taints = self.expr_taints(stmt.iter)
            if taints:
                self.hazards.append(IterationHazard(node=stmt.iter, taints=taints))
            # Lists grown while iterating an unordered source inherit the
            # unordered order: ``for x in s: out.append(x)``.
            for name in _append_targets(stmt.body):
                self.env[name] = self.env.get(name, frozenset()) | taints
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_stmts(stmt.body)
            for handler in stmt.handlers:
                self._visit_stmts(handler.body)
            self._visit_stmts(stmt.orelse)
            self._visit_stmts(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._scan_expr_for_hazards(stmt.value)

    def _scan_expr_for_hazards(self, node: ast.expr) -> None:
        """Evaluate an expression for its comprehension-iteration hazards."""
        self.expr_taints(node)

    def _run(self) -> None:
        self._visit_stmts(self._info.node.body)


class FlowAnalysis:
    """Fixpoint of per-function return taints over the whole project."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.returns: dict[str, frozenset[Taint]] = {
            q: frozenset() for q in graph.functions
        }
        self._solve()

    def _solve(self) -> None:
        # The lattice is finite (few taint kinds) and monotone, so the
        # fixpoint converges in at most |functions| rounds; in practice 2-3.
        for _ in range(len(self.graph.functions) + 1):
            changed = False
            for qual, info in self.graph.functions.items():
                flow = FunctionFlow(info, self.returns)
                if flow.returns_taints - self.returns[qual]:
                    self.returns[qual] = self.returns[qual] | flow.returns_taints
                    changed = True
            if not changed:
                return

    def function_flow(self, info: FunctionInfo) -> FunctionFlow:
        """Re-run the statement pass for one function at the fixpoint."""
        return FunctionFlow(info, self.returns)


def _append_targets(body: list[ast.stmt]) -> Iterator[str]:
    """Names appended/extended to inside a statement list."""
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend", "add")
                and isinstance(node.func.value, ast.Name)
            ):
                yield node.func.value.id


@dataclass
class _ReleaseFacts:
    """Which cleanup methods reach each parameter position of a function."""

    per_param: dict[int, frozenset[str]] = field(default_factory=dict)

    def add(self, index: int, methods: frozenset[str]) -> bool:
        old = self.per_param.get(index, frozenset())
        new = old | methods
        if new != old:
            self.per_param[index] = new
            return True
        return False


class ReleaseAnalysis:
    """Transitive ``close``/``unlink`` coverage of function parameters.

    ``releases(qualname)[i]`` is the subset of ``{"close", "unlink"}``
    applied — directly, elementwise via a loop, or through a project call —
    to parameter *i* of the function.  Used by RC102 to accept cleanup
    helpers like ``_release_segments``.
    """

    _METHODS: frozenset[str] = frozenset({"close", "unlink"})

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self._facts: dict[str, _ReleaseFacts] = {
            q: _ReleaseFacts() for q in graph.functions
        }
        self._solve()

    def releases(self, qualname: str) -> dict[int, frozenset[str]]:
        """Cleanup methods reaching each parameter of *qualname*."""
        facts = self._facts.get(qualname)
        return dict(facts.per_param) if facts is not None else {}

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        for _ in range(len(self.graph.functions) + 1):
            changed = False
            for qual, info in self.graph.functions.items():
                if self._update(qual, info):
                    changed = True
            if not changed:
                return

    def _update(self, qual: str, info: FunctionInfo) -> bool:
        params = {name: i for i, name in enumerate(info.param_names())}
        # Loop variables ranging over a parameter count as that parameter's
        # elements; releasing every element releases the container.
        element_of: dict[str, int] = {}
        for node in ast.walk(info.node):
            if (
                isinstance(node, (ast.For, ast.AsyncFor))
                and isinstance(node.iter, ast.Name)
                and node.iter.id in params
                and isinstance(node.target, ast.Name)
            ):
                element_of[node.target.id] = params[node.iter.id]
        changed = False
        facts = self._facts[qual]

        def param_index(name: str) -> int | None:
            if name in params:
                return params[name]
            return element_of.get(name)

        for site in info.calls:
            node = site.node
            # Direct ``p.close()`` / ``p.unlink()``.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._METHODS
                and isinstance(node.func.value, ast.Name)
            ):
                index = param_index(node.func.value.id)
                if index is not None and facts.add(
                    index, frozenset({node.func.attr})
                ):
                    changed = True
            # Transitive: ``helper(p)`` where helper releases its argument.
            if site.callee is not None:
                callee_facts = self._facts.get(site.callee)
                if callee_facts is None:
                    continue
                for pos, arg in enumerate(node.args):
                    if not isinstance(arg, ast.Name):
                        continue
                    index = param_index(arg.id)
                    if index is None:
                        continue
                    methods = callee_facts.per_param.get(pos, frozenset())
                    if methods and facts.add(index, methods):
                        changed = True
        return changed


#: Callback signature rules use to visit hazards without re-walking.
HazardVisitor = Callable[[FunctionInfo, IterationHazard], None]


class ProjectAnalyses:
    """The bundle handed to project rules: graph plus lazy fixpoints.

    Several RC1xx rules share the taint and release analyses; computing
    each at most once per check run keeps ``repro-check`` fast on large
    trees.  Rules that only need reachability touch neither.
    """

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self._flow: FlowAnalysis | None = None
        self._release: ReleaseAnalysis | None = None
        self._dtypes: DtypeAnalysis | None = None
        self._locks: LockAnalysis | None = None

    @property
    def flow(self) -> FlowAnalysis:
        """The (cached) project-wide taint fixpoint."""
        if self._flow is None:
            self._flow = FlowAnalysis(self.graph)
        return self._flow

    @property
    def release(self) -> ReleaseAnalysis:
        """The (cached) close/unlink release fixpoint."""
        if self._release is None:
            self._release = ReleaseAnalysis(self.graph)
        return self._release

    @property
    def dtypes(self) -> DtypeAnalysis:
        """The (cached) dtype/value-range fixpoint (RC2xx substrate)."""
        if self._dtypes is None:
            from .dtypes import DtypeAnalysis

            self._dtypes = DtypeAnalysis(self.graph)
        return self._dtypes

    @property
    def locks(self) -> LockAnalysis:
        """The (cached) thread-root/lockset model (RC3xx substrate)."""
        if self._locks is None:
            from .locks import LockAnalysis

            self._locks = LockAnalysis(self.graph)
        return self._locks
