"""Opt-in runtime ndarray dtype/shape contracts.

The static gates (``repro-check`` RC002, mypy) keep dtype discipline in the
*source*; this module checks it in *running arrays*, where a stray
``astype`` or a buffer built by foreign code can still smuggle an int32
into the batched kernel.  Contracts are declared in the annotations
themselves::

    Buffer = Annotated[np.ndarray, ArraySpec(dtype=np.uint8, ndim=1)]

    @contracted
    def kernel(buf0: Buffer, anchors0: Anchors, ...) -> Scores: ...

and validated only when ``REPRO_CONTRACTS=1`` is set in the environment —
the production path pays one truthiness check per call and nothing else.
Named shape dimensions (``shape=("pairs",)``) unify across all arrays of
one call, so "the two anchor vectors are the same length" is part of the
contract, not a comment.

CI runs one tier-1 pytest pass with ``REPRO_CONTRACTS=1`` so every array
that crosses the batched kernel, the ungapped extender or the executor's
shared-memory bank views is audited on every commit.
"""

from __future__ import annotations

import functools
import inspect
import os
import typing
from collections.abc import Callable, Iterable
from typing import Any, TypeVar

import numpy as np

__all__ = [
    "ArraySpec",
    "ContractError",
    "check_array",
    "contracted",
    "contracts_enabled",
]

ENV_VAR = "REPRO_CONTRACTS"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

F = TypeVar("F", bound=Callable[..., Any])

#: Named shape dimensions resolved so far in one call (name → size).
DimMap = dict[str, int]


def contracts_enabled() -> bool:
    """True when ``REPRO_CONTRACTS`` is set to a truthy value."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


class ContractError(TypeError):
    """An array failed its declared dtype/shape contract."""


class ArraySpec:
    """Declarative ndarray contract carried in ``Annotated`` metadata.

    Parameters
    ----------
    dtype:
        Required dtype, or an iterable of acceptable dtypes; ``None``
        accepts any dtype.
    ndim:
        Required dimensionality (redundant when *shape* is given).
    shape:
        Per-dimension constraints: an ``int`` pins the size, a ``str``
        names a dimension that must unify across every spec of the same
        call, ``None`` accepts any size.
    """

    __slots__ = ("dtypes", "ndim", "shape")

    def __init__(
        self,
        dtype: Any | Iterable[Any] | None = None,
        ndim: int | None = None,
        shape: tuple[int | str | None, ...] | None = None,
    ) -> None:
        if dtype is None:
            self.dtypes: tuple[np.dtype[Any], ...] | None = None
        else:
            candidates = (
                tuple(dtype)
                if isinstance(dtype, (tuple, list))
                else (dtype,)
            )
            self.dtypes = tuple(np.dtype(d) for d in candidates)
        if shape is not None and ndim is not None and len(shape) != ndim:
            raise ValueError(f"ndim={ndim} contradicts shape of rank {len(shape)}")
        self.ndim = len(shape) if shape is not None else ndim
        self.shape = shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.dtypes is not None:
            parts.append(f"dtype={'|'.join(str(d) for d in self.dtypes)}")
        if self.shape is not None:
            parts.append(f"shape={self.shape}")
        elif self.ndim is not None:
            parts.append(f"ndim={self.ndim}")
        return f"ArraySpec({', '.join(parts)})"

    def validate(self, label: str, value: Any, dims: DimMap) -> None:
        """Raise :class:`ContractError` unless *value* satisfies the spec."""
        if not isinstance(value, np.ndarray):
            raise ContractError(
                f"{label}: expected numpy.ndarray, got {type(value).__name__}"
            )
        if self.dtypes is not None and value.dtype not in self.dtypes:
            want = " or ".join(str(d) for d in self.dtypes)
            raise ContractError(
                f"{label}: dtype {value.dtype} violates contract {want}"
            )
        if self.ndim is not None and value.ndim != self.ndim:
            raise ContractError(
                f"{label}: ndim {value.ndim} violates contract ndim={self.ndim}"
            )
        if self.shape is None:
            return
        for axis, constraint in enumerate(self.shape):
            size = int(value.shape[axis])
            if constraint is None:
                continue
            if isinstance(constraint, int):
                if size != constraint:
                    raise ContractError(
                        f"{label}: axis {axis} has size {size}, contract "
                        f"requires {constraint}"
                    )
            else:
                seen = dims.setdefault(constraint, size)
                if seen != size:
                    raise ContractError(
                        f"{label}: axis {axis} has size {size}, but "
                        f"dimension {constraint!r} was already bound to "
                        f"{seen} in this call"
                    )


def check_array(label: str, value: Any, spec: ArraySpec) -> None:
    """Validate one array explicitly (no-op unless contracts are enabled).

    Used where the contract lives on a *value* rather than a function
    signature — e.g. the executor's shared-memory bank views, which are
    constructed, not passed.
    """
    if contracts_enabled():
        spec.validate(label, value, {})


def _spec_of(hint: Any) -> ArraySpec | None:
    """Extract the :class:`ArraySpec` from an ``Annotated`` hint, if any."""
    if typing.get_origin(hint) is not typing.Annotated:
        return None
    for meta in hint.__metadata__:
        if isinstance(meta, ArraySpec):
            return meta
    return None


def contracted(fn: F) -> F:
    """Wrap *fn* so its ``Annotated[..., ArraySpec]`` hints are enforced.

    Hints are resolved lazily on the first *enabled* call (so decorating
    costs nothing at import time and stringified annotations resolve
    against the fully initialised module).  When ``REPRO_CONTRACTS`` is
    unset the wrapper forwards immediately.
    """
    specs: dict[str, ArraySpec] | None = None
    signature: inspect.Signature | None = None

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not contracts_enabled():
            return fn(*args, **kwargs)
        nonlocal specs, signature
        if specs is None:
            signature = inspect.signature(fn)
            hints = typing.get_type_hints(fn, include_extras=True)
            specs = {
                name: spec
                for name, hint in hints.items()
                if (spec := _spec_of(hint)) is not None
            }
        assert signature is not None
        bound = signature.bind(*args, **kwargs)
        dims: DimMap = {}
        for name, spec in specs.items():
            if name == "return" or name not in bound.arguments:
                continue
            spec.validate(f"{fn.__qualname__}() argument {name!r}",
                          bound.arguments[name], dims)
        result = fn(*args, **kwargs)
        ret = specs.get("return")
        if ret is not None:
            ret.validate(f"{fn.__qualname__}() return value", result, dims)
        return result

    wrapper.__repro_contracted__ = True  # type: ignore[attr-defined]
    return typing.cast(F, wrapper)
