"""The paper's core contribution: the reorganised 3-step seed-based
comparison pipeline, its configuration, results and work partitioning."""

from .config import PipelineConfig
from .modes import BlastFamilySearch, SearchMode, translate_queries
from .render import alignment_traceback, render_alignment, render_report
from .partition import partition_imbalance, split_bank, split_entries
from .pipeline import SeedComparisonPipeline, gapped_stage
from .profile import PipelineProfile, StepCounters
from .results import Alignment, ComparisonReport

__all__ = [
    "PipelineConfig",
    "SearchMode",
    "BlastFamilySearch",
    "translate_queries",
    "render_alignment",
    "render_report",
    "alignment_traceback",
    "SeedComparisonPipeline",
    "gapped_stage",
    "Alignment",
    "ComparisonReport",
    "PipelineProfile",
    "StepCounters",
    "split_bank",
    "split_entries",
    "partition_imbalance",
]
