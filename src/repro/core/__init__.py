"""The paper's core contribution: the reorganised 3-step seed-based
comparison pipeline, its configuration, results and work partitioning."""

from .config import PipelineConfig
from .executor import ShardedStep2Executor
from .faults import BankCorruption, FaultError, FaultKind, FaultPlan, FaultSpec
from .modes import BlastFamilySearch, SearchMode, translate_queries
from .partition import (
    partition_imbalance,
    split_bank,
    split_entries,
    split_entries_contiguous,
)
from .pipeline import SeedComparisonPipeline, gapped_stage
from .profile import PipelineProfile, RunHealth, ShardTiming, StepCounters
from .render import (
    alignment_traceback,
    render_alignment,
    render_report,
    render_run_health,
)
from .results import Alignment, ComparisonReport
from .supervisor import ShardOutcome, ShardSupervisor, SupervisorConfig

__all__ = [
    "PipelineConfig",
    "SearchMode",
    "BlastFamilySearch",
    "translate_queries",
    "render_alignment",
    "render_report",
    "render_run_health",
    "alignment_traceback",
    "SeedComparisonPipeline",
    "ShardedStep2Executor",
    "gapped_stage",
    "Alignment",
    "ComparisonReport",
    "PipelineProfile",
    "RunHealth",
    "ShardTiming",
    "StepCounters",
    "FaultPlan",
    "FaultSpec",
    "FaultKind",
    "FaultError",
    "BankCorruption",
    "SupervisorConfig",
    "ShardSupervisor",
    "ShardOutcome",
    "split_bank",
    "split_entries",
    "split_entries_contiguous",
    "partition_imbalance",
]
