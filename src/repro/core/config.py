"""Pipeline configuration.

One frozen dataclass gathers every knob of the paper's algorithm so a
configuration can be shared verbatim between the software pipeline, the
hardware-accelerated pipeline, and the benchmark harness (which must hold
everything but the PE count constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..extend.gapped import GapPenalties
from ..extend.ungapped import ScoreSemantics, UngappedConfig
from ..index.kmer import ContiguousSeedModel, SeedModel
from ..index.subset_seed import DEFAULT_SUBSET_SEED
from ..seqs.matrices import BLOSUM62, SubstitutionMatrix
from .faults import FaultPlan
from .supervisor import SupervisorConfig

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """Full parameter set of the seed-based comparison pipeline.

    Attributes
    ----------
    seed_model:
        Step-1 indexing seed.  Defaults to the weight-≈3.5 span-4 subset
        seed (the paper's choice); pass
        :class:`~repro.index.kmer.ContiguousSeedModel` for exact W-mers.
    flank:
        The paper's ``N``: residues examined on each side of the seed in
        step 2 (window = ``span + 2N``).
    ungapped_threshold:
        Step-2 survival threshold (raw score).  The paper raises this value
        in the 2-FPGA experiment to thin result traffic; see Table 3.
    semantics:
        Window-score recurrence (Kadane by default; see
        :class:`~repro.extend.ungapped.ScoreSemantics`).
    matrix:
        Substitution matrix for every stage.
    gaps, gapped_x_drop:
        Step-3 affine penalties and X-drop bound.
    max_evalue:
        Final report cut-off (the paper compares at ``E = 10⁻³``).
    pair_chunk:
        Step-2 batch budget: maximum seed pairs per kernel invocation
        (the CLI's ``--batch-pairs``).  Bounds the batched engine's
        transient memory at roughly ``3 × 8 bytes × pair_chunk``.
    workers:
        Step-2 shard count (the CLI's ``--workers``).  ``1`` scores
        in-process; ``N > 1`` fans the key space out over N worker
        processes — the software generalisation of the paper's 2-FPGA
        partitioning — with bit-identical output for any value.
    shard_timeout:
        Per-shard dispatch deadline in seconds (the CLI's
        ``--shard-timeout``); ``None`` derives one from each shard's pair
        count.  Only meaningful with ``workers > 1``.
    max_retries:
        Re-dispatches allowed per failed/hung shard before the supervisor
        falls back to in-process scoring (the CLI's ``--max-retries``).
    fault_plan:
        Deterministic fault injection for chaos testing (the CLI's
        ``--fault-plan``); ``None`` in production.
    step2_backend:
        Step-2 scoring-kernel registry name (the CLI's
        ``--step2-backend``); ``"auto"`` selects the best available
        backend.  Every backend is bit-identical by construction (see
        :mod:`repro.extend.backends`), so this is purely a speed knob.
    min_pairs_per_shard:
        Pair-count floor below which a ``workers > 1`` run scores
        in-process instead of paying pool spawn + shared-memory staging
        (the CLI's ``--min-pairs-per-shard``); ``0`` disables the
        heuristic.
    """

    seed_model: SeedModel = field(default_factory=lambda: DEFAULT_SUBSET_SEED)
    flank: int = 12
    ungapped_threshold: int = 45
    semantics: ScoreSemantics = ScoreSemantics.KADANE
    matrix: SubstitutionMatrix = BLOSUM62
    gaps: GapPenalties = field(default_factory=GapPenalties)
    gapped_x_drop: int = 38
    max_evalue: float = 1e-3
    pair_chunk: int = 1 << 20
    workers: int = 1
    shard_timeout: float | None = None
    max_retries: int = 2
    fault_plan: FaultPlan | None = None
    step2_backend: str = "auto"
    min_pairs_per_shard: int = 1 << 18

    @property
    def window(self) -> int:
        """Step-2 window width ``W + 2N``."""
        return self.seed_model.span + 2 * self.flank

    @property
    def batch_pairs(self) -> int:
        """Alias of :attr:`pair_chunk` under its CLI-facing name."""
        return self.pair_chunk

    def ungapped_config(self) -> UngappedConfig:
        """Derive the step-2 kernel configuration."""
        return UngappedConfig(
            w=self.seed_model.span,
            n=self.flank,
            threshold=self.ungapped_threshold,
            matrix=self.matrix,
            semantics=self.semantics,
            pair_chunk=self.pair_chunk,
            backend=self.step2_backend,
        )

    def supervisor_config(self) -> SupervisorConfig:
        """Derive the step-2 supervision policy."""
        return SupervisorConfig(
            shard_timeout=self.shard_timeout, max_retries=self.max_retries
        )

    def with_(self, **kwargs: Any) -> PipelineConfig:
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def exact_seed(cls, w: int = 4, **kwargs: Any) -> PipelineConfig:
        """Convenience: a configuration using exact contiguous W-mers."""
        return cls(seed_model=ContiguousSeedModel(w), **kwargs)
