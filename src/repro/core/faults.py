"""Deterministic fault injection for step-2 execution and the hw simulator.

The paper's two-FPGA runs assume every compute unit finishes every dispatch;
a production host cannot.  To test the supervision layer
(:mod:`repro.core.supervisor`) without flaky, timing-dependent tests, faults
are *data*: a :class:`FaultPlan` is a seeded, serialisable list of
:class:`FaultSpec` records addressed by shard id and dispatch attempt (for
worker faults) or by event count (for simulator faults).  The same plan can

* make a step-2 worker process crash, hang, return truncated hit arrays or
  corrupt its bank view (applied inside the worker task, see
  :mod:`repro.core.executor`), and
* drive the :mod:`repro.hwsim` FIFO/DMA hooks, so the cycle simulator's
  overflow/transfer-error handling is exercised by the identical plan.

Because every fault is addressable and the plan is seeded, a failing chaos
run replays exactly from its plan JSON — no nondeterministic monkey.
"""

from __future__ import annotations

import enum
import json
import zlib
from collections.abc import Callable
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultError",
    "BankCorruption",
    "bank_digest",
    "WORKER_KINDS",
    "HWSIM_KINDS",
    "SERVICE_KINDS",
]


class FaultError(RuntimeError):
    """An injected (or detected) fault inside a step-2 worker."""


class BankCorruption(FaultError):
    """A worker's bank view failed its digest check (corrupt residues)."""


class FaultKind(enum.Enum):
    """What the injected fault does at its site."""

    #: Worker process exits immediately (models a segfaulted blade host).
    CRASH = "crash"
    #: Worker sleeps ``hang_seconds`` before computing (models a stall).
    HANG = "hang"
    #: Worker drops ``drop`` hits from the tail of its result arrays while
    #: reporting the untruncated stats (models a short DMA readback).
    TRUNCATE = "truncate"
    #: Worker's private bank view is overwritten with seeded garbage
    #: (models bit-flipped board SRAM; caught by the digest check).
    CORRUPT_BANK = "corrupt-bank"
    #: hwsim: a :class:`~repro.hwsim.fifo.SyncFifo` raises overflow at the
    #: ``at_count``-th push event.
    FIFO_OVERFLOW = "fifo-overflow"
    #: hwsim: a :class:`~repro.hwsim.dma.DmaStream` raises a transfer error
    #: at the ``at_count``-th word.
    DMA_ERROR = "dma-error"
    #: serve: the load client stalls ``hang_seconds`` mid-request (models a
    #: slow reader holding a handler thread; applied client-side).
    SLOW_CLIENT = "slow-client"
    #: serve: the admission queue reports itself full for this request, so
    #: the service must shed it with 429 + ``Retry-After``.
    QUEUE_OVERFLOW = "queue-overflow"
    #: serve: every warm-pool worker process is killed immediately before
    #: the request dispatches (models the pool dying mid-request; the
    #: supervisor's rebuild path must recover).
    POOL_DEATH = "pool-death"
    #: serve: the resident warm bank's staged shared-memory copy is
    #: overwritten with seeded garbage before the request; the service's
    #: CRC check must detect it and self-heal by re-staging.
    CORRUPT_WARM_BANK = "corrupt-warm-bank"


#: Kinds applied inside step-2 worker processes.
WORKER_KINDS = frozenset(
    {FaultKind.CRASH, FaultKind.HANG, FaultKind.TRUNCATE, FaultKind.CORRUPT_BANK}
)
#: Kinds applied inside the cycle simulator.
HWSIM_KINDS = frozenset({FaultKind.FIFO_OVERFLOW, FaultKind.DMA_ERROR})
#: Kinds applied at the serving layer (addressed by request index).
SERVICE_KINDS = frozenset(
    {
        FaultKind.SLOW_CLIENT,
        FaultKind.QUEUE_OVERFLOW,
        FaultKind.POOL_DEATH,
        FaultKind.CORRUPT_WARM_BANK,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One addressable fault.

    Worker faults are addressed by ``(shard, attempt)``: the fault fires
    when shard ``shard`` (``None`` = any shard) is dispatched for the
    ``attempt``-th time (``None`` = every attempt — an *unrecoverable*
    fault that forces the supervisor's in-process fallback).  Simulator
    faults are addressed by ``at_count``, the 0-based event index at the
    hook site.  Service faults are addressed by ``request``, the 0-based
    index of the search request as admitted by the server (``None`` =
    every request).
    """

    kind: FaultKind
    shard: int | None = None
    attempt: int | None = 0
    at_count: int | None = None
    #: Service faults: 0-based request index the fault fires on.
    request: int | None = None
    #: ``HANG``/``SLOW_CLIENT`` stall duration; keep well above any test
    #: deadline (service plans use sub-second stalls).
    hang_seconds: float = 30.0
    #: ``TRUNCATE``: hits dropped from the tail of the result arrays.
    drop: int = 1

    @property
    def site(self) -> str:
        """Where the fault applies: ``"worker"``, ``"service"`` or ``"hwsim"``."""
        if self.kind in WORKER_KINDS:
            return "worker"
        if self.kind in SERVICE_KINDS:
            return "service"
        return "hwsim"

    def matches(self, shard: int, attempt: int) -> bool:
        """True when this worker fault fires for ``(shard, attempt)``."""
        if self.kind not in WORKER_KINDS:
            return False
        if self.shard is not None and self.shard != shard:
            return False
        return self.attempt is None or self.attempt == attempt

    def matches_request(self, request: int) -> bool:
        """True when this service fault fires for request index *request*."""
        if self.kind not in SERVICE_KINDS:
            return False
        return self.request is None or self.request == request

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "kind": self.kind.value,
            "shard": self.shard,
            "attempt": self.attempt,
            "at_count": self.at_count,
            "request": self.request,
            "hang_seconds": self.hang_seconds,
            "drop": self.drop,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> FaultSpec:
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f for f in cls.__dataclass_fields__}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown FaultSpec fields: {sorted(extra)}")
        kwargs = dict(data)
        kwargs["kind"] = FaultKind(kwargs["kind"])
        return cls(**kwargs)


#: Signature of an hwsim fault hook: event index -> fire?
HwFaultHook = Callable[[int], bool]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable set of faults.

    The ``seed`` both identifies the plan and derives any random payload a
    fault needs (garbage bytes for ``CORRUPT_BANK``), so two runs of the
    same plan inject bit-identical damage.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    # Worker-side addressing ------------------------------------------------
    def worker_fault(self, shard: int, attempt: int) -> FaultSpec | None:
        """First worker fault firing for ``(shard, attempt)``, if any."""
        for spec in self.specs:
            if spec.matches(shard, attempt):
                return spec
        return None

    def corruption(self, shard: int, n: int) -> np.ndarray:
        """Seeded garbage bytes used by ``CORRUPT_BANK`` on *shard*."""
        rng = np.random.default_rng(self.seed * 1_000_003 + shard)
        return rng.integers(0, 256, size=n, dtype=np.uint8)

    # Service-side addressing -----------------------------------------------
    def service_fault(
        self, request: int, kind: FaultKind | None = None
    ) -> FaultSpec | None:
        """First service fault firing for *request*, optionally of *kind*.

        The serving layer consults this at each fault site with the site's
        own kind (admission asks for ``QUEUE_OVERFLOW``, dispatch for
        ``POOL_DEATH``, …), so one request can carry several service faults
        without them shadowing each other.
        """
        for spec in self.specs:
            if kind is not None and spec.kind is not kind:
                continue
            if spec.matches_request(request):
                return spec
        return None

    def service_faults(self, request: int) -> tuple[FaultSpec, ...]:
        """Every service fault firing for *request*, in plan order."""
        return tuple(s for s in self.specs if s.matches_request(request))

    # hwsim addressing ------------------------------------------------------
    def hwsim_hook(self, kind: FaultKind) -> HwFaultHook | None:
        """Event-count hook for one simulator fault kind, or ``None``.

        The returned callable is handed to
        :class:`~repro.hwsim.fifo.SyncFifo` / :class:`~repro.hwsim.dma.DmaStream`
        as their ``fault_hook``; it fires when the component's event index
        equals a spec's ``at_count``.
        """
        if kind not in HWSIM_KINDS:
            raise ValueError(f"{kind} is not a simulator fault kind")
        counts = frozenset(
            s.at_count for s in self.specs if s.kind is kind and s.at_count is not None
        )
        if not counts:
            return None

        def fire(count: int) -> bool:
            return count in counts

        return fire

    # Serialisation ---------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the plan to a JSON string."""
        return json.dumps(
            {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        """Parse a plan from JSON text (inverse of :meth:`to_json`)."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("fault plan JSON must be an object")
        specs = tuple(FaultSpec.from_dict(d) for d in data.get("specs", ()))
        return cls(specs=specs, seed=int(data.get("seed", 0)))

    @classmethod
    def parse(cls, source: str | Path) -> FaultPlan:
        """Parse a plan from a file path or an inline JSON string.

        The CLI's ``--fault-plan`` accepts either; anything starting with
        ``{`` is treated as inline JSON, everything else as a path.
        """
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(text).read_text(encoding="ascii")
        return cls.from_json(text)

    @classmethod
    def random(
        cls,
        seed: int,
        shards: int,
        n_faults: int = 2,
        max_attempt: int = 1,
        hang_seconds: float = 0.2,
    ) -> FaultPlan:
        """A reproducible random plan of recoverable worker faults.

        Used by the chaos CI job: any plan this generates must leave the
        merged step-2 output bit-identical (the supervisor guarantees it),
        so the seed can rotate freely without flaking the suite.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        rng = np.random.default_rng(seed)
        kinds = (FaultKind.CRASH, FaultKind.TRUNCATE, FaultKind.CORRUPT_BANK,
                 FaultKind.HANG)
        specs = []
        for _ in range(n_faults):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            specs.append(
                FaultSpec(
                    kind=kind,
                    shard=int(rng.integers(0, shards)),
                    attempt=int(rng.integers(0, max_attempt + 1)),
                    hang_seconds=hang_seconds,
                )
            )
        return cls(specs=tuple(specs), seed=seed)

    def scaled(self, **changes: Any) -> FaultPlan:
        """Copy with fields replaced (convenience for tests)."""
        return replace(self, **changes)


def bank_digest(buf: np.ndarray) -> int:
    """CRC-32 digest of a contiguous uint8 bank buffer.

    Cheap enough to verify per shard dispatch; a mismatch between a
    worker's view and the digest the parent computed at publish time means
    the view was corrupted after staging (the software analogue of board
    SRAM bit-flips).
    """
    arr = np.ascontiguousarray(buf, dtype=np.uint8)
    return zlib.crc32(arr.data) & 0xFFFFFFFF
