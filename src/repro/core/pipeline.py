"""The seed-based comparison pipeline (the paper's §2 algorithm).

:class:`SeedComparisonPipeline` orchestrates the three steps over two
sequence banks:

1. **indexing** — both banks are indexed with the configured seed model and
   joined (:class:`~repro.index.kmer.TwoBankIndex`);
2. **ungapped extension** — every ``IL0[k] × IL1[k]`` pair is window-scored
   (:class:`~repro.extend.ungapped.UngappedExtender`); survivors become
   *anchors*;
3. **gapped extension** — anchors are extended with the gapped X-drop
   engine, deduplicated BLAST-style (an anchor falling inside an already
   extended alignment of the same sequence pair is skipped), scored in
   bits, and filtered at the configured E-value.

The pipeline is structured so step 2 is swappable: the accelerated pipeline
(:mod:`repro.rasc.accelerated`) substitutes the PSC-operator model for
:class:`UngappedExtender` while reusing steps 1 and 3 verbatim — exactly the
split the paper deploys on the Altix + RASC-100.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import AbstractContextManager, nullcontext
from typing import Any

import numpy as np

from ..analysis import allocsan
from ..analysis import determinism as detsan
from ..extend.gapped import xdrop_gapped_extend
from ..extend.stats import evalue as evalue_of
from ..extend.stats import gapped_params
from ..extend.ungapped import UngappedHits
from ..index.kmer import BankIndex, TwoBankIndex
from ..obs import trace
from ..seqs.sequence import Sequence, SequenceBank
from ..seqs.translate import translated_bank
from .config import PipelineConfig
from .executor import ShardedStep2Executor
from .profile import PipelineProfile
from .results import Alignment, ComparisonReport

__all__ = ["SeedComparisonPipeline", "gapped_stage"]

#: Type of a step-2 implementation: index → surviving anchor pairs.
Step2Fn = Callable[[TwoBankIndex], UngappedHits]


def _alignment_rows(report: ComparisonReport) -> list[np.ndarray]:
    """Parallel columns of the final report for the detsan stage digest.

    Floats (bit score, E-value) ride along as float64 columns and are
    bit-cast by the digest, so the stage asserts bit-identical statistics,
    not merely equal-within-rounding ones.
    """
    alignments = report.alignments
    return [
        np.array([a.seq0_id for a in alignments], dtype=np.int64),
        np.array([a.start0 for a in alignments], dtype=np.int64),
        np.array([a.end0 for a in alignments], dtype=np.int64),
        np.array([a.seq1_id for a in alignments], dtype=np.int64),
        np.array([a.start1 for a in alignments], dtype=np.int64),
        np.array([a.end1 for a in alignments], dtype=np.int64),
        np.array([a.raw_score for a in alignments], dtype=np.int64),
        np.array([a.ungapped_score for a in alignments], dtype=np.int64),
        np.array([a.bit_score for a in alignments], dtype=np.float64),
        np.array([a.evalue for a in alignments], dtype=np.float64),
    ]


def gapped_stage(
    bank0: SequenceBank,
    bank1: SequenceBank,
    hits: UngappedHits,
    config: PipelineConfig,
    profile: PipelineProfile | None = None,
) -> ComparisonReport:
    """Step 3: gapped extension + dedup + statistics over anchor pairs.

    Shared by the software and accelerated pipelines.  Anchors are
    processed in descending ungapped-score order; an anchor contained in a
    previously extended alignment of the same sequence pair is skipped
    (BLAST's HSP-containment rule), which collapses the many seed hits one
    true alignment generates.
    """
    params = gapped_params(config.matrix.name, config.gaps.open, config.gaps.extend)
    db_len = bank1.total_residues
    report = ComparisonReport(
        n_seed_pairs=hits.stats.pairs, n_ungapped_hits=len(hits)
    )
    if len(hits) == 0:
        return report
    order = np.argsort(-hits.scores, kind="stable")
    seq0_ids = bank0.seq_id_of(hits.offsets0)
    seq1_ids = bank1.seq_id_of(hits.offsets1)
    pos0 = hits.offsets0 - bank0.starts[seq0_ids]
    pos1 = hits.offsets1 - bank1.starts[seq1_ids]
    covered: dict[tuple[int, int], list[tuple[int, int, int, int]]] = {}
    cells = 0
    n_ext = 0
    for r in order:
        s0, s1 = int(seq0_ids[r]), int(seq1_ids[r])
        p0, p1 = int(pos0[r]), int(pos1[r])
        key = (s0, s1)
        ranges = covered.setdefault(key, [])
        if any(a0 <= p0 < b0 and a1 <= p1 < b1 for a0, b0, a1, b1 in ranges):
            continue
        ext = xdrop_gapped_extend(
            bank0.buffer,
            int(hits.offsets0[r]),
            bank1.buffer,
            int(hits.offsets1[r]),
            matrix=config.matrix,
            gaps=config.gaps,
            x_drop=config.gapped_x_drop,
        )
        n_ext += 1
        cells += ext.cells
        l0 = int(bank0.starts[s0])
        l1 = int(bank1.starts[s1])
        ranges.append((ext.start0 - l0, ext.end0 - l0, ext.start1 - l1, ext.end1 - l1))
        e = evalue_of(ext.score, int(bank0.lengths[s0]), db_len, params)
        if e > config.max_evalue:
            continue
        report.alignments.append(
            Alignment(
                seq0_id=s0,
                seq0_name=bank0.names[s0],
                start0=ext.start0 - l0,
                end0=ext.end0 - l0,
                seq1_id=s1,
                seq1_name=bank1.names[s1],
                start1=ext.start1 - l1,
                end1=ext.end1 - l1,
                raw_score=ext.score,
                bit_score=params.bit_score(ext.score),
                evalue=e,
                ungapped_score=int(hits.scores[r]),
            )
        )
    report.n_gapped_extensions = n_ext
    if profile is not None:
        profile.step3.operations += cells
        profile.step3.items += n_ext
    report.sort()
    return report


class SeedComparisonPipeline:
    """End-to-end software implementation of the paper's algorithm.

    Parameters
    ----------
    config:
        Pipeline parameters; defaults to the paper-equivalent configuration
        (span-4 subset seed, N=12 flanks, BLOSUM62, E ≤ 10⁻³).
    step2:
        Optional replacement for the step-2 engine (signature
        ``TwoBankIndex -> UngappedHits``).  Used by the accelerated
        pipeline to deport step 2 to the PSC-operator model.
    """

    def __init__(
        self, config: PipelineConfig | None = None, step2: Step2Fn | None = None
    ) -> None:
        self.config = config or PipelineConfig()
        self._step2 = step2
        #: Profile of the most recent run.
        self.profile = PipelineProfile()
        #: Joint index of the most recent run (reused by cost models).
        self.last_index: TwoBankIndex | None = None
        #: Step-2 hits of the most recent run.
        self.last_hits: UngappedHits | None = None
        #: Determinism-sanitizer manifest of the most recent run, when the
        #: sanitizer was active (``REPRO_DETSAN=1`` or a verify harness).
        self.last_detsan: dict[str, Any] | None = None
        #: Allocation-sanitizer manifest of the most recent run, when that
        #: sanitizer was active (``REPRO_ALLOCSAN=1`` or ``--verify-allocs``).
        self.last_allocsan: dict[str, Any] | None = None

    @staticmethod
    def _root_span() -> AbstractContextManager[Any]:
        """The run's root ``pipeline`` span, unless one is already open.

        ``compare_with_genome`` opens it around translation + comparison;
        ``compare_banks`` must then nest under it, not start a second root.
        """
        if trace.current_span_id() is not None:
            return nullcontext()
        return trace.span("pipeline")

    def index_banks(self, bank0: SequenceBank, bank1: SequenceBank) -> TwoBankIndex:
        """Step 1 only: build and join both bank indexes."""
        with self.profile.timing(self.profile.step1, "step1.index") as ctr:
            index = TwoBankIndex.build(bank0, bank1, self.config.seed_model)
            ctr.operations += bank0.total_residues + bank1.total_residues
            ctr.items += len(bank0) + len(bank1)
        # Shared keys are emitted ascending, so the joint index has exactly
        # one valid byte image — order-sensitive digest.
        detsan.record_arrays(
            "step1.index",
            [index.shared_keys(), index.pair_counts()],
            order_sensitive=True,
        )
        return index

    def run_step2(self, index: TwoBankIndex) -> UngappedHits:
        """Step 2 only: ungapped extension over the joint index.

        The default engine is the sharded executor at ``config.workers``
        processes (in-process batched scoring at the default of 1); its
        per-shard timings land in ``profile.step2_shards``.
        """
        with self.profile.timing(self.profile.step2, "step2.ungapped") as ctr:
            if self._step2 is not None:
                hits = self._step2(index)
            else:
                executor = ShardedStep2Executor(
                    self.config.ungapped_config(),
                    workers=self.config.workers,
                    supervisor=self.config.supervisor_config(),
                    fault_plan=self.config.fault_plan,
                    min_pairs_per_shard=self.config.min_pairs_per_shard,
                )
                hits = executor.run(index)
                self.profile.step2_shards.extend(executor.last_timings)
                self.profile.run_health.merge(executor.last_health)
            ctr.operations += hits.stats.cells
            ctr.items += hits.stats.pairs
        # The survivor *set* must not depend on sharding — order-independent
        # multiset digest.  The merged *arrays* additionally claim a single
        # canonical emission order — order-sensitive digest over the same
        # rows.  A merge that scrambles order (RC100's target) keeps the
        # first digest and breaks the second.
        hit_rows = [hits.offsets0, hits.offsets1, hits.scores]
        detsan.record_arrays("step2.survivors", hit_rows, order_sensitive=False)
        detsan.record_arrays("step2.merged", hit_rows, order_sensitive=True)
        return hits

    def compare_banks(
        self, bank0: SequenceBank, bank1: SequenceBank, reset_profile: bool = True
    ) -> ComparisonReport:
        """Run the full three-step comparison of two protein banks.

        When the determinism sanitizer is active (an enclosing
        ``--verify-determinism`` harness, or ``REPRO_DETSAN=1``), every
        stage records its digest and the run's manifest lands in
        :attr:`last_detsan` (and ``$REPRO_DETSAN_OUT``, if set).  The
        allocation sanitizer (``--verify-allocs``, or ``REPRO_ALLOCSAN=1``)
        works the same way: per-scope allocation counters land in
        :attr:`last_allocsan` (and ``$REPRO_ALLOCSAN_OUT``, if set).
        """
        if reset_profile:
            self.profile = PipelineProfile()
        recorder, created = detsan.ensure_recorder()
        alloc_rec, alloc_created = allocsan.ensure_recorder()
        with (
            detsan.activate(recorder),
            allocsan.activate(alloc_rec),
            self._root_span(),
        ):
            index = self.index_banks(bank0, bank1)
            self.last_index = index
            hits = self.run_step2(index)
            self.last_hits = hits
            with (
                self.profile.timing(self.profile.step3, "step3.gapped"),
                allocsan.measure("step3.gapped"),
            ):
                report = gapped_stage(bank0, bank1, hits, self.config, self.profile)
            detsan.record_arrays(
                "step3.alignments", _alignment_rows(report), order_sensitive=True
            )
        if recorder is not None:
            self.last_detsan = recorder.manifest()
            if created:
                detsan.maybe_write_manifest(recorder)
        if alloc_rec is not None:
            self.last_allocsan = alloc_rec.manifest()
            if alloc_created:
                allocsan.maybe_write_manifest(alloc_rec)
        return report

    def compare_against_index(
        self,
        bank0: SequenceBank,
        resident: BankIndex,
        reset_profile: bool = True,
    ) -> ComparisonReport:
        """Compare *bank0* against a bank whose index is already built.

        The warm-serving path: the server indexes the resident bank once
        at startup and every request pays only its own (small) query-side
        indexing before the join.  Because :class:`TwoBankIndex.build` is
        nothing but ``TwoBankIndex(BankIndex(bank0, m), BankIndex(bank1,
        m))``, joining a fresh query index with the prebuilt resident index
        yields the identical joint index — and therefore bit-identical
        hits and alignments — to a cold :meth:`compare_banks` run of the
        same pair.
        """
        if reset_profile:
            self.profile = PipelineProfile()
        recorder, created = detsan.ensure_recorder()
        alloc_rec, alloc_created = allocsan.ensure_recorder()
        with (
            detsan.activate(recorder),
            allocsan.activate(alloc_rec),
            self._root_span(),
        ):
            with self.profile.timing(self.profile.step1, "step1.index") as ctr:
                index = TwoBankIndex(
                    BankIndex(bank0, resident.model), resident
                )
                # Only the query side is indexed per request; the resident
                # side was charged once at server startup.
                ctr.operations += bank0.total_residues
                ctr.items += len(bank0)
            detsan.record_arrays(
                "step1.index",
                [index.shared_keys(), index.pair_counts()],
                order_sensitive=True,
            )
            self.last_index = index
            hits = self.run_step2(index)
            self.last_hits = hits
            with (
                self.profile.timing(self.profile.step3, "step3.gapped"),
                allocsan.measure("step3.gapped"),
            ):
                report = gapped_stage(
                    bank0, resident.bank, hits, self.config, self.profile
                )
            detsan.record_arrays(
                "step3.alignments", _alignment_rows(report), order_sensitive=True
            )
        if recorder is not None:
            self.last_detsan = recorder.manifest()
            if created:
                detsan.maybe_write_manifest(recorder)
        if alloc_rec is not None:
            self.last_allocsan = alloc_rec.manifest()
            if alloc_created:
                allocsan.maybe_write_manifest(alloc_rec)
        return report

    def compare_with_genome(
        self, proteins: SequenceBank, genome: Sequence
    ) -> ComparisonReport:
        """tblastn-style comparison: protein bank vs 6-frame translated genome.

        Translation is charged to step 1 (it is part of the indexing
        preprocessing in the paper's workflow).
        """
        self.profile = PipelineProfile()
        with self._root_span():
            with self.profile.timing(self.profile.step1, "step1.translate"):
                frames = translated_bank(genome, pad=max(64, self.config.flank + 8))
            report = self.compare_banks(proteins, frames, reset_profile=False)
        return report
