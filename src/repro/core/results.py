"""Result records produced by the comparison pipeline."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

__all__ = ["Alignment", "ComparisonReport"]


@dataclass(frozen=True)
class Alignment:
    """One reported alignment between a bank-0 and a bank-1 sequence.

    Coordinates are 0-based half-open *local* positions within the named
    sequences.  When bank 1 is a translated genome, ``seq1_name`` carries
    the frame tag (``"chr|frame-2"``) and callers can map protein positions
    back to genomic coordinates with :func:`repro.seqs.translate.codon_of`.
    """

    seq0_id: int
    seq0_name: str
    start0: int
    end0: int
    seq1_id: int
    seq1_name: str
    start1: int
    end1: int
    raw_score: int
    bit_score: float
    evalue: float
    ungapped_score: int = 0

    @property
    def span0(self) -> int:
        """Alignment extent on sequence 0."""
        return self.end0 - self.start0

    @property
    def span1(self) -> int:
        """Alignment extent on sequence 1."""
        return self.end1 - self.start1

    def overlaps(self, other: Alignment) -> bool:
        """True when both sequence ranges overlap *other*'s (same pair)."""
        if (self.seq0_id, self.seq1_id) != (other.seq0_id, other.seq1_id):
            return False
        return not (
            self.end0 <= other.start0
            or other.end0 <= self.start0
            or self.end1 <= other.start1
            or other.end1 <= self.start1
        )


@dataclass
class ComparisonReport:
    """Pipeline output: alignments plus run accounting.

    ``alignments`` is sorted by ascending E-value (best first).  The
    ``profile`` attribute (set by the pipeline) carries per-step timings
    and operation counts used by every performance table.
    """

    alignments: list[Alignment] = field(default_factory=list)
    n_seed_pairs: int = 0
    n_ungapped_hits: int = 0
    n_gapped_extensions: int = 0

    def __len__(self) -> int:
        return len(self.alignments)

    def __iter__(self) -> Iterator[Alignment]:
        return iter(self.alignments)

    def best(self, n: int = 10) -> list[Alignment]:
        """Top-*n* alignments by E-value."""
        return self.alignments[:n]

    def for_query(self, seq0_id: int) -> list[Alignment]:
        """Alignments of one bank-0 sequence, best first."""
        return [a for a in self.alignments if a.seq0_id == seq0_id]

    def sort(self) -> None:
        """Sort by (E-value asc, raw score desc) in place."""
        self.alignments.sort(key=lambda a: (a.evalue, -a.raw_score))

    @staticmethod
    def merged(parts: Iterable[ComparisonReport]) -> ComparisonReport:
        """Merge partitioned runs (multi-FPGA / multi-process)."""
        out = ComparisonReport()
        for p in parts:
            out.alignments.extend(p.alignments)
            out.n_seed_pairs += p.n_seed_pairs
            out.n_ungapped_hits += p.n_ungapped_hits
            out.n_gapped_extensions += p.n_gapped_extensions
        out.sort()
        return out
