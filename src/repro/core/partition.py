"""Workload partitioning across accelerators.

The paper's 2-FPGA experiment (Table 3) runs "two independent processes
driving separate FPGAs": the protein bank is split and each half is
compared against the full genome on its own FPGA, results being merged on
the host.  This module provides the partitioning strategies:

* :func:`split_bank` — split a bank into ``n`` sub-banks balanced by total
  residue count (greedy longest-first bin packing), which balances *index
  anchor* counts and hence step-2 work;
* :func:`split_entries` — alternative entry-level round-robin split of a
  joint index's work list, used by the slot-ablation bench to study
  balance at finer granularity;
* :func:`split_entries_contiguous` — pair-balanced *contiguous* ranges of
  the shared-key entry list, the generalisation of the 2-FPGA split to N
  workers used by the sharded step-2 executor: because each shard is a
  run of consecutive entries, concatenating shard results in shard order
  reproduces the single-process emission order exactly.
"""

from __future__ import annotations

import numpy as np

from ..index.kmer import TwoBankIndex
from ..seqs.sequence import SequenceBank

__all__ = [
    "split_bank",
    "split_entries",
    "split_entries_contiguous",
    "partition_imbalance",
]


def split_bank(bank: SequenceBank, n_parts: int) -> list[SequenceBank]:
    """Split *bank* into *n_parts* residue-balanced sub-banks.

    Sequences are assigned greedily, longest first, to the currently
    lightest part — the classic LPT heuristic, within 4/3 of optimal
    makespan.  Sub-banks preserve sequence order within each part.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_parts == 1:
        return [bank]
    lengths = bank.lengths
    order = np.argsort(-lengths, kind="stable")
    loads = np.zeros(n_parts, dtype=np.int64)
    assignment = np.empty(len(bank), dtype=np.int64)
    for i in order:
        part = int(np.argmin(loads))
        assignment[i] = part
        loads[part] += int(lengths[i])
    parts: list[SequenceBank] = []
    for p in range(n_parts):
        members = [bank[int(i)] for i in np.flatnonzero(assignment == p)]
        parts.append(SequenceBank(members, bank.alphabet, pad=bank.pad))
    return parts


def split_entries(index: TwoBankIndex, n_parts: int) -> list[np.ndarray]:
    """Partition the joint index's entry ids by balanced pair counts.

    Returns ``n_parts`` arrays of entry indices (into
    :meth:`TwoBankIndex.entry`); entries are assigned LPT-style on their
    ``K0 × K1`` pair counts.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    counts = index.pair_counts()
    order = np.argsort(-counts, kind="stable")
    loads = np.zeros(n_parts, dtype=np.int64)
    buckets: list[list[int]] = [[] for _ in range(n_parts)]
    for j in order:
        part = int(np.argmin(loads))
        buckets[part].append(int(j))
        loads[part] += int(counts[j])
    return [np.array(sorted(b), dtype=np.int64) for b in buckets]


def split_entries_contiguous(
    index: TwoBankIndex, n_parts: int
) -> list[tuple[int, int]]:
    """Cut the shared-entry list into *n_parts* contiguous pair-balanced runs.

    Returns half-open ``(lo, hi)`` ranges over entry ids ``0 ..
    n_shared_keys`` covering the work list in order (some ranges may be
    empty).  Cut points sit at the pair-count quantiles, so each shard
    carries ≈ ``total_pairs / n_parts`` ungapped extensions — the same
    balance objective as :func:`split_entries` but order-preserving, which
    is what makes the sharded executor's merged output bit-identical to
    the single-process run.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    counts = index.pair_counts()
    n = int(counts.shape[0])
    if n == 0:
        return [(0, 0)] * n_parts
    cum = np.cumsum(counts, dtype=np.int64)
    targets = cum[-1] * np.arange(1, n_parts, dtype=np.float64) / n_parts
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate(([0], np.minimum(cuts, n), [n]))
    bounds = np.maximum.accumulate(bounds)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(n_parts)]


def partition_imbalance(loads: np.ndarray) -> float:
    """Makespan imbalance: max load / mean load (1.0 = perfect)."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0 or loads.mean() == 0:
        return 1.0
    return float(loads.max() / loads.mean())
