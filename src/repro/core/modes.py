"""BLAST-family search modes.

The paper's conclusion notes the PSC design "can be directly reused for
implementing blastp, blastx and tblastx" — the ungapped window kernel only
ever sees protein residues, so every translated mode reduces to preparing
the right protein banks.  This module provides that facade:

============  =======================  =========================
mode          query side               subject side
============  =======================  =========================
``BLASTP``    proteins                 proteins
``TBLASTN``   proteins                 DNA, translated 6-frame
``BLASTX``    DNA, translated 6-frame  proteins
``TBLASTX``   DNA, translated 6-frame  DNA, translated 6-frame
============  =======================  =========================

Optionally applies SEG low-complexity masking to the query side before
indexing (NCBI's default behaviour) and runs step 2 either in software or
on the accelerated pipeline.
"""

from __future__ import annotations

import enum
from typing import Any

from ..seqs.alphabet import DNA
from ..seqs.lowcomplexity import SegConfig, mask_bank
from ..seqs.sequence import Sequence, SequenceBank
from ..seqs.translate import translated_bank
from .config import PipelineConfig
from .pipeline import SeedComparisonPipeline, Step2Fn
from .profile import RunHealth
from .results import ComparisonReport

__all__ = ["SearchMode", "BlastFamilySearch", "translate_queries"]


class SearchMode(enum.Enum):
    """Which sides of the comparison are translated."""

    BLASTP = "blastp"
    BLASTX = "blastx"
    TBLASTN = "tblastn"
    TBLASTX = "tblastx"

    @property
    def query_is_dna(self) -> bool:
        """True when the query side must be 6-frame translated."""
        return self in (SearchMode.BLASTX, SearchMode.TBLASTX)

    @property
    def subject_is_dna(self) -> bool:
        """True when the subject side must be 6-frame translated."""
        return self in (SearchMode.TBLASTN, SearchMode.TBLASTX)


def translate_queries(dna: Sequence | SequenceBank, pad: int = 64) -> SequenceBank:
    """Translate DNA queries into one protein bank of all frames.

    Each input sequence contributes six frame sequences named
    ``"<name>|frame±K"`` so hits can be mapped back to nucleotide
    coordinates with :func:`repro.seqs.translate.codon_of`.
    """
    seqs = [dna] if isinstance(dna, Sequence) else list(dna)
    frames: list[Sequence] = []
    for seq in seqs:
        if seq.alphabet is not DNA:
            raise ValueError(f"query {seq.name!r} is not DNA")
        frames.extend(translated_bank(seq, pad=pad))
    return SequenceBank(frames, pad=pad)


class BlastFamilySearch:
    """Unified driver for the four search modes.

    Parameters
    ----------
    config:
        Pipeline parameters shared by all modes.
    seg:
        SEG configuration for query-side masking, or ``None`` to disable.
    step2:
        Optional step-2 engine override (e.g.
        ``PscBehavioral(...).step2_hits`` bound to a flank), passed through
        to :class:`~repro.core.pipeline.SeedComparisonPipeline`.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        seg: SegConfig | None = SegConfig(),
        step2: Step2Fn | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.seg = seg
        self._step2 = step2
        #: Pipeline of the most recent search (profile, index, hits).
        self.last_pipeline: SeedComparisonPipeline | None = None
        #: Masked query-residue fraction of the most recent search.
        self.last_masked_fraction: float = 0.0

    @property
    def last_run_health(self) -> RunHealth:
        """Step-2 supervision counters of the most recent search.

        All-zero when no search ran yet or step 2 was overridden; callers
        serving traffic check :attr:`RunHealth.degraded` to alert on runs
        that only completed through the in-process fallback.
        """
        if self.last_pipeline is None:
            return RunHealth()
        return self.last_pipeline.profile.run_health

    @property
    def last_detsan(self) -> dict[str, Any] | None:
        """Determinism-sanitizer manifest of the most recent search.

        ``None`` when no search ran yet or the sanitizer was inactive
        (no ``REPRO_DETSAN=1`` and no verify harness).
        """
        if self.last_pipeline is None:
            return None
        return self.last_pipeline.last_detsan

    def _protein_side(
        self, data: Sequence | SequenceBank, is_dna: bool, side: str
    ) -> SequenceBank:
        pad = max(64, self.config.flank + 8)
        if is_dna:
            if isinstance(data, Sequence):
                return translated_bank(data, pad=pad)
            return translate_queries(data, pad=pad)
        if isinstance(data, Sequence):
            data = SequenceBank([data], pad=pad)
        if data.alphabet is DNA:
            raise ValueError(f"{side} bank is DNA but the mode expects protein")
        return data

    def search(
        self,
        mode: SearchMode,
        queries: Sequence | SequenceBank,
        subject: Sequence | SequenceBank,
    ) -> ComparisonReport:
        """Run one comparison in the given mode."""
        qbank = self._protein_side(queries, mode.query_is_dna, "query")
        sbank = self._protein_side(subject, mode.subject_is_dna, "subject")
        if self.seg is not None:
            qbank, self.last_masked_fraction = mask_bank(qbank, self.seg)
        else:
            self.last_masked_fraction = 0.0
        pipeline = SeedComparisonPipeline(self.config, step2=self._step2)
        self.last_pipeline = pipeline
        return pipeline.compare_banks(qbank, sbank)

    # Convenience wrappers -------------------------------------------------
    def blastp(
        self, queries: Sequence | SequenceBank, subject: Sequence | SequenceBank
    ) -> ComparisonReport:
        """Protein vs protein."""
        return self.search(SearchMode.BLASTP, queries, subject)

    def blastx(
        self, queries: Sequence | SequenceBank, subject: Sequence | SequenceBank
    ) -> ComparisonReport:
        """Translated DNA queries vs protein bank."""
        return self.search(SearchMode.BLASTX, queries, subject)

    def tblastn(
        self, queries: Sequence | SequenceBank, subject: Sequence | SequenceBank
    ) -> ComparisonReport:
        """Protein queries vs translated genome."""
        return self.search(SearchMode.TBLASTN, queries, subject)

    def tblastx(
        self, queries: Sequence | SequenceBank, subject: Sequence | SequenceBank
    ) -> ComparisonReport:
        """Translated DNA vs translated DNA."""
        return self.search(SearchMode.TBLASTX, queries, subject)
