"""Sharded multiprocess step-2 execution.

The paper scales step 2 by partitioning the workload across two FPGAs
driven by independent host processes (Table 3); Nguyen & Lavenier's
fine-grained parallelization generalises the same idea to N compute
units.  :class:`ShardedStep2Executor` is that architecture in software:

* the joint index's shared-key list is cut into ``workers`` contiguous,
  pair-balanced shards (:func:`~repro.core.partition.split_entries_contiguous`
  — shards ↔ FPGAs);
* the two bank buffers are published once in POSIX shared memory, so
  worker processes map them instead of unpickling per-task copies (the
  analogue of banks staged once in board SRAM);
* each worker drives the batched engine
  (:class:`~repro.extend.batched.BatchedUngappedEngine`) over its shard's
  entry lists (batch ↔ one PE-array fill);
* results merge on the host **in shard order**, which — because shards
  are contiguous runs of the ascending shared-key list — reproduces the
  single-process emission order bit for bit.

Per-shard wall time, entry/pair/hit counts and batch shapes are exposed
as :class:`~repro.core.profile.ShardTiming` records for the profile
benches.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Iterator
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any

import numpy as np

from ..analysis.contracts import ArraySpec, check_array
from ..extend.batched import BatchedUngappedEngine
from ..extend.ungapped import UngappedConfig, UngappedHits, UngappedStats
from ..index.kmer import TwoBankIndex
from .partition import split_entries_contiguous
from .profile import ShardTiming

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.context import BaseContext
    from multiprocessing.shared_memory import SharedMemory

__all__ = ["ShardedStep2Executor"]

#: Per-process worker state installed by the pool initializer.
_WORKER: dict[str, Any] = {}

#: Contract every shared-memory bank view must satisfy: the batched kernel
#: gathers residues straight out of these buffers, so a wrong dtype here is
#: silent score corruption in every worker.
_BANK_VIEW_SPEC = ArraySpec(dtype=np.uint8, ndim=1)


def _pool_context() -> tuple[BaseContext, bool]:
    """Multiprocessing context for the pool.

    Prefer ``fork``: workers then share the parent's resource tracker, and
    the parent's single create/unlink pair manages each segment.  Where
    fork does not exist (Windows) fall back to ``spawn``; there every
    worker runs its own tracker, whose attach-time registration must be
    undone or it unlinks the segment when the worker exits.  Returns
    ``(context, unregister_in_worker)``.
    """
    import multiprocessing as mp

    try:
        return mp.get_context("fork"), False
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn"), True


def _attach_shared(name: str, unregister: bool) -> SharedMemory:
    """Attach a shared-memory block, optionally disowning its cleanup.

    Only the parent owns the segment's lifetime; with a per-worker
    resource tracker (spawn), unregistering here stops that tracker from
    racing the parent's unlink.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if unregister:  # pragma: no cover - spawn-only path
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(
                getattr(shm, "_name", shm.name), "shared_memory"
            )
        except Exception:
            pass
    return shm


def _init_worker(name0: str, size0: int, name1: str, size1: int,
                 config: UngappedConfig, unregister: bool) -> None:
    """Pool initializer: map both bank buffers and keep the config."""
    shm0 = _attach_shared(name0, unregister)
    shm1 = _attach_shared(name1, unregister)
    _WORKER["shm"] = (shm0, shm1)  # keep alive for the process lifetime
    buf0 = np.ndarray((size0,), dtype=np.uint8, buffer=shm0.buf)
    buf1 = np.ndarray((size1,), dtype=np.uint8, buffer=shm1.buf)
    check_array("step-2 worker bank-0 view", buf0, _BANK_VIEW_SPEC)
    check_array("step-2 worker bank-1 view", buf1, _BANK_VIEW_SPEC)
    _WORKER["buf0"] = buf0
    _WORKER["buf1"] = buf1
    _WORKER["config"] = config


def _entry_stream(
    offsets0: np.ndarray,
    counts0: np.ndarray,
    offsets1: np.ndarray,
    counts1: np.ndarray,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Re-segment a shard payload into per-entry (IL0, IL1) list pairs."""
    b0 = np.concatenate(([0], np.cumsum(counts0, dtype=np.int64)))
    b1 = np.concatenate(([0], np.cumsum(counts1, dtype=np.int64)))
    for i in range(counts0.shape[0]):
        yield offsets0[b0[i] : b0[i + 1]], offsets1[b1[i] : b1[i + 1]]


#: ``_score_shard`` payload: (shard id, hit offsets0/offsets1/scores,
#: (entries, pairs, cells, hits), wall seconds, batches, max batch pairs).
ShardResult = tuple[
    int,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    tuple[int, int, int, int],
    float,
    int,
    int,
]


def _score_shard(
    shard: int,
    offsets0: np.ndarray,
    counts0: np.ndarray,
    offsets1: np.ndarray,
    counts1: np.ndarray,
) -> ShardResult:
    """Worker task: batched-score one shard against the mapped buffers."""
    t0 = time.perf_counter()
    engine = BatchedUngappedEngine(_WORKER["config"])
    hits = engine.run_stream(
        _WORKER["buf0"],
        _WORKER["buf1"],
        _entry_stream(offsets0, counts0, offsets1, counts1),
    )
    wall = time.perf_counter() - t0
    s = hits.stats
    return (
        shard,
        hits.offsets0,
        hits.offsets1,
        hits.scores,
        (s.entries, s.pairs, s.cells, s.hits),
        wall,
        engine.telemetry.batches,
        engine.telemetry.max_batch_pairs,
    )


class ShardedStep2Executor:
    """Step-2 engine fanning the batched kernel out over worker processes.

    Parameters
    ----------
    config:
        Step-2 kernel configuration (window, threshold, batch budget …).
    workers:
        Process count.  ``1`` runs the batched engine in-process (no pool,
        no shared memory); ``N > 1`` shards the key space over a
        ``ProcessPoolExecutor``.

    The merged :class:`~repro.extend.ungapped.UngappedHits` is bit-identical
    — offsets, scores and order — to the single-process batched run for any
    worker count.  :attr:`last_timings` holds one
    :class:`~repro.core.profile.ShardTiming` per shard of the latest run.
    """

    def __init__(self, config: UngappedConfig | None = None, workers: int = 1) -> None:
        self.config = config or UngappedConfig()
        self.workers = max(1, int(workers))
        #: Per-shard timings of the most recent :meth:`run`.
        self.last_timings: list[ShardTiming] = []

    def run(self, index: TwoBankIndex) -> UngappedHits:
        """Run step 2 over *index*, sharded across the configured workers."""
        n_entries = index.n_shared_keys
        if self.workers == 1 or n_entries < 2 * self.workers:
            # Pool overhead cannot pay for itself on a near-empty work list.
            return self._run_local(index)
        try:
            return self._run_pool(index)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            # Restricted environments (no /dev/shm, no forks): degrade to
            # the identical-output single-process path rather than fail.
            warnings.warn(
                f"sharded step-2 pool unavailable ({exc!r}); "
                "falling back to in-process execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return self._run_local(index)

    # ------------------------------------------------------------------
    def _run_local(self, index: TwoBankIndex) -> UngappedHits:
        t0 = time.perf_counter()
        engine = BatchedUngappedEngine(self.config)
        hits = engine.run(index)
        self.last_timings = [
            ShardTiming(
                shard=0,
                entries=hits.stats.entries,
                pairs=hits.stats.pairs,
                hits=hits.stats.hits,
                wall_seconds=time.perf_counter() - t0,
                batches=engine.telemetry.batches,
                max_batch_pairs=engine.telemetry.max_batch_pairs,
            )
        ]
        return hits

    def _run_pool(self, index: TwoBankIndex) -> UngappedHits:
        from multiprocessing import shared_memory

        # Never cut more shards than there are entries: a worker with an
        # empty range costs a process spawn and two buffer mappings for
        # zero pairs.  Empty quantile ranges (possible under extreme pair
        # skew) are likewise never submitted.
        n_shards = max(1, min(self.workers, index.n_shared_keys))
        ranges = split_entries_contiguous(index, n_shards)
        tasks = [(s, lo, hi) for s, (lo, hi) in enumerate(ranges) if hi > lo]
        if not tasks:
            return self._run_local(index)
        ctx, unregister = _pool_context()
        buf0 = index.index0.bank.buffer
        buf1 = index.index1.bank.buffer
        check_array("step-2 bank-0 buffer", buf0, _BANK_VIEW_SPEC)
        check_array("step-2 bank-1 buffer", buf1, _BANK_VIEW_SPEC)
        shm0 = shared_memory.SharedMemory(create=True, size=max(1, buf0.nbytes))
        shm1 = shared_memory.SharedMemory(create=True, size=max(1, buf1.nbytes))
        try:
            np.ndarray(buf0.shape, dtype=np.uint8, buffer=shm0.buf)[:] = buf0
            np.ndarray(buf1.shape, dtype=np.uint8, buffer=shm1.buf)[:] = buf1
            with ProcessPoolExecutor(
                max_workers=len(tasks),
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(shm0.name, buf0.shape[0], shm1.name, buf1.shape[0],
                          self.config, unregister),
            ) as pool:
                futures = [
                    pool.submit(_score_shard, s, *index.shard_arrays(lo, hi))
                    for s, lo, hi in tasks
                ]
                results = sorted((f.result() for f in futures), key=lambda r: r[0])
        finally:
            shm0.close()
            shm1.close()
            shm0.unlink()
            shm1.unlink()
        stats = UngappedStats()
        timings: list[ShardTiming] = []
        for shard, _o0, _o1, _sc, (entries, pairs, cells, hits_n), wall, batches, \
                max_batch in results:
            stats.merge(UngappedStats(entries, pairs, cells, hits_n))
            timings.append(
                ShardTiming(
                    shard=shard,
                    entries=entries,
                    pairs=pairs,
                    hits=hits_n,
                    wall_seconds=wall,
                    batches=batches,
                    max_batch_pairs=max_batch,
                )
            )
        self.last_timings = timings
        offsets0 = np.concatenate([r[1] for r in results])
        offsets1 = np.concatenate([r[2] for r in results])
        scores = np.concatenate([r[3] for r in results]).astype(np.int32)
        return UngappedHits(offsets0, offsets1, scores, stats)
