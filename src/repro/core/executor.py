"""Sharded multiprocess step-2 execution.

The paper scales step 2 by partitioning the workload across two FPGAs
driven by independent host processes (Table 3); Nguyen & Lavenier's
fine-grained parallelization generalises the same idea to N compute
units.  :class:`ShardedStep2Executor` is that architecture in software:

* the joint index's shared-key list is cut into ``workers`` contiguous,
  pair-balanced shards (:func:`~repro.core.partition.split_entries_contiguous`
  — shards ↔ FPGAs);
* the two bank buffers are published once in POSIX shared memory, so
  worker processes map them instead of unpickling per-task copies (the
  analogue of banks staged once in board SRAM);
* each worker drives the batched engine
  (:class:`~repro.extend.batched.BatchedUngappedEngine`) over its shard's
  entry lists (batch ↔ one PE-array fill);
* dispatch is supervised (:class:`~repro.core.supervisor.ShardSupervisor`):
  a crashed, hung or corrupted worker is retried on a fresh pool under a
  pair-count-derived deadline, and a shard whose retries run out is scored
  by the in-process engine — the run completes identically, just slower;
* results merge on the host **in shard order**, which — because shards
  are contiguous runs of the ascending shared-key list — reproduces the
  single-process emission order bit for bit, whatever path scored each
  shard.

Per-shard wall time, entry/pair/hit counts, batch shapes and dispatch
attempts are exposed as :class:`~repro.core.profile.ShardTiming` records,
and the supervision counters as :class:`~repro.core.profile.RunHealth`.

Deterministic fault injection (:mod:`repro.core.faults`) hooks into the
worker task: a :class:`~repro.core.faults.FaultPlan` addressed by
``(shard, attempt)`` can crash the process, stall it, truncate its result
arrays or corrupt its bank view.  Bank views are digest-checked before
every scoring pass, so corruption — injected or real — is detected and the
view re-mapped from the clean shared segment rather than silently scoring
garbage.
"""

from __future__ import annotations

import atexit
import logging
import os
import signal
import time
import warnings
from dataclasses import replace
from typing import TYPE_CHECKING, Any

import numpy as np

from ..analysis import allocsan
from ..analysis import determinism as detsan
from ..analysis.contracts import ArraySpec, check_array
from ..extend.backends import resolve_backend
from ..extend.batched import BatchedUngappedEngine, EntryBlock
from ..extend.ungapped import UngappedConfig, UngappedHits, UngappedStats
from ..index.kmer import TwoBankIndex
from ..obs import metrics as obsmetrics
from ..obs import trace as obstrace
from .faults import BankCorruption, FaultKind, FaultPlan, FaultSpec, bank_digest
from .partition import split_entries_contiguous
from .profile import RunHealth, ShardTiming
from .supervisor import DeadlineExceeded, ShardSupervisor, SupervisorConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.context import BaseContext
    from multiprocessing.shared_memory import SharedMemory

__all__ = [
    "ShardedStep2Executor",
    "live_segment_names",
    "release_all_segments",
    "install_signal_cleanup",
]

_log = logging.getLogger(__name__)

#: Per-process worker state installed by the pool initializer.
_WORKER: dict[str, Any] = {}

#: Shared-memory segments this process *created* and has not yet released,
#: keyed by segment name and stamped with the creating pid.  The per-run
#: ``try/finally`` remains the primary cleanup; this registry is the
#: backstop for long-lived processes (the serving layer) that die between
#: runs — its :func:`release_all_segments` hook runs at interpreter exit
#: and, when installed, on SIGTERM, so a killed server never leaks
#: ``/dev/shm``.  The pid stamp keeps forked pool workers (which inherit a
#: copy-on-write view of this dict and run their own atexit handlers) from
#: unlinking segments the parent still owns.
_LIVE_SEGMENTS: dict[str, tuple[int, SharedMemory]] = {}

#: Contract every shared-memory bank view must satisfy: the batched kernel
#: gathers residues straight out of these buffers, so a wrong dtype here is
#: silent score corruption in every worker.
_BANK_VIEW_SPEC = ArraySpec(dtype=np.uint8, ndim=1)


def _pool_context() -> tuple[BaseContext, bool]:
    """Multiprocessing context for the pool.

    Prefer ``fork``: workers then share the parent's resource tracker, and
    the parent's single create/unlink pair manages each segment.  Where
    fork does not exist (Windows) fall back to ``spawn``; there every
    worker runs its own tracker, whose attach-time registration must be
    undone or it unlinks the segment when the worker exits.  Returns
    ``(context, unregister_in_worker)``.
    """
    import multiprocessing as mp

    try:
        return mp.get_context("fork"), False
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn"), True


def _attach_shared(name: str, unregister: bool) -> SharedMemory:
    """Attach a shared-memory block, optionally disowning its cleanup.

    Only the parent owns the segment's lifetime; with a per-worker
    resource tracker (spawn), unregistering here stops that tracker from
    racing the parent's unlink.  Unregister failures are logged, never
    swallowed silently: a changed private API would otherwise reintroduce
    the tracker race with no trace.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if unregister:  # pragma: no cover - spawn-only path
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(
                getattr(shm, "_name", shm.name), "shared_memory"
            )
        except (AttributeError, KeyError, ValueError, OSError) as exc:
            _log.warning(
                "could not unregister shared-memory segment %s from the "
                "worker resource tracker (%r); the tracker may unlink the "
                "segment early on this platform",
                name,
                exc,
            )
    return shm


def _init_worker(
    name0: str,
    size0: int,
    name1: str,
    size1: int,
    config: UngappedConfig,
    unregister: bool,
    fault_plan: FaultPlan | None = None,
    digest0: int | None = None,
    digest1: int | None = None,
    obs_enabled: bool = False,
) -> None:
    """Pool initializer: map both bank buffers and keep the config."""
    # Shed any fork-inherited ambient tracer/registry: recordings into
    # those copy-on-write snapshots would be unreachable from the parent.
    # When observability is on, each *task* builds fresh per-process
    # buffers and ships them back through the result tuple instead.
    obstrace.reset()
    obsmetrics.reset()
    # Likewise shed the fork-inherited segment registry: these segments
    # belong to the parent, and the pid stamps alone already stop a worker
    # from unlinking them — clearing also drops the stale references.
    _LIVE_SEGMENTS.clear()
    shm0 = _attach_shared(name0, unregister)
    shm1 = _attach_shared(name1, unregister)
    _WORKER["shm"] = (shm0, shm1)  # keep alive for the process lifetime
    _WORKER["sizes"] = (size0, size1)
    buf0 = np.ndarray((size0,), dtype=np.uint8, buffer=shm0.buf)
    buf1 = np.ndarray((size1,), dtype=np.uint8, buffer=shm1.buf)
    check_array("step-2 worker bank-0 view", buf0, _BANK_VIEW_SPEC)
    check_array("step-2 worker bank-1 view", buf1, _BANK_VIEW_SPEC)
    _WORKER["buf0"] = buf0
    _WORKER["buf1"] = buf1
    _WORKER["config"] = config
    _WORKER["fault_plan"] = fault_plan
    _WORKER["obs"] = obs_enabled
    _WORKER["digests"] = (
        (digest0, digest1) if digest0 is not None and digest1 is not None else None
    )


def _verify_bank_views() -> None:
    """Digest-check both bank views; re-map and raise on corruption.

    The shared segments themselves are owned by the parent and never
    written after staging, so a digest mismatch means *this process's view*
    went bad (an injected ``CORRUPT_BANK`` fault, or real memory damage).
    The view is re-created from the clean segment so the **next** dispatch
    to this process succeeds, then the current dispatch is rejected — the
    supervisor retries it rather than accept silently-corrupt scores.
    """
    digests = _WORKER.get("digests")
    if digests is None:
        return
    shm0, shm1 = _WORKER["shm"]
    size0, size1 = _WORKER["sizes"]
    corrupt: list[str] = []
    for key, shm, size, expect in (
        ("buf0", shm0, size0, digests[0]),
        ("buf1", shm1, size1, digests[1]),
    ):
        if bank_digest(_WORKER[key]) == expect:
            continue
        fresh = np.ndarray((size,), dtype=np.uint8, buffer=shm.buf)
        if bank_digest(fresh) != expect:  # pragma: no cover - shm itself bad
            raise BankCorruption(
                f"shared bank segment behind {key} is corrupt beyond repair"
            )
        _WORKER[key] = fresh
        corrupt.append(key)
    if corrupt:
        raise BankCorruption(
            f"step-2 worker bank view(s) {', '.join(corrupt)} failed the "
            "digest check; views re-mapped from the shared segment"
        )


def _apply_worker_fault(spec: FaultSpec, shard: int) -> None:
    """Apply a pre-scoring injected fault inside the worker process."""
    if spec.kind is FaultKind.CRASH:
        # Immediate death, no cleanup — models a segfaulted worker.  The
        # parent sees BrokenProcessPool, not an exception.
        os._exit(13)
    elif spec.kind is FaultKind.HANG:
        time.sleep(spec.hang_seconds)
    elif spec.kind is FaultKind.CORRUPT_BANK:
        plan: FaultPlan = _WORKER["fault_plan"]
        bad = _WORKER["buf0"].copy()
        n = min(64, bad.shape[0])
        # XOR with odd bytes guarantees at least one flipped bit per byte,
        # so the digest check cannot coincidentally pass.
        bad[:n] ^= plan.corruption(shard, n) | np.uint8(1)
        _WORKER["buf0"] = bad  # private copy: shm stays clean for peers


#: Observability payload riding a shard result: (exported worker spans,
#: serialized worker metrics), or None when the worker was not observed.
ObsPayload = tuple[tuple[dict[str, Any], ...], dict[str, Any]]

#: ``_score_shard`` payload: (shard id, hit offsets0/offsets1/scores,
#: (entries, pairs, cells, hits), wall seconds, batches, max batch pairs,
#: obs payload).  Consumers slice (``result[:8]``) rather than unpack the
#: exact length, so the layout can keep growing at the tail.
ShardResult = tuple[
    int,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    tuple[int, int, int, int],
    float,
    int,
    int,
    Any,
]


def _package_hits(
    shard: int,
    hits: UngappedHits,
    wall: float,
    engine: BatchedUngappedEngine,
    obs_payload: Any = None,
) -> ShardResult:
    """Assemble the wire-format result tuple of one scored shard."""
    s = hits.stats
    return (
        shard,
        hits.offsets0,
        hits.offsets1,
        hits.scores,
        (s.entries, s.pairs, s.cells, s.hits),
        wall,
        engine.telemetry.batches,
        engine.telemetry.max_batch_pairs,
        obs_payload,
    )


def _score_shard(
    shard: int,
    attempt: int,
    offsets0: np.ndarray,
    counts0: np.ndarray,
    offsets1: np.ndarray,
    counts1: np.ndarray,
) -> ShardResult:
    """Worker task: batched-score one shard against the mapped buffers.

    ``attempt`` is the supervisor's dispatch counter for this shard; it
    exists so an injected :class:`~repro.core.faults.FaultPlan` can address
    "shard 2, first attempt" deterministically regardless of which process
    picks the task up.

    When the parent enabled observability, the shard is scored inside a
    fresh per-process tracer/registry whose contents ride back in the
    result tuple — the parent adopts the spans under its shard span and
    merges the metrics (worker ``perf_counter`` readings are meaningless
    in the parent, so spans are rebased there, not here).
    """
    t0 = obstrace.clock()
    plan: FaultPlan | None = _WORKER.get("fault_plan")
    spec = plan.worker_fault(shard, attempt) if plan is not None else None
    if spec is not None:
        _apply_worker_fault(spec, shard)
    _verify_bank_views()

    def scored() -> tuple[BatchedUngappedEngine, UngappedHits]:
        # The config rode the pool initargs with its backend name already
        # resolved to a concrete registry key by the parent, so every
        # worker honors the parent's backend choice.
        scorer = BatchedUngappedEngine(_WORKER["config"])
        return scorer, scorer.run_stream(
            _WORKER["buf0"],
            _WORKER["buf1"],
            EntryBlock(offsets0, counts0, offsets1, counts1),
        )

    obs_payload: ObsPayload | None = None
    if _WORKER.get("obs"):
        tracer = obstrace.Tracer()
        registry = obsmetrics.MetricsRegistry()
        with obstrace.activate(tracer), obsmetrics.activate(registry):
            with obstrace.span(
                "step2.worker", shard=shard, attempt=attempt, pid=os.getpid()
            ):
                engine, hits = scored()
        obs_payload = (tuple(tracer.export()), registry.to_dict())
    else:
        engine, hits = scored()
    wall = obstrace.clock() - t0
    result = _package_hits(shard, hits, wall, engine, obs_payload)
    if spec is not None and spec.kind is FaultKind.TRUNCATE:
        drop = max(1, int(spec.drop))
        # Short result arrays against untruncated stats: the supervisor's
        # validation must catch this, never the merge.
        result = result[:1] + tuple(a[:-drop] for a in result[1:4]) + result[4:]
    return result


def _score_shard_local(
    config: UngappedConfig,
    buf0: np.ndarray,
    buf1: np.ndarray,
    shard: int,
    payload: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> ShardResult:
    """In-process scorer used for the supervisor's last-resort fallback.

    Runs the identical batched engine over the identical payload against
    the parent's own (never-shared) bank buffers, so its result is
    bit-identical to what a healthy worker would have returned.  Runs in
    the parent, where the ambient tracer/registry (if any) are live — the
    worker span is recorded directly, no result-channel payload needed.
    """
    t0 = obstrace.clock()
    engine = BatchedUngappedEngine(config)
    with obstrace.span("step2.worker", shard=shard, via="local"):
        hits = engine.run_stream(buf0, buf1, EntryBlock(*payload))
    return _package_hits(shard, hits, obstrace.clock() - t0, engine)


def _publish_shard_metrics(
    registry: obsmetrics.MetricsRegistry,
    pairs: int,
    cells: int,
    hits_n: int,
    wall: float,
    retry_wall: float = 0.0,
) -> None:
    """Fold one accepted shard into the step-2 metric families."""
    registry.counter("step2_pairs_total").inc(pairs)
    registry.counter("step2_cells_total").inc(cells)
    registry.counter("step2_hits_total").inc(hits_n)
    registry.counter("step2_shard_wall_seconds_total").inc(wall)
    registry.histogram("step2_shard_pairs").observe(pairs)
    if retry_wall > 0:
        registry.counter("step2_retry_wall_seconds_total").inc(retry_wall)


def _publish_health_metrics(
    registry: obsmetrics.MetricsRegistry, health: RunHealth
) -> None:
    """Expose the supervision counters as one labelled counter family.

    Every kind is published (zeros included) so a fault-free run exposes
    the same series set as a faulty one — dashboards and diffs never have
    to special-case missing series.
    """
    for kind, value in (
        ("retries", health.retries),
        ("timeouts", health.timeouts),
        ("crashes", health.crashes),
        ("truncated", health.truncated),
        ("corrupt", health.corrupt),
        ("pool_rebuilds", health.pool_rebuilds),
        ("fallback_shards", health.fallback_shards),
        ("cancelled", health.cancelled),
        ("small_workload_fallbacks", health.small_workload_fallbacks),
    ):
        registry.counter("step2_supervisor_events_total", kind=kind).inc(value)


def _track_segment(shm: SharedMemory) -> None:
    """Record a freshly created segment for exit-time cleanup."""
    _LIVE_SEGMENTS[shm.name] = (os.getpid(), shm)


def live_segment_names() -> tuple[str, ...]:
    """Names of the shared-memory segments this process currently owns.

    Empty outside an active sharded run — the serving layer's leak checks
    (and the ``serve-chaos`` CI job) assert exactly that after a drain.
    """
    pid = os.getpid()
    return tuple(
        sorted(n for n, (owner, _) in _LIVE_SEGMENTS.items() if owner == pid)
    )


def release_all_segments() -> None:
    """Release every tracked segment owned by this process.

    Registered with :mod:`atexit` at import and chained onto SIGTERM by
    :func:`install_signal_cleanup`.  Idempotent — the per-run
    ``try/finally`` in :meth:`ShardedStep2Executor._run_pool` untracks
    segments as it releases them, so on a clean run this finds nothing.
    Never raises: it runs on the way down, where a cleanup error must not
    mask the original exit reason.
    """
    pid = os.getpid()
    for name, (owner, shm) in list(_LIVE_SEGMENTS.items()):
        if owner != pid:
            continue
        _LIVE_SEGMENTS.pop(name, None)
        try:
            _release_segment(shm)
        except OSError as exc:
            _log.warning(
                "exit-time shared-memory cleanup failed for %s: %r", name, exc
            )


def install_signal_cleanup(
    signums: tuple[int, ...] = (signal.SIGTERM,),
) -> None:
    """Chain shared-memory cleanup onto termination signals.

    For each signal the previous disposition is preserved: a callable
    handler runs after the cleanup; ``SIG_DFL``/``SIG_IGN`` are restored
    and the signal re-raised so the process still dies with the correct
    wait status.  Long-lived hosts (``repro-serve``) call this once at
    startup; one-shot CLI runs rely on the per-run ``finally`` plus the
    atexit hook instead.
    """
    for signum in signums:
        previous = signal.getsignal(signum)

        def _handler(
            num: int, frame: Any, _previous: Any = previous
        ) -> None:
            # RC302 wants handlers that only set a flag; this one really
            # does work, deliberately: SIGTERM is the *last* chance to
            # unlink shared-memory segments, and every call below is
            # reentrancy-tolerant (dict.pop + close/unlink, both
            # idempotent).  Chaining the previous handler is likewise the
            # documented contract of install_signal_cleanup.
            release_all_segments()  # noqa: RC302
            if callable(_previous):
                _previous(num, frame)  # noqa: RC302
            else:
                signal.signal(num, signal.SIG_DFL)
                os.kill(os.getpid(), num)

        signal.signal(signum, _handler)


atexit.register(release_all_segments)


def _release_segment(shm: SharedMemory) -> None:
    """Close and unlink one shared-memory segment.

    ``close`` and ``unlink`` are chained in a ``try/finally`` so a failing
    close can never leak the underlying segment — unlink always runs, and
    the segment leaves the exit-time registry either way.
    """
    _LIVE_SEGMENTS.pop(shm.name, None)
    try:
        shm.close()
    finally:
        shm.unlink()


def _release_segments(segments: list[SharedMemory]) -> None:
    """Release every segment independently.

    One segment's cleanup failure must not skip the others (the historical
    bug: ``shm0.close()`` raising leaked ``shm1`` entirely).  The first
    failure is re-raised after all segments were attempted.
    """
    first: BaseException | None = None
    for shm in segments:
        try:
            _release_segment(shm)
        except BaseException as exc:  # noqa: BLE001 - must try every segment
            _log.warning("shared-memory cleanup failed for %s: %r", shm.name, exc)
            if first is None:
                first = exc
    if first is not None:
        raise first


class ShardedStep2Executor:
    """Step-2 engine fanning the batched kernel out over worker processes.

    Parameters
    ----------
    config:
        Step-2 kernel configuration (window, threshold, batch budget …).
    workers:
        Process count.  ``1`` runs the batched engine in-process (no pool,
        no shared memory); ``N > 1`` shards the key space over a
        supervised ``ProcessPoolExecutor``.
    supervisor:
        Retry/timeout policy (:class:`~repro.core.supervisor.SupervisorConfig`);
        defaults to pair-count-derived deadlines with 2 retries.
    fault_plan:
        Optional deterministic fault injection
        (:class:`~repro.core.faults.FaultPlan`) applied inside the worker
        tasks — the chaos-testing hook.
    min_pairs_per_shard:
        Pair-count floor below which a multi-worker run scores in-process
        instead of paying pool spawn + shared-memory staging (on small
        workloads those fixed costs exceed the scoring itself, making 2
        workers *slower* than 1).  ``0`` disables the heuristic.  The
        decision is recorded as ``RunHealth.small_workload_fallbacks`` and
        the matching supervisor-event metric.

    The configured backend name (``config.backend``, possibly ``"auto"``)
    is resolved once, eagerly, at construction: an unknown or unavailable
    backend fails here rather than inside a worker, and the concrete
    registry name then rides the pool initargs so workers honor the
    parent's choice instead of re-running ``"auto"`` selection.

    The merged :class:`~repro.extend.ungapped.UngappedHits` is bit-identical
    — offsets, scores and order — to the single-process batched run for any
    worker count, any supervised retry and any injected fault.
    :attr:`last_timings` holds one :class:`~repro.core.profile.ShardTiming`
    per shard of the latest run; :attr:`last_health` its
    :class:`~repro.core.profile.RunHealth` counters.
    """

    def __init__(
        self,
        config: UngappedConfig | None = None,
        workers: int = 1,
        supervisor: SupervisorConfig | None = None,
        fault_plan: FaultPlan | None = None,
        min_pairs_per_shard: int = 1 << 18,
    ) -> None:
        config = config or UngappedConfig()
        resolved = resolve_backend(config.backend, config)
        if config.backend != resolved.info.name:
            config = replace(config, backend=resolved.info.name)
        self.config = config
        self.workers = max(1, int(workers))
        self.supervisor = supervisor or SupervisorConfig()
        self.fault_plan = fault_plan
        self.min_pairs_per_shard = max(0, int(min_pairs_per_shard))
        #: Per-shard timings of the most recent :meth:`run`.
        self.last_timings: list[ShardTiming] = []
        #: Supervision counters of the most recent :meth:`run`.
        self.last_health: RunHealth = RunHealth()

    def run(self, index: TwoBankIndex) -> UngappedHits:
        """Run step 2 over *index*, sharded across the configured workers."""
        n_entries = index.n_shared_keys
        if self.workers == 1 or n_entries < 2 * self.workers:
            # Pool overhead cannot pay for itself on a near-empty work list.
            return self._run_local(index)
        if self.min_pairs_per_shard > 0:
            n_shards = max(1, min(self.workers, n_entries))
            if index.total_pairs < n_shards * self.min_pairs_per_shard:
                # Too few pairs per shard for pool spawn + shared-memory
                # staging to pay for itself (the BENCH_step2 2-worker
                # regression): score in-process and record the decision.
                return self._run_local(index, small_workload=True)
        try:
            return self._run_pool(index)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            # Restricted environments (no /dev/shm, no forks): degrade to
            # the identical-output single-process path rather than fail.
            warnings.warn(
                f"sharded step-2 pool unavailable ({exc!r}); "
                "falling back to in-process execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return self._run_local(index)

    # ------------------------------------------------------------------
    def _run_local(
        self, index: TwoBankIndex, small_workload: bool = False
    ) -> UngappedHits:
        t0 = obstrace.clock()
        engine = BatchedUngappedEngine(self.config)
        with obstrace.span("step2.shard", shard=0, via="local"):
            hits = engine.run(index)
        wall = obstrace.clock() - t0
        self.last_health = RunHealth(
            shards=1, small_workload_fallbacks=1 if small_workload else 0
        )
        registry = obsmetrics.active()
        if registry is not None:
            _publish_shard_metrics(
                registry, hits.stats.pairs, hits.stats.cells, hits.stats.hits, wall
            )
            if small_workload:
                # Surface the sizing decision in the same event family the
                # supervisor uses, so dashboards see why no pool ran.
                _publish_health_metrics(registry, self.last_health)
        self.last_timings = [
            ShardTiming(
                shard=0,
                entries=hits.stats.entries,
                pairs=hits.stats.pairs,
                hits=hits.stats.hits,
                wall_seconds=wall,
                batches=engine.telemetry.batches,
                max_batch_pairs=engine.telemetry.max_batch_pairs,
                attempts=1,
                via="local",
                backend=engine.telemetry.backend or self.config.backend,
            )
        ]
        if detsan.active() is not None:
            detsan.record_detail(
                "shard",
                shard=0,
                via="local",
                attempts=1,
                hits=hits.stats.hits,
                digest=detsan.shard_digest(
                    [hits.offsets0, hits.offsets1, hits.scores]
                ),
            )
        return hits

    def _run_pool(self, index: TwoBankIndex) -> UngappedHits:
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import shared_memory

        # Never cut more shards than there are entries: a worker with an
        # empty range costs a process spawn and two buffer mappings for
        # zero pairs.  Empty quantile ranges (possible under extreme pair
        # skew) are likewise never submitted.
        n_shards = max(1, min(self.workers, index.n_shared_keys))
        ranges = split_entries_contiguous(index, n_shards)
        tasks = [(s, lo, hi) for s, (lo, hi) in enumerate(ranges) if hi > lo]
        if not tasks:
            return self._run_local(index)
        ctx, unregister = _pool_context()
        buf0 = index.index0.bank.buffer
        buf1 = index.index1.bank.buffer
        check_array("step-2 bank-0 buffer", buf0, _BANK_VIEW_SPEC)
        check_array("step-2 bank-1 buffer", buf1, _BANK_VIEW_SPEC)
        counts = index.pair_counts()
        payloads = {s: index.shard_arrays(lo, hi) for s, lo, hi in tasks}
        pair_counts = {s: int(counts[lo:hi].sum()) for s, lo, hi in tasks}
        digest0 = bank_digest(buf0)
        digest1 = bank_digest(buf1)
        segments: list[SharedMemory] = []
        try:
            shm0 = shared_memory.SharedMemory(create=True, size=max(1, buf0.nbytes))
            segments.append(shm0)
            _track_segment(shm0)
            shm1 = shared_memory.SharedMemory(create=True, size=max(1, buf1.nbytes))
            segments.append(shm1)
            _track_segment(shm1)
            np.ndarray(buf0.shape, dtype=np.uint8, buffer=shm0.buf)[:] = buf0
            np.ndarray(buf1.shape, dtype=np.uint8, buffer=shm1.buf)[:] = buf1

            obs_enabled = (
                obstrace.active() is not None or obsmetrics.active() is not None
            )

            def make_pool() -> ProcessPoolExecutor:
                return ProcessPoolExecutor(
                    max_workers=len(tasks),
                    mp_context=ctx,
                    initializer=_init_worker,
                    initargs=(
                        shm0.name, buf0.shape[0], shm1.name, buf1.shape[0],
                        self.config, unregister, self.fault_plan,
                        digest0, digest1, obs_enabled,
                    ),
                )

            def local_score(shard: int) -> ShardResult:
                return _score_shard_local(
                    self.config, buf0, buf1, shard, payloads[shard]
                )

            outcomes, health = ShardSupervisor(
                self.supervisor, make_pool, _score_shard, local_score
            ).run(payloads, pair_counts)
        except DeadlineExceeded as exc:
            # The request-level deadline fired: record what the partial run
            # cost (cancellations included) before the error propagates —
            # the segments release in the finally either way.
            self.last_health = exc.health
            self.last_timings = []
            registry = obsmetrics.active()
            if registry is not None:
                _publish_health_metrics(registry, exc.health)
            raise
        finally:
            _release_segments(segments)
        self.last_health = health
        tracer = obstrace.active()
        registry = obsmetrics.active()
        if registry is not None:
            _publish_health_metrics(registry, health)
        stats = UngappedStats()
        timings: list[ShardTiming] = []
        results: list[ShardResult] = []
        for outcome in outcomes:
            # Slice, never exact-unpack: the tuple grows at the tail (the
            # obs payload today) without every consumer changing shape.
            shard, _o0, _o1, _sc, (entries, pairs, cells, hits_n), wall, \
                batches, max_batch = outcome.result[:8]
            obs_payload = outcome.result[8] if len(outcome.result) > 8 else None
            results.append(outcome.result)
            if detsan.active() is not None:
                # Per-shard digests are diagnostics (shard counts differ
                # across worker counts), recorded as non-compared detail.
                detsan.record_detail(
                    "shard",
                    shard=shard,
                    via=outcome.via,
                    attempts=outcome.attempts,
                    hits=hits_n,
                    digest=detsan.shard_digest([_o0, _o1, _sc]),
                )
            if tracer is not None:
                # Retrospective shard span: the remote wall is known, the
                # merge happens immediately after completion, so backdate
                # the span to end now.  Worker spans reparent under it with
                # their timeline rebased onto this span's start (worker
                # perf_counter origins are per-process).
                request_attrs = (
                    {"request_id": self.supervisor.request_id}
                    if self.supervisor.request_id is not None
                    else {}
                )
                shard_span = tracer.record(
                    "step2.shard",
                    wall,
                    shard=shard,
                    via=outcome.via,
                    attempts=outcome.attempts,
                    pairs=pairs,
                    hits=hits_n,
                    retry_wall_seconds=outcome.retry_wall_seconds,
                    **request_attrs,
                )
                if obs_payload is not None and obs_payload[0]:
                    worker_spans = obs_payload[0]
                    tracer.adopt(
                        worker_spans,
                        shard_span.span_id,
                        rebase=(worker_spans[0]["start"], shard_span.start),
                    )
            if registry is not None:
                if obs_payload is not None:
                    registry.merge(obs_payload[1])
                _publish_shard_metrics(
                    registry, pairs, cells, hits_n, wall,
                    retry_wall=outcome.retry_wall_seconds,
                )
            stats.merge(UngappedStats(entries, pairs, cells, hits_n))
            timings.append(
                ShardTiming(
                    shard=shard,
                    entries=entries,
                    pairs=pairs,
                    hits=hits_n,
                    wall_seconds=wall,
                    batches=batches,
                    max_batch_pairs=max_batch,
                    attempts=outcome.attempts,
                    via=outcome.via,
                    retry_wall_seconds=outcome.retry_wall_seconds,
                    backend=self.config.backend,
                )
            )
        self.last_timings = timings
        with allocsan.measure("step2.merge"):
            offsets0 = np.concatenate([r[1] for r in results])
            offsets1 = np.concatenate([r[2] for r in results])
            scores = np.concatenate([r[3] for r in results]).astype(np.int32)
        return UngappedHits(offsets0, offsets1, scores, stats)
