"""Fault-tolerant supervision of the sharded step-2 pool.

The paper's host process drives two FPGAs and assumes both always answer; a
production cluster host supervises its blades instead: detect a dead or
stalled unit, re-dispatch its workload, degrade to a slower path when the
unit never recovers, and report what happened.  :class:`ShardSupervisor`
is that state machine for :class:`~repro.core.executor.ShardedStep2Executor`:

::

    PENDING ──dispatch──> RUNNING ──valid result──> DONE (via="pool")
       ^                     │
       │        timeout / crash / truncated / corrupt
       │                     │
       └──── backoff, retry (≤ max_retries; fresh pool if the old
             one is broken or holds a hung worker) ──┘
                             │
                   retries exhausted
                             v
             in-process engine  ──> DONE (via="local")

Because every shard's accepted result is produced by the same deterministic
batched engine over the same payload, the merged
:class:`~repro.extend.ungapped.UngappedHits` is bit-identical to the
fault-free run no matter which path completed each shard — the supervisor
changes *when and where* a shard is scored, never *what* it returns.

Per-shard deadlines default to a pair-count-derived budget
(:meth:`SupervisorConfig.deadline_for`), so a shard carrying 100× the pairs
gets 100× the compute allowance before it is declared hung.
"""

from __future__ import annotations

import concurrent.futures as cf
import logging
import time
from collections.abc import Callable, Mapping
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..analysis import determinism as detsan
from ..obs import trace
from .faults import BankCorruption
from .profile import RunHealth

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import ProcessPoolExecutor

__all__ = [
    "SupervisorConfig",
    "ShardOutcome",
    "ShardSupervisor",
    "DeadlineExceeded",
]

_log = logging.getLogger(__name__)

#: A worker task result as returned by ``executor._score_shard`` (opaque to
#: the supervisor beyond validation).
ShardResult = tuple[Any, ...]

#: ``(shard, attempt, ...payload) -> ShardResult`` task submitted to the pool.
TaskFn = Callable[..., ShardResult]


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy knobs (the CLI's ``--shard-timeout``/``--max-retries``).

    Attributes
    ----------
    shard_timeout:
        Explicit per-shard deadline in seconds; ``None`` derives one from
        the shard's pair count (``min_timeout + pairs * seconds_per_pair``).
    max_retries:
        Re-dispatches allowed per shard after its first attempt; once
        exhausted the shard is scored by the in-process engine.
    backoff_base, backoff_factor:
        Exponential backoff between dispatch rounds:
        ``backoff_base * backoff_factor ** (round - 1)`` seconds.
    min_timeout, seconds_per_pair:
        Parameters of the derived deadline.  The defaults are deliberately
        generous (~20k pairs/s floor) so loaded CI machines do not trip
        false timeouts; tighten ``shard_timeout`` explicitly for chaos runs.
    deadline:
        Absolute run-level deadline on the :func:`repro.obs.trace.clock`
        timeline (``None`` = unbounded).  Unlike ``shard_timeout`` — which
        bounds one *dispatch* and triggers a retry — crossing ``deadline``
        abandons the whole run: remaining shard work is cancelled, hung
        workers are terminated rather than orphaned, and
        :class:`DeadlineExceeded` is raised.  This is the hook the serving
        layer uses to plumb a request's deadline down to shard granularity.
    request_id:
        Identity of the originating request, when the serving layer is
        driving this run.  Purely observational: retry/fallback/cancel
        events and detsan fallback details carry it so a supervision
        incident three layers down joins the request that paid for it.
    """

    shard_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    min_timeout: float = 10.0
    seconds_per_pair: float = 5e-5
    deadline: float | None = None
    request_id: str | None = None

    def __post_init__(self) -> None:
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def deadline_for(self, pairs: int) -> float:
        """Seconds one dispatch of a shard with *pairs* pairs may take."""
        if self.shard_timeout is not None:
            return self.shard_timeout
        return self.min_timeout + pairs * self.seconds_per_pair

    def backoff(self, round_index: int) -> float:
        """Sleep before retry round *round_index* (1-based)."""
        return self.backoff_base * self.backoff_factor ** max(0, round_index - 1)


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's accepted result plus how it was obtained."""

    shard: int
    result: ShardResult
    attempts: int
    via: str  # "pool" | "local"
    #: Wall seconds consumed by this shard's abandoned dispatches before
    #: the accepted one (0.0 on a first-try success).
    retry_wall_seconds: float = 0.0


class DeadlineExceeded(RuntimeError):
    """A run-level deadline expired before every shard completed.

    Raised by :meth:`ShardSupervisor.run` when
    :attr:`SupervisorConfig.deadline` passes.  Carries the run's
    :class:`~repro.core.profile.RunHealth` (with
    :attr:`~repro.core.profile.RunHealth.cancelled` covering every
    abandoned shard exactly once — cancellation never double-counts as a
    timeout or crash for the dispatch it interrupted) and the cancelled
    shard ids, so callers can account for the partial run they paid for.
    """

    def __init__(
        self, message: str, health: RunHealth, cancelled_shards: tuple[int, ...]
    ) -> None:
        super().__init__(message)
        self.health = health
        self.cancelled_shards = cancelled_shards


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when workers are hung.

    ``shutdown(wait=True)`` would block behind a sleeping/stuck worker, so
    the shutdown is issued without waiting and surviving worker processes
    are terminated explicitly.  ``_processes`` is an internal attribute but
    stable across CPython 3.8+; when absent the shutdown alone must do.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            proc.kill()


def _validate_result(result: ShardResult) -> bool:
    """Check a worker result's hit arrays agree with its reported stats.

    The result layout is ``(shard, offsets0, offsets1, scores,
    (entries, pairs, cells, hits), ...)``; a truncated readback shows up as
    arrays shorter than the stats' hit count.
    """
    try:
        _, offsets0, offsets1, scores, counters = result[:5]
        hits = int(counters[3])
    except (TypeError, ValueError, IndexError):
        return False
    return (
        offsets0.shape[0] == hits
        and offsets1.shape[0] == hits
        and scores.shape[0] == hits
    )


class ShardSupervisor:
    """Dispatch shards to a worker pool with retry, timeout and fallback.

    Parameters
    ----------
    config:
        Supervision policy.
    make_pool:
        Zero-argument factory building a fresh initialised pool; called for
        the first round and again whenever the previous pool is broken or
        was torn down around a hung worker.
    task:
        The pool task; invoked as ``task(shard, attempt, *payload)``.
    local_score:
        Last-resort scorer: ``local_score(shard) -> ShardResult`` computed
        in-process (must be bit-identical to the pool result; it is — both
        run the same batched engine over the same payload).
    initial_pool:
        An already-initialised pool to use for the first round instead of
        calling *make_pool* (the warm-serving path).  When it dies or hangs
        it is torn down and *make_pool* takes over — that first fresh build
        counts as a ``pool_rebuild`` because warm state was lost.
    keep_pool:
        When true the surviving pool is *not* shut down after the run; it
        is published on :attr:`final_pool` (``None`` if the run consumed or
        killed it) for the caller to reuse on the next request.
    """

    def __init__(
        self,
        config: SupervisorConfig,
        make_pool: Callable[[], ProcessPoolExecutor],
        task: TaskFn,
        local_score: Callable[[int], ShardResult],
        *,
        initial_pool: ProcessPoolExecutor | None = None,
        keep_pool: bool = False,
    ) -> None:
        self.config = config
        self._make_pool = make_pool
        self._task = task
        self._local_score = local_score
        self._initial_pool = initial_pool
        self._keep_pool = keep_pool
        #: Extra attributes stamped on every supervision event so a retry
        #: or fallback recorded here joins the serving request it belongs
        #: to (empty when no request identity was configured).
        self._event_attrs: dict[str, Any] = (
            {"request_id": config.request_id}
            if config.request_id is not None
            else {}
        )
        #: After :meth:`run` with ``keep_pool=True``: the still-usable pool,
        #: or ``None`` when every pool the run touched was torn down.
        self.final_pool: ProcessPoolExecutor | None = None

    def _remaining(self) -> float | None:
        """Seconds left until the run deadline (``None`` = unbounded)."""
        if self.config.deadline is None:
            return None
        return self.config.deadline - trace.clock()

    def run(
        self,
        payloads: Mapping[int, tuple[Any, ...]],
        pair_counts: Mapping[int, int],
    ) -> tuple[list[ShardOutcome], RunHealth]:
        """Supervise all shards to completion.

        Returns the outcomes sorted by shard id (the merge order) and the
        run's health counters.  Never raises for worker-side failures; pool
        *construction* errors propagate to the caller's own fallback, and a
        crossed :attr:`SupervisorConfig.deadline` raises
        :class:`DeadlineExceeded` after cancelling the remaining shards.
        """
        health = RunHealth(shards=len(payloads))
        outcomes: dict[int, ShardOutcome] = {}
        attempts: dict[int, int] = dict.fromkeys(payloads, 0)
        #: Wall seconds burned by each shard's abandoned dispatches — the
        #: time the retry/fallback machinery costs, which per-shard
        #: ``wall_seconds`` (accepted attempt only) cannot see.
        lost: dict[int, float] = dict.fromkeys(payloads, 0.0)
        pending = sorted(payloads)
        pool: ProcessPoolExecutor | None = self._initial_pool
        warm_start = pool is not None
        self._initial_pool = None
        self.final_pool = None
        round_index = 0
        try:
            while pending and round_index <= self.config.max_retries:
                if round_index > 0:
                    remaining = self._remaining()
                    backoff = self.config.backoff(round_index)
                    if remaining is not None:
                        backoff = min(backoff, max(0.0, remaining))
                    time.sleep(backoff)
                if self._deadline_expired():
                    self._cancel(pending, health)
                if round_index > 0:
                    health.retries += len(pending)
                if pool is None:
                    pool = self._make_pool()
                    # A fresh build replacing warm state is a rebuild even
                    # on round 0 — the warm pool this run was handed died.
                    if round_index > 0 or warm_start:
                        health.pool_rebuilds += 1
                pending, pool, deadline_hit = self._run_round(
                    pool, pending, payloads, pair_counts, attempts, outcomes,
                    health, lost,
                )
                if deadline_hit:
                    self._cancel(pending, health, already_counted=True)
                round_index += 1
            for index, shard in enumerate(pending):
                if self._deadline_expired():
                    self._cancel(pending[index:], health)
                # Retries exhausted: complete the run with the
                # identical-output in-process engine rather than fail the
                # whole step.
                _log.warning(
                    "shard %d failed %d dispatch(es); scoring in-process",
                    shard,
                    attempts[shard],
                )
                trace.add_event(
                    "step2.fallback",
                    shard=shard,
                    attempts=attempts[shard] + 1,
                    **self._event_attrs,
                )
                outcomes[shard] = ShardOutcome(
                    shard=shard,
                    result=self._local_score(shard),
                    attempts=attempts[shard] + 1,
                    via="local",
                    retry_wall_seconds=lost[shard],
                )
                health.fallback_shards += 1
                # Detsan detail: the fallback path must be visible in the
                # manifest, since it is exactly the path most likely to
                # diverge if the local engine ever stopped matching the
                # pool engine.
                detsan.record_detail(
                    "supervisor.fallback",
                    shard=shard,
                    attempts=attempts[shard] + 1,
                    **self._event_attrs,
                )
        finally:
            if self._keep_pool:
                self.final_pool = pool
            elif pool is not None:
                _stop_pool(pool)
        return [outcomes[s] for s in sorted(outcomes)], health

    def _deadline_expired(self) -> bool:
        remaining = self._remaining()
        return remaining is not None and remaining <= 0

    def _cancel(
        self,
        shards: list[int],
        health: RunHealth,
        already_counted: bool = False,
    ) -> None:
        """Abandon *shards* at the run deadline and raise.

        ``already_counted`` skips the counter bump when the caller (the
        mid-wait path in :meth:`_run_round`) classified the shards itself —
        each cancelled shard lands in ``health.cancelled`` exactly once and
        never also in ``timeouts``/``crashes`` for the dispatch it cut off.
        """
        if not already_counted:
            health.cancelled += len(shards)
        trace.add_event("step2.cancelled", shards=len(shards), **self._event_attrs)
        _log.warning(
            "run deadline expired; cancelling %d remaining shard(s): %s",
            len(shards),
            shards,
        )
        raise DeadlineExceeded(
            f"run deadline expired with {len(shards)} shard(s) unfinished",
            health,
            tuple(shards),
        )

    # ------------------------------------------------------------------
    def _run_round(
        self,
        pool: ProcessPoolExecutor,
        pending: list[int],
        payloads: Mapping[int, tuple[Any, ...]],
        pair_counts: Mapping[int, int],
        attempts: dict[int, int],
        outcomes: dict[int, ShardOutcome],
        health: RunHealth,
        lost: dict[int, float],
    ) -> tuple[list[int], ProcessPoolExecutor | None, bool]:
        """Dispatch *pending* once.

        Returns ``(still-pending, usable pool, deadline_hit)``.  When the
        run deadline expires mid-wait the current and every uncollected
        shard are counted as ``cancelled`` (never as timeouts), their
        futures cancelled, the pool torn down so no orphaned worker keeps
        computing for a dead request, and ``deadline_hit`` comes back true.
        """
        futures: dict[int, cf.Future[ShardResult]] = {}
        try:
            for shard in pending:
                futures[shard] = pool.submit(
                    self._task, shard, attempts[shard], *payloads[shard]
                )
        except (BrokenProcessPool, RuntimeError) as exc:
            # Initializer death or a pool broken before/while submitting:
            # everything not submitted counts as one crashed dispatch.
            _log.warning("step-2 pool unusable at submit (%r); rebuilding", exc)
            health.crashes += len(pending) - len(futures)
            # One round-level retry event for the broken pool (the
            # per-shard ``abandon`` path never ran for these dispatches —
            # without this, a submit-time pool death is invisible on the
            # request's span tree).
            trace.add_event(
                "step2.retry",
                reason="pool-broken",
                shards=len(pending) - len(futures),
                **self._event_attrs,
            )
        submit_t = trace.clock()
        run_deadline = self.config.deadline
        deadlines = {
            shard: submit_t + self.config.deadline_for(pair_counts.get(shard, 0))
            for shard in futures
        }

        def abandon(shard: int, reason: str, until: float | None = None) -> None:
            # Charge the abandoned dispatch's wall from submission to the
            # moment it was given up on (its deadline, for timeouts).
            lost[shard] += (trace.clock() if until is None else until) - submit_t
            trace.add_event(
                "step2.retry",
                shard=shard,
                reason=reason,
                attempt=attempts[shard],
                **self._event_attrs,
            )

        failed: list[int] = [s for s in pending if s not in futures]
        pool_dead = len(failed) > 0
        collected = list(futures.items())
        for index, (shard, future) in enumerate(collected):
            attempts[shard] += 1
            remaining = deadlines[shard] - trace.clock()
            if run_deadline is not None:
                remaining = min(remaining, run_deadline - trace.clock())
            try:
                result = future.result(timeout=max(0.0, remaining))
            except cf.TimeoutError:
                if run_deadline is not None and trace.clock() >= run_deadline:
                    # Request-level cancellation, not a shard fault: this
                    # dispatch and every uncollected one count *only* as
                    # cancelled, and the pool is killed so no worker keeps
                    # burning CPU for a request nobody is waiting on.
                    cancelled = [shard]
                    for later_shard, later_future in collected[index + 1 :]:
                        later_future.cancel()
                        cancelled.append(later_shard)
                    # Shards that failed at submit ride back in the same
                    # deadline return: the deadline cancels their retry,
                    # so they land in health.cancelled too (their
                    # submit-time crash was a separate dispatch) — run()
                    # re-raises with already_counted=True.
                    health.cancelled += len(failed) + len(cancelled)
                    _stop_pool(pool)
                    return sorted(failed + cancelled), None, True
                _log.warning(
                    "shard %d exceeded its %.2fs deadline (attempt %d)",
                    shard, deadlines[shard] - submit_t, attempts[shard],
                )
                health.timeouts += 1
                abandon(shard, "timeout", until=deadlines[shard])
                failed.append(shard)
                pool_dead = True  # a hung worker poisons the pool
                continue
            except BrokenProcessPool as exc:
                _log.warning("shard %d lost to broken pool: %r", shard, exc)
                health.crashes += 1
                abandon(shard, "crash")
                failed.append(shard)
                pool_dead = True
                continue
            except BankCorruption as exc:
                _log.warning("shard %d rejected: %s", shard, exc)
                health.corrupt += 1
                abandon(shard, "corrupt")
                failed.append(shard)
                continue
            except Exception as exc:  # noqa: BLE001 - any worker error retries
                _log.warning("shard %d raised %r (attempt %d)",
                             shard, exc, attempts[shard])
                health.crashes += 1
                abandon(shard, "error")
                failed.append(shard)
                continue
            if not _validate_result(result):
                _log.warning(
                    "shard %d returned truncated/inconsistent hit arrays "
                    "(attempt %d)", shard, attempts[shard],
                )
                health.truncated += 1
                abandon(shard, "truncated")
                failed.append(shard)
                continue
            outcomes[shard] = ShardOutcome(
                shard=shard, result=result, attempts=attempts[shard],
                via="pool", retry_wall_seconds=lost[shard],
            )
        if pool_dead:
            _stop_pool(pool)
            return sorted(failed), None, False
        return sorted(failed), pool, False
