"""Per-step instrumentation.

Every performance table in the paper is a statement about *where time goes*
(Tables 1 and 7) or *how long a step takes* (Tables 2–4).  The pipeline
therefore records, for each of the three steps, both wall-clock seconds of
this Python implementation **and** platform-independent operation counts.
The cost models in :mod:`repro.rasc.host` translate counts into modelled
Itanium2/RASC-100 seconds; wall-clock is reported alongside for honesty.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["StepCounters", "ShardTiming", "RunHealth", "PipelineProfile"]


@dataclass
class StepCounters:
    """Counts and wall time for one pipeline step."""

    wall_seconds: float = 0.0
    #: Step-specific primary operation count:
    #: step 1 — residues indexed; step 2 — window cells scored;
    #: step 3 — DP cells computed.
    operations: int = 0
    #: Items processed (sequences, pairs, extensions).
    items: int = 0

    def merge(self, other: StepCounters) -> None:
        """Accumulate another step's counters."""
        self.wall_seconds += other.wall_seconds
        self.operations += other.operations
        self.items += other.items


@dataclass(frozen=True)
class ShardTiming:
    """Step-2 record of one executor shard (sharding ↔ the paper's FPGAs).

    One is recorded per shard per run even in single-process mode, so
    Table-7-style breakdowns can always decompose step 2 into its units of
    parallel work and their batch shapes.
    """

    shard: int
    entries: int
    pairs: int
    hits: int
    wall_seconds: float
    #: Kernel invocations and largest single batch within this shard.
    batches: int
    max_batch_pairs: int
    #: Dispatches the supervisor needed before this shard produced a valid
    #: result (1 = first try; >1 means retries after crash/hang/corruption).
    attempts: int = 1
    #: Where the accepted result was computed: ``"pool"`` for a worker
    #: process, ``"local"`` for the in-process engine (single-worker runs
    #: and the supervisor's last-resort fallback).
    via: str = "pool"


@dataclass
class RunHealth:
    """Supervision counters of one sharded step-2 run.

    ``shards`` counts units of dispatched work; the failure counters
    classify every abandoned dispatch.  A fault-free run has every counter
    except ``shards`` at zero — :attr:`healthy` is that predicate, and
    :attr:`degraded` flags runs that only completed through the in-process
    fallback (correct output, pool-less speed).
    """

    shards: int = 0
    #: Re-dispatches beyond each shard's first attempt.
    retries: int = 0
    #: Dispatches abandoned at their deadline.
    timeouts: int = 0
    #: Dispatches that died (worker exit, broken pool, raised errors).
    crashes: int = 0
    #: Results rejected because the hit arrays disagreed with their stats.
    truncated: int = 0
    #: Dispatches rejected by the worker's bank-view digest check.
    corrupt: int = 0
    #: Fresh pools built after the first (timeout/broken-pool recovery).
    pool_rebuilds: int = 0
    #: Shards completed by the in-process engine after retries ran out.
    fallback_shards: int = 0

    @property
    def healthy(self) -> bool:
        """True when the run saw no fault of any kind."""
        return (
            self.retries == 0
            and self.timeouts == 0
            and self.crashes == 0
            and self.truncated == 0
            and self.corrupt == 0
            and self.pool_rebuilds == 0
            and self.fallback_shards == 0
        )

    @property
    def degraded(self) -> bool:
        """True when at least one shard fell back to in-process scoring."""
        return self.fallback_shards > 0

    def merge(self, other: RunHealth) -> None:
        """Accumulate another run's health counters."""
        self.shards += other.shards
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.crashes += other.crashes
        self.truncated += other.truncated
        self.corrupt += other.corrupt
        self.pool_rebuilds += other.pool_rebuilds
        self.fallback_shards += other.fallback_shards


@dataclass
class PipelineProfile:
    """Profile of one pipeline run (steps 1–3)."""

    step1: StepCounters = field(default_factory=StepCounters)
    step2: StepCounters = field(default_factory=StepCounters)
    step3: StepCounters = field(default_factory=StepCounters)
    #: Per-shard step-2 timings of the most recent run (empty when a custom
    #: step-2 engine bypasses the sharded executor).
    step2_shards: list[ShardTiming] = field(default_factory=list)
    #: Supervision counters of the sharded step-2 runs folded into this
    #: profile (all-zero when step 2 ran unsupervised/in-process).
    run_health: RunHealth = field(default_factory=RunHealth)

    @contextmanager
    def timing(self, step: StepCounters) -> Iterator[StepCounters]:
        """Context manager adding elapsed wall time to *step*."""
        t0 = time.perf_counter()
        try:
            yield step
        finally:
            step.wall_seconds += time.perf_counter() - t0

    @property
    def total_wall(self) -> float:
        """Total wall seconds across steps."""
        return self.step1.wall_seconds + self.step2.wall_seconds + self.step3.wall_seconds

    def wall_fractions(self) -> tuple[float, float, float]:
        """Fractions of wall time per step (the shape of paper Table 1)."""
        total = self.total_wall
        if total <= 0:
            return (0.0, 0.0, 0.0)
        return (
            self.step1.wall_seconds / total,
            self.step2.wall_seconds / total,
            self.step3.wall_seconds / total,
        )

    def step2_shard_imbalance(self) -> float:
        """Makespan imbalance of the step-2 shards (1.0 = perfect/serial)."""
        walls = [s.wall_seconds for s in self.step2_shards]
        if not walls or sum(walls) <= 0:
            return 1.0
        return max(walls) / (sum(walls) / len(walls))

    def merge(self, other: PipelineProfile) -> None:
        """Accumulate another run's profile."""
        self.step1.merge(other.step1)
        self.step2.merge(other.step2)
        self.step3.merge(other.step3)
        self.step2_shards.extend(other.step2_shards)
        self.run_health.merge(other.run_health)
