"""Per-step instrumentation.

Every performance table in the paper is a statement about *where time goes*
(Tables 1 and 7) or *how long a step takes* (Tables 2–4).  The pipeline
therefore records, for each of the three steps, both wall-clock seconds of
this Python implementation **and** platform-independent operation counts.
The cost models in :mod:`repro.rasc.host` translate counts into modelled
Itanium2/RASC-100 seconds; wall-clock is reported alongside for honesty.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any

from ..obs import trace
from ..util.reporting import fractions

__all__ = ["StepCounters", "ShardTiming", "RunHealth", "PipelineProfile"]


@dataclass
class StepCounters:
    """Counts and wall time for one pipeline step."""

    wall_seconds: float = 0.0
    #: Step-specific primary operation count:
    #: step 1 — residues indexed; step 2 — window cells scored;
    #: step 3 — DP cells computed.
    operations: int = 0
    #: Items processed (sequences, pairs, extensions).
    items: int = 0

    def merge(self, other: StepCounters) -> None:
        """Accumulate another step's counters."""
        self.wall_seconds += other.wall_seconds
        self.operations += other.operations
        self.items += other.items

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form (run-report ``profile`` section)."""
        return {
            "wall_seconds": self.wall_seconds,
            "operations": self.operations,
            "items": self.items,
        }


@dataclass(frozen=True)
class ShardTiming:
    """Step-2 record of one executor shard (sharding ↔ the paper's FPGAs).

    One is recorded per shard per run even in single-process mode, so
    Table-7-style breakdowns can always decompose step 2 into its units of
    parallel work and their batch shapes.
    """

    shard: int
    entries: int
    pairs: int
    hits: int
    wall_seconds: float
    #: Kernel invocations and largest single batch within this shard.
    batches: int
    max_batch_pairs: int
    #: Dispatches the supervisor needed before this shard produced a valid
    #: result (1 = first try; >1 means retries after crash/hang/corruption).
    attempts: int = 1
    #: Where the accepted result was computed: ``"pool"`` for a worker
    #: process, ``"local"`` for the in-process engine (single-worker runs
    #: and the supervisor's last-resort fallback).
    via: str = "pool"
    #: Wall seconds the supervisor spent on this shard's *abandoned*
    #: dispatches (timeouts, crashes, rejected results) before the accepted
    #: one.  ``wall_seconds`` covers only the accepted attempt, so without
    #: this the cost of retries vanishes from shard-level accounting.
    retry_wall_seconds: float = 0.0
    #: Scoring-kernel registry name the shard ran with (see
    #: :mod:`repro.extend.backends`).
    backend: str = "batched"

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form (run-report ``profile.step2_shards`` rows)."""
        return {
            "shard": self.shard,
            "entries": self.entries,
            "pairs": self.pairs,
            "hits": self.hits,
            "wall_seconds": self.wall_seconds,
            "batches": self.batches,
            "max_batch_pairs": self.max_batch_pairs,
            "attempts": self.attempts,
            "via": self.via,
            "retry_wall_seconds": self.retry_wall_seconds,
            "backend": self.backend,
        }


@dataclass
class RunHealth:
    """Supervision counters of one sharded step-2 run.

    ``shards`` counts units of dispatched work; the failure counters
    classify every abandoned dispatch.  A fault-free run has every counter
    except ``shards`` at zero — :attr:`healthy` is that predicate, and
    :attr:`degraded` flags runs that only completed through the in-process
    fallback (correct output, pool-less speed).
    """

    shards: int = 0
    #: Re-dispatches beyond each shard's first attempt.
    retries: int = 0
    #: Dispatches abandoned at their deadline.
    timeouts: int = 0
    #: Dispatches that died (worker exit, broken pool, raised errors).
    crashes: int = 0
    #: Results rejected because the hit arrays disagreed with their stats.
    truncated: int = 0
    #: Dispatches rejected by the worker's bank-view digest check.
    corrupt: int = 0
    #: Fresh pools built after the first (timeout/broken-pool recovery).
    pool_rebuilds: int = 0
    #: Shards completed by the in-process engine after retries ran out.
    fallback_shards: int = 0
    #: Shards abandoned because a request-level deadline
    #: (:attr:`~repro.core.supervisor.SupervisorConfig.deadline`) expired.
    #: Each cancelled shard is counted here exactly once — never *also* as a
    #: timeout or crash for the dispatch the cancellation interrupted.
    cancelled: int = 0
    #: Multi-worker runs routed straight to the in-process engine because
    #: the workload fell below ``min_pairs_per_shard`` — a sizing decision,
    #: not a fault, so it does not affect :attr:`healthy`.
    small_workload_fallbacks: int = 0

    @property
    def healthy(self) -> bool:
        """True when the run saw no fault of any kind."""
        return (
            self.retries == 0
            and self.timeouts == 0
            and self.crashes == 0
            and self.truncated == 0
            and self.corrupt == 0
            and self.pool_rebuilds == 0
            and self.fallback_shards == 0
            and self.cancelled == 0
        )

    @property
    def degraded(self) -> bool:
        """True when at least one shard fell back to in-process scoring."""
        return self.fallback_shards > 0

    def merge(self, other: RunHealth) -> None:
        """Accumulate another run's health counters."""
        self.shards += other.shards
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.crashes += other.crashes
        self.truncated += other.truncated
        self.corrupt += other.corrupt
        self.pool_rebuilds += other.pool_rebuilds
        self.fallback_shards += other.fallback_shards
        self.cancelled += other.cancelled
        self.small_workload_fallbacks += other.small_workload_fallbacks

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form (run-report ``run_health`` section)."""
        return {
            "shards": self.shards,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "truncated": self.truncated,
            "corrupt": self.corrupt,
            "pool_rebuilds": self.pool_rebuilds,
            "fallback_shards": self.fallback_shards,
            "cancelled": self.cancelled,
            "small_workload_fallbacks": self.small_workload_fallbacks,
            "healthy": self.healthy,
            "degraded": self.degraded,
        }


@dataclass
class PipelineProfile:
    """Profile of one pipeline run (steps 1–3)."""

    step1: StepCounters = field(default_factory=StepCounters)
    step2: StepCounters = field(default_factory=StepCounters)
    step3: StepCounters = field(default_factory=StepCounters)
    #: Per-shard step-2 timings of the most recent run (empty when a custom
    #: step-2 engine bypasses the sharded executor).
    step2_shards: list[ShardTiming] = field(default_factory=list)
    #: Supervision counters of the sharded step-2 runs folded into this
    #: profile (all-zero when step 2 ran unsupervised/in-process).
    run_health: RunHealth = field(default_factory=RunHealth)

    @contextmanager
    def timing(
        self, step: StepCounters, span_name: str | None = None, **attrs: Any
    ) -> Iterator[StepCounters]:
        """Context manager adding elapsed wall time to *step*.

        With *span_name* the region is also recorded as an observability
        span (one shared clock read — the span and the counter can never
        disagree about where time went).  Timing goes through
        :class:`repro.obs.trace.Timer` rather than ``time.perf_counter``;
        see repro-check rule RC105.
        """
        timer = trace.Timer()
        cm = trace.span(span_name, **attrs) if span_name else nullcontext()
        try:
            with cm, timer:
                yield step
        finally:
            step.wall_seconds += timer.seconds

    @property
    def total_wall(self) -> float:
        """Total wall seconds across steps."""
        return self.step1.wall_seconds + self.step2.wall_seconds + self.step3.wall_seconds

    @property
    def step2_retry_wall(self) -> float:
        """Wall seconds lost to abandoned step-2 dispatches (retries)."""
        return sum(s.retry_wall_seconds for s in self.step2_shards)

    def wall_fractions(self) -> tuple[float, float, float]:
        """Fractions of wall time per step (the shape of paper Table 1)."""
        return fractions(
            (
                self.step1.wall_seconds,
                self.step2.wall_seconds,
                self.step3.wall_seconds,
            )
        )

    def step2_shard_imbalance(self) -> float:
        """Makespan imbalance of the step-2 shards (1.0 = perfect/serial)."""
        walls = [s.wall_seconds for s in self.step2_shards]
        if not walls or sum(walls) <= 0:
            return 1.0
        return max(walls) / (sum(walls) / len(walls))

    def merge(self, other: PipelineProfile) -> None:
        """Accumulate another run's profile."""
        self.step1.merge(other.step1)
        self.step2.merge(other.step2)
        self.step3.merge(other.step3)
        self.step2_shards.extend(other.step2_shards)
        self.run_health.merge(other.run_health)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form (run-report ``profile`` section)."""
        return {
            "step1": self.step1.as_dict(),
            "step2": self.step2.as_dict(),
            "step3": self.step3.as_dict(),
            "total_wall": self.total_wall,
            "wall_fractions": list(self.wall_fractions()),
            "step2_shards": [s.as_dict() for s in self.step2_shards],
            "step2_retry_wall": self.step2_retry_wall,
            "step2_shard_imbalance": self.step2_shard_imbalance(),
            "run_health": self.run_health.as_dict(),
        }
