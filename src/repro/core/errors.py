"""Typed CLI errors and the exit-code contract.

Every console script in this repo maps failures onto the same small exit
code vocabulary, so callers (CI jobs, the serve-chaos harness, shell
pipelines) can branch on *why* a run failed without parsing stderr::

    0   success
    2   configuration error — the invocation itself is wrong (bad flag
        combination, malformed fault plan, invalid seed pattern)
    3   input error — the invocation is fine but an input is not
        (missing FASTA, unreadable index file, empty bank)
    4   runtime fault — inputs and config are fine but execution failed
        (deadline exceeded, unrecoverable corruption, pool loss)

Commands raise the typed exceptions below instead of ``SystemExit`` with
a bare string; :func:`repro.cli.main` catches them at the top level,
prints ``error: <message>`` to stderr and returns the mapped code.
Anything escaping uncaught is a bug and keeps Python's traceback + exit
code 1, which CI treats as "investigate", distinct from all of the above.
"""

from __future__ import annotations

__all__ = [
    "EXIT_OK",
    "EXIT_CONFIG",
    "EXIT_INPUT",
    "EXIT_RUNTIME",
    "CliError",
    "ConfigError",
    "InputError",
    "RuntimeFault",
]

EXIT_OK = 0
EXIT_CONFIG = 2
EXIT_INPUT = 3
EXIT_RUNTIME = 4


class CliError(Exception):
    """Base for failures with a defined exit code (never raised bare)."""

    exit_code: int = 1


class ConfigError(CliError):
    """The invocation is self-contradictory or malformed (exit 2)."""

    exit_code = EXIT_CONFIG


class InputError(CliError):
    """A referenced input is missing, unreadable or empty (exit 3)."""

    exit_code = EXIT_INPUT


class RuntimeFault(CliError):
    """Execution failed despite valid config and inputs (exit 4)."""

    exit_code = EXIT_RUNTIME
