"""BLAST-style pairwise alignment rendering.

The pipeline reports alignments as coordinate/score records (the
accelerator never needs tracebacks); for human consumption this module
recomputes the optimal local alignment *within the reported ranges* and
renders the familiar BLAST block::

    >query42 vs chr|frame+2
     Score = 113 bits (271), Expect = 3e-29
     Identities = 54/92 (59%), Positives = 71/92 (77%), Gaps = 2/92 (2%)

    Query  17   MKVLAWTRQ-EDNQLL...  75
                MK+LAW RQ ED QLL...
    Sbjct  102  MKILAWQRQAEDGQLL...  161

Re-deriving the traceback from the recorded ranges is exact: the ranges
came from the X-drop extension's end points, and Smith–Waterman restricted
to those ranges reproduces the same optimum.
"""

from __future__ import annotations

from ..extend.gapped import GapPenalties, SWAlignment, smith_waterman
from ..seqs.alphabet import AMINO
from ..seqs.matrices import BLOSUM62, SubstitutionMatrix
from ..seqs.sequence import SequenceBank
from .profile import RunHealth
from .results import Alignment, ComparisonReport

__all__ = [
    "render_alignment",
    "render_report",
    "render_run_health",
    "alignment_traceback",
]


def render_run_health(health: RunHealth) -> str:
    """One-line summary of a sharded step-2 run's supervision counters.

    A healthy run reads ``step2 health: N shards, ok``; a faulted one
    itemises what the supervisor absorbed, e.g.
    ``step2 health: 4 shards, 2 retries (1 timeout, 1 crash), 1 pool
    rebuild, 1 local fallback [degraded]``.
    """
    head = f"step2 health: {health.shards} shard{'s' if health.shards != 1 else ''}"
    if health.healthy:
        return f"{head}, ok"
    causes = [
        f"{count} {singular if count == 1 else plural}"
        for count, singular, plural in (
            (health.timeouts, "timeout", "timeouts"),
            (health.crashes, "crash", "crashes"),
            (health.truncated, "truncated result", "truncated results"),
            (health.corrupt, "corrupt bank view", "corrupt bank views"),
        )
        if count
    ]
    if health.cancelled:
        causes.append(
            f"{health.cancelled} "
            f"{'cancelled shard' if health.cancelled == 1 else 'cancelled shards'}"
        )
    parts = [head]
    if health.retries:
        suffix = f" ({', '.join(causes)})" if causes else ""
        parts.append(f"{health.retries} retries{suffix}")
    elif causes:
        parts.append(", ".join(causes))
    if health.pool_rebuilds:
        parts.append(
            f"{health.pool_rebuilds} pool rebuild"
            f"{'s' if health.pool_rebuilds != 1 else ''}"
        )
    if health.fallback_shards:
        parts.append(
            f"{health.fallback_shards} local fallback"
            f"{'s' if health.fallback_shards != 1 else ''}"
        )
    line = ", ".join(parts)
    return f"{line} [degraded]" if health.degraded else line


def alignment_traceback(
    bank0: SequenceBank,
    bank1: SequenceBank,
    alignment: Alignment,
    matrix: SubstitutionMatrix = BLOSUM62,
    gaps: GapPenalties = GapPenalties(),
) -> SWAlignment:
    """Recompute the traceback of a reported alignment."""
    s0 = bank0.starts[alignment.seq0_id]
    s1 = bank1.starts[alignment.seq1_id]
    a = bank0.buffer[s0 + alignment.start0 : s0 + alignment.end0]
    b = bank1.buffer[s1 + alignment.start1 : s1 + alignment.end1]
    return smith_waterman(a, b, matrix=matrix, gaps=gaps)


def _midline(a: str, b: str, matrix: SubstitutionMatrix) -> str:
    out = []
    for x, y in zip(a, b, strict=True):
        if x == "-" or y == "-":
            out.append(" ")
        elif x == y:
            out.append(x)
        elif matrix.score(int(AMINO.encode(x)[0]), int(AMINO.encode(y)[0])) > 0:
            out.append("+")
        else:
            out.append(" ")
    return "".join(out)


def render_alignment(
    bank0: SequenceBank,
    bank1: SequenceBank,
    alignment: Alignment,
    matrix: SubstitutionMatrix = BLOSUM62,
    gaps: GapPenalties = GapPenalties(),
    width: int = 60,
) -> str:
    """Render one alignment as a BLAST-style text block."""
    tb = alignment_traceback(bank0, bank1, alignment, matrix, gaps)
    aligned_cols = len(tb.aligned0)
    pairs = [
        (x, y) for x, y in zip(tb.aligned0, tb.aligned1, strict=True) if x != "-" and y != "-"
    ]
    identities = sum(1 for x, y in pairs if x == y)
    positives = sum(
        1
        for x, y in pairs
        if matrix.score(int(AMINO.encode(x)[0]), int(AMINO.encode(y)[0])) > 0
    )
    gaps_n = tb.n_gaps
    mid = _midline(tb.aligned0, tb.aligned1, matrix)
    lines = [
        f">{alignment.seq0_name} vs {alignment.seq1_name}",
        f" Score = {alignment.bit_score:.1f} bits ({alignment.raw_score}), "
        f"Expect = {alignment.evalue:.1e}",
        f" Identities = {identities}/{aligned_cols} "
        f"({identities / max(1, aligned_cols):.0%}), "
        f"Positives = {positives}/{aligned_cols} "
        f"({positives / max(1, aligned_cols):.0%}), "
        f"Gaps = {gaps_n}/{aligned_cols} "
        f"({gaps_n / max(1, aligned_cols):.0%})",
        "",
    ]
    # Coordinates within the full sequences (1-based, BLAST convention).
    q_pos = alignment.start0 + tb.start0 + 1
    s_pos = alignment.start1 + tb.start1 + 1
    for chunk in range(0, aligned_cols, width):
        qa = tb.aligned0[chunk : chunk + width]
        sa = tb.aligned1[chunk : chunk + width]
        ml = mid[chunk : chunk + width]
        q_end = q_pos + sum(1 for c in qa if c != "-") - 1
        s_end = s_pos + sum(1 for c in sa if c != "-") - 1
        margin = max(len(str(q_end)), len(str(s_end)))
        lines.append(f"Query  {q_pos:<{margin}}  {qa}  {q_end}")
        lines.append(f"       {'':<{margin}}  {ml}")
        lines.append(f"Sbjct  {s_pos:<{margin}}  {sa}  {s_end}")
        lines.append("")
        q_pos = q_end + 1
        s_pos = s_end + 1
    return "\n".join(lines)


def render_report(
    bank0: SequenceBank,
    bank1: SequenceBank,
    report: ComparisonReport,
    matrix: SubstitutionMatrix = BLOSUM62,
    gaps: GapPenalties = GapPenalties(),
    max_alignments: int = 10,
    width: int = 60,
) -> str:
    """Render the top alignments of a report, BLAST-output style."""
    header = [
        f"# {len(report)} alignments "
        f"({report.n_seed_pairs:,} seed pairs, "
        f"{report.n_ungapped_hits:,} ungapped hits, "
        f"{report.n_gapped_extensions:,} gapped extensions)",
        "",
    ]
    blocks = [
        render_alignment(bank0, bank1, a, matrix, gaps, width)
        for a in report.best(max_alignments)
    ]
    return "\n".join(header + blocks)
