"""PE slots and result management (paper Figure 1).

A slot groups ``slot_size`` PEs behind one register barrier and owns a
result-management module: at each compute-window boundary it scans its PEs'
scores and pushes ``(pe_index, score)`` records above the threshold into
its stage of the cascaded result FIFOs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..extend.ungapped import ScoreSemantics
from ..hwsim.fifo import SyncFifo
from ..hwsim.memory import Rom
from .pe import ProcessingElement

__all__ = ["ResultRecord", "PESlot"]


@dataclass(frozen=True)
class ResultRecord:
    """One over-threshold score leaving the array.

    ``pe_index`` identifies the IL0 window (which PE held it) and
    ``stream_index`` the IL1 window; the master controller maps both back
    to bank offsets.
    """

    pe_index: int
    stream_index: int
    score: int


class PESlot:
    """A group of PEs with a shared result-management module."""

    def __init__(
        self,
        slot_id: int,
        pe_indices: range,
        window: int,
        rom: Rom,
        threshold: int,
        semantics: ScoreSemantics,
        fifo_depth: int = 64,
    ) -> None:
        self.slot_id = slot_id
        self.threshold = int(threshold)
        self.pes = [
            ProcessingElement(window, rom, semantics, index=i) for i in pe_indices
        ]
        #: This slot's stage of the cascaded result FIFOs.
        self.fifo = SyncFifo(fifo_depth, name=f"slot{slot_id}-fifo")
        #: Per-slot count of over-threshold results (traffic accounting).
        self.results_produced = 0

    def __len__(self) -> int:
        return len(self.pes)

    def active_pes(self, n_active: int) -> list[ProcessingElement]:
        """The PEs holding live IL0 windows in the current batch.

        *n_active* counts active PEs across the whole array; this slot
        contributes those of its PEs whose global index is below it.
        """
        return [pe for pe in self.pes if pe.index < n_active]

    def scan_results(
        self, scores: list[tuple[int, int]], stream_index: int
    ) -> list[ResultRecord]:
        """Result-management scan at a window boundary.

        *scores* is a list of ``(pe_index, score)`` for this slot's active
        PEs.  Over-threshold records are returned in PE order (and counted);
        the caller routes them into the drain model or FIFO cascade.
        """
        out = [
            ResultRecord(pe_index, stream_index, score)
            for pe_index, score in scores
            if score >= self.threshold
        ]
        self.results_produced += len(out)
        return out
