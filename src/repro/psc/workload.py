"""Workload preparation for the PSC operator.

The host-side driver turns a joint index into a stream of *entry jobs*:
for each shared seed key, the IL0/IL1 offset lists plus the pre-extracted
scoring windows.  On the real platform this is the data the host DMAs to
the accelerator (offsets + residue windows); here the same records feed
either the cycle-level or the behavioural operator model.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..index.kmer import TwoBankIndex
from ..seqs.sequence import SequenceBank

__all__ = ["EntryJob", "build_jobs", "job_stream_bytes"]


@dataclass(frozen=True)
class EntryJob:
    """Step-2 work for one shared seed key, ready for the array."""

    key: int
    offsets0: np.ndarray  # (K0,) global bank-0 offsets
    offsets1: np.ndarray  # (K1,) global bank-1 offsets
    windows0: np.ndarray  # (K0, L) uint8 residue windows
    windows1: np.ndarray  # (K1, L) uint8 residue windows

    @property
    def k0(self) -> int:
        """IL0 list length."""
        return int(self.offsets0.shape[0])

    @property
    def k1(self) -> int:
        """IL1 list length."""
        return int(self.offsets1.shape[0])

    @property
    def pair_count(self) -> int:
        """Ungapped extensions this entry generates."""
        return self.k0 * self.k1


def build_jobs(
    index: TwoBankIndex, flank: int, window: int
) -> Iterator[EntryJob]:
    """Yield entry jobs for every shared key of *index*.

    *flank* is the paper's ``N`` (residues left of the seed anchor) and
    *window* the full width ``W + 2N``.
    """
    bank0: SequenceBank = index.index0.bank
    bank1: SequenceBank = index.index1.bank
    for entry in index.entries():
        yield EntryJob(
            key=entry.key,
            offsets0=entry.offsets0,
            offsets1=entry.offsets1,
            windows0=bank0.windows(entry.offsets0, flank, window),
            windows1=bank1.windows(entry.offsets1, flank, window),
        )


def job_stream_bytes(index: TwoBankIndex, window: int) -> tuple[int, int]:
    """(input bytes, per-result bytes) of the accelerator data streams.

    Inputs: every IL0/IL1 window is streamed as ``window`` residue bytes
    plus a 4-byte offset tag.  Each result record is two 4-byte offsets
    plus a 2-byte score (packed to 12 bytes on the real board).  Used by
    the NUMAlink transfer model.
    """
    k0s, k1s = index.list_length_pairs()
    in_bytes = int((k0s.sum() + k1s.sum()) * (window + 4))
    return in_bytes, 12
