"""PSC-operator timing model: batching, cycle schedule, occupancy.

This module is the single source of truth for *when things happen* on the
PE array, shared by the cycle-level simulator (:mod:`repro.psc.operator`)
and the fast behavioural model (:mod:`repro.psc.behavioral`) so the two are
cycle-identical by construction.

Micro-architecture timing (paper §3, Figures 1–2):

* one pair costs ``L = W + 2N`` clock cycles — one residue pair per cycle
  through the substitution ROM and accumulator;
* a PE first *loads* its IL0 window through the shift register (``L``
  cycles per window, windows streamed back-to-back down the IL0 pipeline),
  then *computes* against every IL1 window of the entry (``K1 × L``
  cycles), reusing the stored window via the feedback loop;
* an entry with ``K0 > P`` windows runs in ``ceil(K0 / P)`` batches — each
  batch reloads the array and re-streams the whole IL1 list (this re-read
  is the occupancy cliff that makes small banks inefficient: with
  ``K0 < P`` most PEs idle through the compute phase, which is exactly the
  explanation the paper gives for the low 1K-bank speedups);
* register barriers between PE slots add a pipeline-fill overhead of
  ``n_slots + PIPELINE_CONST`` cycles per batch, and sequencing adds
  ``ENTRY_OVERHEAD`` cycles per entry;
* results leave through cascaded FIFOs draining one record per cycle into
  the output controller; the run finishes when the last record drains,
  plus a final ``n_slots + PIPELINE_CONST`` flush.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..extend.ungapped import ScoreSemantics
from ..obs import metrics as obsmetrics
from ..seqs.matrices import BLOSUM62, SubstitutionMatrix

__all__ = [
    "PscArrayConfig",
    "ENTRY_OVERHEAD",
    "PIPELINE_CONST",
    "batch_sizes",
    "entry_cycles",
    "schedule_cycles",
    "occupancy",
    "drain_completion",
    "publish_run_metrics",
    "ScheduleBreakdown",
]

#: Control cycles charged per index entry (start/advance bookkeeping).
ENTRY_OVERHEAD = 8
#: Constant part of the per-batch pipeline fill (plus one cycle per slot).
PIPELINE_CONST = 4


@dataclass(frozen=True)
class PscArrayConfig:
    """Static configuration of one PSC operator instance.

    Attributes
    ----------
    n_pes:
        Number of processing elements (the paper evaluates 64/128/192).
    slot_size:
        PEs per slot between register barriers.
    window:
        Scoring window ``L = W + 2N`` in residues.
    threshold:
        Result-management threshold: scores ≥ threshold are reported.
    clock_hz:
        Design clock (100 MHz on the RASC-100's Virtex-4 parts).
    fifo_depth:
        Depth of each cascaded result FIFO stage.
    """

    n_pes: int = 192
    slot_size: int = 8
    window: int = 28
    threshold: int = 45
    clock_hz: float = 100e6
    fifo_depth: int = 64
    matrix: SubstitutionMatrix = BLOSUM62
    semantics: ScoreSemantics = ScoreSemantics.KADANE

    def __post_init__(self) -> None:
        if self.n_pes < 1 or self.slot_size < 1:
            raise ValueError("n_pes and slot_size must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    @property
    def n_slots(self) -> int:
        """Number of PE slots (register-barrier sections)."""
        return -(-self.n_pes // self.slot_size)

    @property
    def batch_overhead(self) -> int:
        """Pipeline-fill cycles charged per batch."""
        return self.n_slots + PIPELINE_CONST

    @property
    def flush_overhead(self) -> int:
        """Output-path flush charged once per run."""
        return self.n_slots + PIPELINE_CONST

    def seconds(self, cycles: int | float) -> float:
        """Convert cycles to seconds at the design clock."""
        return float(cycles) / self.clock_hz


def batch_sizes(k0: int, n_pes: int) -> list[int]:
    """Split ``K0`` IL0 windows into array-sized batches."""
    if k0 <= 0:
        return []
    full, rem = divmod(k0, n_pes)
    return [n_pes] * full + ([rem] if rem else [])


def entry_cycles(
    k0: np.ndarray | int, k1: np.ndarray | int, config: PscArrayConfig
) -> np.ndarray:
    """Schedule cycles for entries with ``K0 × K1`` work (vectorised).

    ``cycles = ENTRY_OVERHEAD + K0·L + ceil(K0/P)·(K1·L + batch_overhead)``.
    Excludes result-drain tail and final flush, which are whole-run terms.
    """
    k0 = np.asarray(k0, dtype=np.int64)
    k1 = np.asarray(k1, dtype=np.int64)
    L = config.window
    batches = -(-k0 // config.n_pes)
    return (
        ENTRY_OVERHEAD
        + k0 * L
        + batches * (k1 * L + config.batch_overhead)
    )


@dataclass(frozen=True)
class ScheduleBreakdown:
    """Aggregate cycle accounting for a workload on one PSC operator."""

    load_cycles: int
    compute_cycles: int
    overhead_cycles: int
    schedule_end: int  # last compute/overhead cycle (pre-drain-tail)
    total_cycles: int  # including drain tail + flush
    busy_pe_cycles: int  # PE-cycles doing useful scoring
    offered_pe_cycles: int  # PE-cycles during compute phases (busy or idle)

    @property
    def utilization(self) -> float:
        """Fraction of compute-phase PE-cycles doing useful work."""
        if self.offered_pe_cycles == 0:
            return 0.0
        return self.busy_pe_cycles / self.offered_pe_cycles

    def seconds(self, config: PscArrayConfig) -> float:
        """Total runtime at the configured clock."""
        return config.seconds(self.total_cycles)


def schedule_cycles(
    k0s: np.ndarray, k1s: np.ndarray, config: PscArrayConfig
) -> ScheduleBreakdown:
    """Whole-workload schedule (no drain tail — see :func:`drain_completion`).

    ``k0s`` / ``k1s`` are per-shared-entry index-list lengths, e.g. from
    :meth:`repro.index.kmer.TwoBankIndex.list_length_pairs`.
    """
    k0s = np.asarray(k0s, dtype=np.int64)
    k1s = np.asarray(k1s, dtype=np.int64)
    L = config.window
    batches = -(-k0s // config.n_pes)
    load = int((k0s * L).sum())
    compute = int((batches * k1s * L).sum())
    overhead = int(
        (batches * config.batch_overhead).sum() + ENTRY_OVERHEAD * k0s.shape[0]
    )
    schedule_end = load + compute + overhead
    busy = int((k0s * k1s * L).sum())
    offered = int((batches * k1s * L).sum()) * config.n_pes
    return ScheduleBreakdown(
        load_cycles=load,
        compute_cycles=compute,
        overhead_cycles=overhead,
        schedule_end=schedule_end,
        total_cycles=schedule_end + config.flush_overhead,
        busy_pe_cycles=busy,
        offered_pe_cycles=offered,
    )


def publish_run_metrics(
    config: PscArrayConfig,
    breakdown: ScheduleBreakdown,
    n_hits: int,
    model: str,
) -> None:
    """Export one PSC run's hardware counters to the active registry.

    Shared by the cycle simulator and the behavioural model (labelled by
    *model*) so both expose the same series — part of the timing contract
    this module owns.  ``busy_pe_cycles`` is exactly ``pairs × L``, so the
    pair count is recovered without re-deriving it from the workload.
    No-op when observability is off.
    """
    registry = obsmetrics.active()
    if registry is None:
        return
    pairs = breakdown.busy_pe_cycles // config.window
    seconds = breakdown.seconds(config)
    registry.counter("psc_pairs_scored_total", model=model).inc(pairs)
    registry.counter("psc_hits_total", model=model).inc(n_hits)
    registry.counter("psc_busy_pe_cycles_total", model=model).inc(
        breakdown.busy_pe_cycles
    )
    registry.counter("psc_offered_pe_cycles_total", model=model).inc(
        breakdown.offered_pe_cycles
    )
    registry.counter("psc_modeled_seconds_total", model=model).inc(seconds)
    registry.gauge("psc_utilization", model=model).set_max(breakdown.utilization)
    if pairs > 0:
        registry.gauge("psc_cycles_per_pair", model=model).set_max(
            breakdown.total_cycles / pairs
        )
    if seconds > 0:
        registry.gauge("psc_pairs_per_second_per_pe", model=model).set_max(
            pairs / seconds / config.n_pes
        )
        # GCUPS-equivalent: every pair scores L cells at one cell/cycle/PE.
        registry.gauge("psc_gcups_equivalent", model=model).set_max(
            pairs * config.window / seconds / 1e9
        )


def occupancy(k0s: np.ndarray, k1s: np.ndarray, config: PscArrayConfig) -> float:
    """Convenience: compute-phase PE utilisation for a workload."""
    return schedule_cycles(k0s, k1s, config).utilization


def drain_completion(arrival_cycles: np.ndarray, schedule_end: int) -> int:
    """Completion cycle of the single-port result drain.

    Results enter the cascaded FIFOs at known cycles and leave through one
    output port at one record per cycle, in arrival order:
    ``dep[i] = max(arr[i] + 1, dep[i-1] + 1)``.  Returns the cycle the last
    record leaves (≥ *schedule_end* when the tail spills past compute).
    """
    if len(arrival_cycles) == 0:
        return schedule_end
    arr = np.sort(np.asarray(arrival_cycles, dtype=np.int64), kind="stable")
    dep = np.maximum.accumulate(
        arr + 1 - np.arange(arr.shape[0], dtype=np.int64)
    ) + np.arange(arr.shape[0], dtype=np.int64)
    return int(max(schedule_end, int(dep[-1])))
