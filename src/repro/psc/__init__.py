"""The PSC (Parallel Sequence Comparison) operator: cycle-level and
behavioural models of the paper's FPGA design."""

from .behavioral import PscBehavioral
from .gapped_operator import GxpConfig, GxpOperator, GxpResult, wavefront_banded_score
from .operator import PscOperator, PscRunResult
from .pe import ProcessingElement
from .schedule import (
    ENTRY_OVERHEAD,
    PIPELINE_CONST,
    PscArrayConfig,
    ScheduleBreakdown,
    drain_completion,
    entry_cycles,
    occupancy,
    schedule_cycles,
)
from .slot import PESlot, ResultRecord
from .system import PscSystem, SystemResult
from .workload import EntryJob, build_jobs, job_stream_bytes

__all__ = [
    "PscArrayConfig",
    "PscOperator",
    "PscBehavioral",
    "GxpConfig",
    "GxpOperator",
    "GxpResult",
    "wavefront_banded_score",
    "PscRunResult",
    "ProcessingElement",
    "PESlot",
    "ResultRecord",
    "PscSystem",
    "SystemResult",
    "EntryJob",
    "build_jobs",
    "job_stream_bytes",
    "ScheduleBreakdown",
    "schedule_cycles",
    "entry_cycles",
    "occupancy",
    "drain_completion",
    "ENTRY_OVERHEAD",
    "PIPELINE_CONST",
]
