"""Full-system cycle simulation of one PSC entry job.

The :class:`~repro.psc.operator.PscOperator` executes the architecture's
*schedule* with real PE datapaths but idealised data delivery.  This
module goes one fidelity level deeper for a single entry job: every word
moves through explicit hardware — DMA source components push residues
into input FIFOs, the master controller pops one residue per clock (and
*stalls* when a FIFO underruns), window boundaries scan the slots into a
real cascaded result-FIFO chain, and an output DMA drains the tail — all
under the two-phase :class:`~repro.hwsim.kernel.Simulator`.

This is the "single PE first, then grow the array" validation path the
paper describes (§3.1), and the vehicle for studying input-bandwidth
sensitivity: with DMA rate ≥ 1 word/cycle the system matches the ideal
schedule up to pipeline fill; slower DMA exposes stall cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hwsim.dma import DmaStream
from ..hwsim.fifo import FifoCascade, SyncFifo
from ..hwsim.kernel import Component, SimulationError, Simulator
from ..hwsim.memory import Rom
from .pe import ProcessingElement
from .schedule import PscArrayConfig
from .slot import ResultRecord
from .workload import EntryJob

__all__ = ["PscSystem", "SystemResult"]


@dataclass(frozen=True)
class SystemResult:
    """Outcome of one full-system run."""

    records: tuple[ResultRecord, ...]
    cycles: int
    load_stall_cycles: int
    compute_stall_cycles: int
    cascade_high_water: int


class _ArrayController(Component):
    """Master controller + PE array + result management as one component.

    Pops at most one residue per clock from the phase-appropriate input
    FIFO; a dry FIFO stalls the array for that cycle (counted).
    """

    name = "psc-array"

    def __init__(self, config: PscArrayConfig, job: EntryJob) -> None:
        if job.k0 > config.n_pes:
            raise SimulationError(
                "PscSystem handles single-batch jobs (K0 <= n_pes)"
            )
        self.config = config
        self.job = job
        rom = Rom.substitution_rom(config.matrix)
        self.pes = [
            ProcessingElement(config.window, rom, config.semantics, index=i)
            for i in range(job.k0)
        ]
        self.il0 = SyncFifo(16, "il0")
        self.il1 = SyncFifo(16, "il1")
        self.cascade = FifoCascade(config.n_slots, config.fifo_depth, "results")
        self.phase = "load"
        self._load_pe = 0
        self._load_pos = 0
        self._stream_index = 0
        self._compute_pos = 0
        self._finals: list[int | None] = [None] * job.k0
        self.load_stalls = 0
        self.compute_stalls = 0
        self.records: list[ResultRecord] = []
        if job.k0:
            self.pes[0].begin_load()
        else:
            self.phase = "done"

    # -- per-clock behaviour ----------------------------------------------
    def tick(self, cycle: int) -> None:
        self.cascade.forward()
        if self.phase == "load":
            self._tick_load()
        elif self.phase == "compute":
            self._tick_compute()

    def _tick_load(self) -> None:
        if not self.il0.can_pop():
            self.load_stalls += 1
            return
        residue = int(self.il0.pop())
        pe = self.pes[self._load_pe]
        pe.load_shift(residue)
        self._load_pos += 1
        if self._load_pos == self.config.window:
            self._load_pos = 0
            self._load_pe += 1
            if self._load_pe == self.job.k0:
                self.phase = "compute"
                self._begin_window()
            else:
                self.pes[self._load_pe].begin_load()

    def _begin_window(self) -> None:
        if self._stream_index >= self.job.k1:
            self.phase = "done"
            return
        for pe in self.pes:
            pe.begin_compute()
        self._compute_pos = 0

    def _tick_compute(self) -> None:
        if not self.il1.can_pop():
            self.compute_stalls += 1
            return
        residue = int(self.il1.pop())
        for pe in self.pes:
            self._finals[pe.index] = pe.compute_step(residue)
        self._compute_pos += 1
        if self._compute_pos == self.config.window:
            self._scan_results()
            self._stream_index += 1
            self._begin_window()

    def _scan_results(self) -> None:
        """Result-management scan: slot order, PE order within a slot."""
        for s in range(self.config.n_slots):
            lo = s * self.config.slot_size
            hi = min(lo + self.config.slot_size, self.job.k0)
            for i in range(lo, hi):
                score = int(self._finals[i])
                if score >= self.config.threshold:
                    rec = ResultRecord(i, self._stream_index, score)
                    self.cascade.stage(s).push(rec)
                    self.records.append(rec)

    def commit(self) -> None:
        self.il0.commit()
        self.il1.commit()
        self.cascade.commit()

    def is_idle(self) -> bool:
        return self.phase == "done" and self.cascade.is_empty()


class _OutputController(Component):
    """Drains the cascade tail one record per clock."""

    name = "output-controller"

    def __init__(self, cascade: FifoCascade) -> None:
        self._cascade = cascade
        self.received: list[ResultRecord] = []

    def tick(self, cycle: int) -> None:
        if self._cascade.tail.can_pop():
            self.received.append(self._cascade.tail.pop())

    def commit(self) -> None:
        pass  # tail commit is owned by the array controller

    def is_idle(self) -> bool:
        return not self._cascade.tail.can_pop()


class PscSystem:
    """Assembles DMA sources, the array and the output path."""

    def __init__(
        self,
        config: PscArrayConfig,
        job: EntryJob,
        dma_words_per_cycle: int = 1,
    ) -> None:
        self.config = config
        self.job = job
        self.sim = Simulator()
        self.array = _ArrayController(config, job)
        il0_words = np.ascontiguousarray(job.windows0.reshape(-1))
        il1_words = np.ascontiguousarray(job.windows1.reshape(-1))
        self.dma0 = DmaStream(il0_words, self.array.il0, dma_words_per_cycle, "dma-il0")
        self.dma1 = DmaStream(il1_words, self.array.il1, dma_words_per_cycle, "dma-il1")
        self.output = _OutputController(self.array.cascade)
        # Registration order: sources produce, array consumes, output drains.
        self.sim.add(self.dma0)
        self.sim.add(self.dma1)
        self.sim.add(self.array)
        self.sim.add(self.output)

    def run(self, max_cycles: int = 5_000_000) -> SystemResult:
        """Clock the system until fully drained."""
        self.sim.run_until_idle(max_cycles)
        return SystemResult(
            records=tuple(self.output.received),
            cycles=self.sim.cycle,
            load_stall_cycles=self.array.load_stalls,
            compute_stall_cycles=self.array.compute_stalls,
            cascade_high_water=max(
                s.high_water for s in self.array.cascade.stages
            ),
        )
