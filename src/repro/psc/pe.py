"""Processing-element datapath (paper Figure 2), cycle by cycle.

A PE holds one IL0 window in a shift register with a feedback loop and, in
the compute phase, consumes one IL1 residue per clock: both residues
address the substitution ROM, the cost feeds an accumulator, and a running
maximum is kept.  After ``L`` cycles the maximum is handed to the slot's
result-management module and the shift register (thanks to the feedback
loop) is back in its initial rotation, ready for the next IL1 window.

This class is the simulator's *datapath truth*: the vectorised kernels are
tested for exact score equality against sequences of :meth:`compute_step`
calls.
"""

from __future__ import annotations

import numpy as np

from ..extend.ungapped import ScoreSemantics
from ..hwsim.kernel import SimulationError
from ..hwsim.memory import Rom

__all__ = ["ProcessingElement"]


class ProcessingElement:
    """One SIMD processing element.

    Parameters
    ----------
    window:
        Shift-register length ``L = W + 2N``.
    rom:
        Substitution-cost ROM (1024 words; address ``a * 32 + b``).
    semantics:
        Score recurrence (see :class:`~repro.extend.ungapped.ScoreSemantics`).
    index:
        Global PE number (reported with results).
    """

    def __init__(
        self,
        window: int,
        rom: Rom,
        semantics: ScoreSemantics = ScoreSemantics.KADANE,
        index: int = 0,
    ) -> None:
        self.window = int(window)
        self.rom = rom
        self.semantics = semantics
        self.index = index
        self._shift = np.zeros(self.window, dtype=np.uint8)
        self._load_pos = 0
        self._rotation = 0
        self._score = 0
        self._best = 0
        self._step = 0
        self.loaded = False
        #: Total compute cycles executed (utilisation accounting).
        self.busy_cycles = 0

    # -- initialization phase --------------------------------------------
    def begin_load(self) -> None:
        """Reset the shift register for a new IL0 window."""
        self._load_pos = 0
        self.loaded = False

    def load_shift(self, residue: int) -> None:
        """Shift in one residue of the IL0 window (one cycle)."""
        if self._load_pos >= self.window:
            raise SimulationError(f"PE {self.index}: load overrun")
        self._shift[self._load_pos] = residue
        self._load_pos += 1
        if self._load_pos == self.window:
            self.loaded = True
            self._rotation = 0

    # -- computation phase -------------------------------------------------
    def begin_compute(self) -> None:
        """Arm the accumulator for a new IL1 window."""
        if not self.loaded:
            raise SimulationError(f"PE {self.index}: compute before load")
        self._score = 0
        self._best = 0
        self._step = 0

    def compute_step(self, residue_il1: int) -> int | None:
        """One clock of the compute phase.

        Feeds the next stored IL0 residue (shift register rotates through
        its feedback loop) and the incoming IL1 residue through the ROM and
        accumulator.  Returns the window maximum on the ``L``-th call, else
        ``None``.
        """
        if self._step >= self.window:
            raise SimulationError(f"PE {self.index}: compute overrun")
        a = int(self._shift[self._rotation])
        cost = self.rom.read(a * 32 + int(residue_il1))
        if self.semantics is ScoreSemantics.KADANE:
            self._score = max(0, self._score + cost)
        else:
            self._score = max(self._score, self._score + cost)
        self._best = max(self._best, self._score)
        self._rotation = (self._rotation + 1) % self.window
        self._step += 1
        self.busy_cycles += 1
        if self._step == self.window:
            # Feedback loop has rotated the register back to position 0.
            assert self._rotation == 0
            return self._best
        return None

    def compute_window(self, il1_window: np.ndarray) -> int:
        """Convenience: run a full L-cycle compute phase; returns the score."""
        self.begin_compute()
        result: int | None = None
        for residue in il1_window:
            result = self.compute_step(int(residue))
        assert result is not None
        return result
