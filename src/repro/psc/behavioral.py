"""Fast behavioural model of the PSC operator.

Running 192 Python-object PEs cycle-by-cycle is infeasible at benchmark
scale, so this model computes the *same* results two orders of magnitude
faster:

* scores via the vectorised window kernel
  (:func:`repro.extend.ungapped.ungapped_scores`) — bit-identical to the PE
  datapath (both are tested against the scalar reference);
* cycle counts via the shared schedule contract
  (:mod:`repro.psc.schedule`) — identical to the cycle simulator by
  construction, including per-hit arrival cycles and the single-port drain
  tail;
* hit emission order identical to the hardware's (entry → batch → IL1
  window → PE index), so downstream consumers cannot distinguish the two
  models.

``tests/test_psc_equivalence.py`` asserts exact equality of hits, scores,
arrival cycles and every cycle counter between this model and
:class:`repro.psc.operator.PscOperator` on randomised workloads; the
benchmark harness then runs this model with confidence at full scale.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..extend.ungapped import UngappedHits, UngappedStats, ungapped_scores
from ..index.kmer import TwoBankIndex
from .operator import PscRunResult
from .schedule import (
    ENTRY_OVERHEAD,
    PscArrayConfig,
    ScheduleBreakdown,
    drain_completion,
    publish_run_metrics,
    schedule_cycles,
)
from .workload import EntryJob, build_jobs

__all__ = ["PscBehavioral"]


class PscBehavioral:
    """Vectorised functional + timing model of one PSC operator."""

    def __init__(self, config: PscArrayConfig) -> None:
        self.config = config

    def run(self, jobs: Iterable[EntryJob]) -> PscRunResult:
        """Execute a workload; exact counterpart of ``PscOperator.run``."""
        cfg = self.config
        L = cfg.window
        cycle = 0
        load_cycles = 0
        compute_cycles = 0
        overhead_cycles = 0
        busy = 0
        offered = 0
        parts0: list[np.ndarray] = []
        parts1: list[np.ndarray] = []
        parts_s: list[np.ndarray] = []
        parts_arr: list[np.ndarray] = []
        for job in jobs:
            cycle += ENTRY_OVERHEAD
            overhead_cycles += ENTRY_OVERHEAD
            k0, k1 = job.k0, job.k1
            scores = ungapped_scores(
                job.windows0, job.windows1, cfg.matrix, cfg.semantics
            )
            for batch_lo in range(0, k0, cfg.n_pes):
                batch_hi = min(batch_lo + cfg.n_pes, k0)
                n_active = batch_hi - batch_lo
                cycle += cfg.batch_overhead
                overhead_cycles += cfg.batch_overhead
                cycle += n_active * L
                load_cycles += n_active * L
                compute_start = cycle
                cycle += k1 * L
                compute_cycles += k1 * L
                busy += n_active * k1 * L
                offered += cfg.n_pes * k1 * L
                # Hits in hardware order: IL1 window major, PE index minor.
                batch_scores = scores[batch_lo:batch_hi]
                jj, ii = np.nonzero(batch_scores.T >= cfg.threshold)
                if jj.size:
                    parts0.append(job.offsets0[batch_lo + ii])
                    parts1.append(job.offsets1[jj])
                    parts_s.append(batch_scores[ii, jj])
                    parts_arr.append(compute_start + (jj.astype(np.int64) + 1) * L)
        schedule_end = cycle
        offsets0 = (
            np.concatenate(parts0) if parts0 else np.empty(0, dtype=np.int64)
        )
        offsets1 = (
            np.concatenate(parts1) if parts1 else np.empty(0, dtype=np.int64)
        )
        scores_arr = (
            np.concatenate(parts_s).astype(np.int32)
            if parts_s
            else np.empty(0, dtype=np.int32)
        )
        arrivals = (
            np.concatenate(parts_arr) if parts_arr else np.empty(0, dtype=np.int64)
        )
        drained = drain_completion(arrivals, schedule_end)
        breakdown = ScheduleBreakdown(
            load_cycles=load_cycles,
            compute_cycles=compute_cycles,
            overhead_cycles=overhead_cycles,
            schedule_end=schedule_end,
            total_cycles=drained + cfg.flush_overhead,
            busy_pe_cycles=busy,
            offered_pe_cycles=offered,
        )
        publish_run_metrics(cfg, breakdown, int(offsets0.shape[0]), model="behavioral")
        return PscRunResult(
            offsets0=offsets0,
            offsets1=offsets1,
            scores=scores_arr,
            breakdown=breakdown,
            arrival_cycles=arrivals,
        )

    def run_index(self, index: TwoBankIndex, flank: int) -> PscRunResult:
        """Run over a joint index (windows extracted on the fly)."""
        return self.run(build_jobs(index, flank, self.config.window))

    def step2_hits(self, index: TwoBankIndex, flank: int) -> UngappedHits:
        """Adapter: run as the pipeline's step-2 engine.

        Returns :class:`~repro.extend.ungapped.UngappedHits` so
        :class:`repro.core.pipeline.SeedComparisonPipeline` can deport step
        2 to the accelerator model unchanged.  The run result (with cycle
        accounting) is kept on :attr:`last_run`.
        """
        result = self.run_index(index, flank)
        self.last_run = result
        k0s, k1s = index.list_length_pairs()
        stats = UngappedStats(
            entries=index.n_shared_keys,
            pairs=index.total_pairs,
            cells=index.total_pairs * self.config.window,
            hits=len(result),
        )
        return UngappedHits(result.offsets0, result.offsets1, result.scores, stats)

    def estimate(self, index: TwoBankIndex) -> ScheduleBreakdown:
        """Timing-only estimate from index statistics (no scoring).

        Ignores the drain tail (exact only when hit traffic is sparse —
        the common case at real thresholds); used for quick capacity
        planning and the figure benches.
        """
        k0s, k1s = index.list_length_pairs()
        return schedule_cycles(k0s, k1s, self.config)
